"""The serving layer's entry point: :func:`run_serving`.

Wires a :class:`~repro.serving.config.ServingConfig` into the streaming
engine's :class:`~repro.core.streaming.ServingHooks`:

* computes each arrival's absolute SLO deadline from its type's
  serial-baseline runtime (plus seeded per-arrival jitter),
* instantiates the per-type circuit breaker panel,
* splits the fault plan into device faults (injected as usual) and the
  first ``HARNESS_CRASH`` (which kills the run at its arm time),
* opens the crash-safe run journal, fingerprinted by the full run
  configuration, and
* aggregates the engine's per-record outcomes into a
  :class:`ServingResult` with *goodput* (deadline-met completions per
  second) reported separately from raw throughput.

Crash/resume contract: a run killed by :class:`~repro.sim.errors.\
HarnessCrash` leaves a valid journal prefix on disk; calling
:func:`run_serving` again with the same arguments and ``resume=True``
replays the run deterministically, verifies the prefix, and returns the
same :class:`ServingResult` an uninterrupted run would have produced —
byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..core.streaming import (
    Arrival,
    Dispatcher,
    GreedyDispatcher,
    ServingHooks,
    StreamingResult,
    run_streaming,
)
from ..core.workload import resolve_scale
from ..framework.metrics import deadline_met_count
from ..gpu.specs import DeviceSpec
from ..resilience.faults import FaultKind, FaultPlan
from ..sim.errors import HarnessCrash
from .breaker import CircuitBreakerPanel
from .config import ServingConfig
from .fleet_gate import FleetCapacityGate
from .journal import JournalMismatchError, RunJournal

__all__ = [
    "ServingResult",
    "SHED_OUTCOMES",
    "measure_service_baselines",
    "run_serving",
    "BatchOutcome",
    "BatchedServingResult",
    "run_batched_serving",
]

#: Terminal outcomes that mean "never ran": shed by admission control.
SHED_OUTCOMES = ("shed-reject", "shed-oldest", "shed-deadline", "breaker-open")


@dataclass
class ServingResult(StreamingResult):
    """A :class:`StreamingResult` plus serving-layer accounting.

    ``jobs`` still counts every *arrival*; ``throughput`` is overridden to
    count only jobs that actually completed, and :attr:`goodput` only the
    completions that met their SLO deadline.
    """

    outcomes: Dict[str, int] = field(default_factory=dict)
    deadline_met: int = 0
    breaker_trips: int = 0
    breaker_fast_fails: int = 0
    recovered_entries: int = 0
    resumed: bool = False
    journal_file: Optional[str] = None
    # -- fleet accounting (zero outside fleet-aware runs) -----------------
    fleet_devices: int = 0       # devices the capacity was spread across
    devices_lost: int = 0        # losses detected during the run

    @property
    def completed(self) -> int:
        """Jobs that ran to completion (on time or late)."""
        return self.outcomes.get("completed", 0) + self.outcomes.get("late", 0)

    @property
    def shed(self) -> int:
        """Jobs shed by admission control (never dispatched)."""
        return sum(self.outcomes.get(k, 0) for k in SHED_OUTCOMES)

    @property
    def failed(self) -> int:
        """Jobs dispatched but killed by an injected fault."""
        return self.outcomes.get("failed", 0)

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals shed before execution."""
        return self.shed / self.jobs if self.jobs else 0.0

    @property
    def throughput(self) -> float:
        """Completed jobs per second of makespan (sheds excluded)."""
        if not self.completion_time:
            return 0.0
        return self.completed / self.completion_time

    @property
    def goodput(self) -> float:
        """Deadline-met completions per second of makespan.

        The serving layer's headline metric: raw throughput counts every
        completion, goodput only the ones that still had value when they
        landed.
        """
        if not self.completion_time:
            return 0.0
        return self.deadline_met / self.completion_time

    def summary(self) -> str:
        """One-line digest for reports."""
        return (
            f"{self.dispatcher}: {self.jobs} arrivals -> "
            f"{self.completed} completed ({self.deadline_met} in-SLO), "
            f"{self.shed} shed, {self.failed} failed in "
            f"{self.completion_time * 1e3:.1f} ms; goodput "
            f"{self.goodput:.0f}/s vs throughput {self.throughput:.0f}/s, "
            f"p99 sojourn {self.p99_sojourn * 1e3:.2f} ms"
        )


#: Serial-baseline sojourns per (type, scale) on the default device.
_BASELINE_CACHE: Dict[tuple, float] = {}


def measure_service_baselines(
    type_names: Iterable[str],
    scale: Optional[str] = None,
    spec: Optional[DeviceSpec] = None,
) -> Dict[str, float]:
    """End-to-end serial-baseline latency (seconds) per application type.

    One single-arrival streaming run per type on an otherwise idle
    device: the measured sojourn covers host-side preparation *and* the
    GPU section — the unit an arrival-to-completion SLO has to be scaled
    from (the resilience watchdog's GPU-section baseline would undershoot
    by the preparation cost).  Cached per (type, scale) on the default
    device.
    """
    scale_name = resolve_scale(scale)
    baselines: Dict[str, float] = {}
    for name in sorted(set(type_names)):
        key = (name, scale_name)
        if spec is None and key in _BASELINE_CACHE:
            baselines[name] = _BASELINE_CACHE[key]
            continue
        result = run_streaming(
            [Arrival(index=0, time=0.0, type_name=name)],
            GreedyDispatcher(),
            num_streams=1,
            scale=scale_name,
            spec=spec,
        )
        value = result.sojourn_times[0]
        if spec is None:
            _BASELINE_CACHE[key] = value
        baselines[name] = value
    return baselines


def _fingerprint(
    arrivals: Sequence[Arrival],
    dispatcher: Dispatcher,
    num_streams: int,
    memory_sync: bool,
    scale_name: str,
    power_interval: float,
    config: ServingConfig,
    baselines: Optional[Mapping[str, float]],
) -> str:
    """Content hash of everything that determines the run's outcome log."""
    plan = config.plan
    payload = {
        "arrivals": [[a.index, a.time, a.type_name] for a in arrivals],
        "dispatcher": dispatcher.name,
        "stall_timeout": dispatcher.stall_timeout,
        "num_streams": num_streams,
        "memory_sync": memory_sync,
        "scale": scale_name,
        "power_interval": power_interval,
        "queue_depth": config.queue_depth,
        "queue_policy": config.queue_policy,
        "slo_factor": config.slo_factor,
        "slo_jitter": config.slo_jitter,
        "shed_unreachable": config.shed_unreachable,
        "breaker": (
            [
                config.breaker.threshold,
                config.breaker.cooldown,
                config.breaker.jitter,
            ]
            if config.breaker is not None
            else None
        ),
        "plan": (
            [
                [
                    f.kind.value,
                    f.time,
                    f.target,
                    f.duration,
                    f.factor,
                    f.direction,
                ]
                for f in plan
            ]
            if plan is not None
            else []
        ),
        "seed": config.seed,
        "baselines": sorted((baselines or {}).items()),
    }
    # Fleet-aware runs extend the payload; single-device payloads stay
    # exactly as before so existing journals keep their fingerprints.
    if config.fleet is not None:
        payload["fleet"] = [
            config.fleet.num_devices,
            config.fleet.detection_latency,
            config.fleet.scope_breakers,
        ]
        payload["plan_devices"] = (
            [f.device for f in plan] if plan is not None else []
        )
        if config.fleet.slow_start_window > 0:
            payload["fleet_slow_start"] = [
                config.fleet.slow_start_window,
                config.fleet.slow_start_floor,
            ]
    if config.breaker is not None and config.breaker.slow_start_initial > 0:
        payload["breaker_slow_start"] = [
            config.breaker.slow_start_initial,
            config.breaker.slow_start_interval,
            config.breaker.slow_start_steps,
        ]
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha1(blob).hexdigest()


def _compute_deadlines(
    arrivals: Sequence[Arrival],
    baselines: Mapping[str, float],
    config: ServingConfig,
) -> List[float]:
    """Absolute SLO deadline per arrival index.

    ``deadline = arrival + slo_factor * baseline * (1 + jitter_draw)``;
    jitter draws come from one generator seeded with
    ``(seed, crc32("slo-jitter"))`` consumed in arrival-index order, so
    the schedule is reproducible and independent of trace construction.
    """
    rng = np.random.default_rng(
        [config.seed, zlib.crc32(b"slo-jitter")]
    )
    deadlines = [0.0] * len(arrivals)
    for arrival in sorted(arrivals, key=lambda a: a.index):
        window = config.slo_factor * baselines[arrival.type_name]
        if config.slo_jitter > 0:
            window *= 1.0 + config.slo_jitter * (2.0 * float(rng.random()) - 1.0)
        deadlines[arrival.index] = arrival.time + window
    return deadlines


def run_serving(
    arrivals,
    dispatcher: Dispatcher,
    config: Optional[ServingConfig] = None,
    *,
    num_streams: int = 32,
    memory_sync: bool = True,
    scale: Optional[str] = None,
    spec: Optional[DeviceSpec] = None,
    power_interval: float = 1e-3,
    journal_path=None,
    resume: bool = False,
    telemetry=None,
    tracing=None,
    fingerprint: Optional[str] = None,
    sink=None,
    front_door: bool = False,
) -> ServingResult:
    """Execute an arrival trace under the overload-resilient serving layer.

    With an inert config and no journal this is exactly
    :func:`~repro.core.streaming.run_streaming` (byte-identical results).
    Raises :class:`~repro.sim.errors.HarnessCrash` when the fault plan
    kills the harness mid-run — the journal keeps everything committed up
    to that instant; call again with ``resume=True`` to recover.

    ``tracing`` (a :class:`~repro.telemetry.Tracing`) records one causal
    trace per arrival.  When it also carries a burn-rate config and an
    ``alert_journal`` path, SLO burn-rate alerts are journaled there —
    fenced, crash-safe and replay-verified on resume exactly like the
    outcome journal.  ``None`` leaves results byte-identical.

    **Streamed traces.**  ``arrivals`` may also be a lazy iterable (a
    :mod:`repro.workload` traffic stream).  In that mode the trace is
    never materialized, so per-arrival deadlines must travel on the
    arrivals themselves (``config.slo_factor`` must be 0), a journal
    needs an explicit ``fingerprint`` (the identity hash normally derived
    from the materialized trace), and outcome aggregation moves to the
    ``sink`` — an object with a ``settle(record, arrival_time)`` method
    plus ``outcomes``/``deadline_met`` views, e.g.
    :class:`repro.workload.TrafficStats`.  With a sink the engine runs in
    bounded-memory mode (records are dropped once settled);
    ``front_door=True`` additionally sheds overload arrivals before app
    construction (see :class:`~repro.core.streaming.ServingHooks`).
    """
    config = config or ServingConfig()
    if resume and journal_path is None and (
        tracing is None or tracing.alert_journal is None
    ):
        raise ValueError("resume=True requires a journal_path")
    scale_name = resolve_scale(scale)
    streamed = not isinstance(arrivals, Sequence)

    deadlines: Optional[List[float]] = None
    baselines: Optional[Dict[str, float]] = None
    if config.slo_factor > 0:
        if streamed:
            raise ValueError(
                "slo_factor requires a materialized trace; streamed "
                "arrivals carry their own deadlines"
            )
        if config.baseline_runtimes is not None:
            baselines = dict(config.baseline_runtimes)
        else:
            baselines = measure_service_baselines(
                (a.type_name for a in arrivals), scale=scale_name, spec=spec
            )
        deadlines = _compute_deadlines(arrivals, baselines, config)
    elif streamed and config.baseline_runtimes is not None:
        # Streamed mode: deadlines ride on the arrivals; the baselines
        # feed the deadline-reachability shed check.
        baselines = dict(config.baseline_runtimes)

    # Split the plan: device faults go to the injector, the first
    # HARNESS_CRASH kills the run (unless we are resuming past it).
    crash_at: Optional[float] = None
    device_plan: Optional[FaultPlan] = None
    if config.plan is not None and not config.plan.empty:
        rest = FaultPlan(
            [
                f
                for f in config.plan
                if f.kind is not FaultKind.HARNESS_CRASH
            ]
        )
        if not rest.empty:
            device_plan = rest
        crashes = config.plan.crash_times()
        if crashes and not resume:
            crash_at = crashes[0]

    journal: Optional[RunJournal] = None
    recovered = 0
    if journal_path is not None:
        journal = RunJournal(journal_path)
        if fingerprint is None:
            if streamed:
                raise ValueError(
                    "journaling a streamed trace requires an explicit "
                    "fingerprint (the trace cannot be materialized to "
                    "derive one)"
                )
            fingerprint = _fingerprint(
                arrivals,
                dispatcher,
                num_streams,
                memory_sync,
                scale_name,
                power_interval,
                config,
                baselines,
            )
        recovered = journal.begin(fingerprint, resume=resume)

    # The burn-rate monitor's alert journal: its own file, fingerprinted
    # by the run *plus* the alert policy, with every write fenced.  The
    # main journal's fingerprint is untouched (tracing cannot change the
    # outcome log), so pre-tracing journals stay valid.
    alert_journal: Optional[RunJournal] = None
    if (
        tracing is not None
        and tracing.monitor is not None
        and tracing.alert_journal is not None
    ):
        from ..integrity.fencing import FencedJournal, GenerationFence

        burn = tracing.burn
        if fingerprint is not None:
            run_fpr = fingerprint
        elif streamed:
            raise ValueError(
                "an alert journal over a streamed trace requires an "
                "explicit fingerprint"
            )
        else:
            run_fpr = _fingerprint(
                arrivals,
                dispatcher,
                num_streams,
                memory_sync,
                scale_name,
                power_interval,
                config,
                baselines,
            )
        alert_fpr = hashlib.sha1(
            json.dumps(
                {
                    "run": run_fpr,
                    "budget": burn.budget,
                    "windows": [list(w) for w in burn.windows],
                    "min_events": burn.min_events,
                },
                sort_keys=True,
            ).encode("utf-8")
        ).hexdigest()
        alert_journal = RunJournal(tracing.alert_journal)
        alert_journal.begin(alert_fpr, resume=resume)
        fence = GenerationFence()
        tracing.monitor.journal = FencedJournal(alert_journal, fence)
        tracing.monitor.token = fence.token(0)

    panel: Optional[CircuitBreakerPanel] = None
    if config.breaker is not None:
        panel = CircuitBreakerPanel(
            config.breaker, seed=config.seed, telemetry=telemetry
        )

    gate: Optional[FleetCapacityGate] = None
    if config.fleet is not None:
        gate = FleetCapacityGate.from_plan(
            config.fleet, num_streams, config.plan
        )

    hooks = ServingHooks(
        queue_depth=config.queue_depth,
        queue_policy=config.queue_policy,
        deadlines=deadlines,
        service_estimates=baselines,
        shed_unreachable=config.shed_unreachable
        and (deadlines is not None or (streamed and baselines is not None)),
        breaker=panel,
        journal=journal,
        crash_at=crash_at,
        fault_plan=device_plan,
        fleet_gate=gate,
        on_settle=sink.settle if sink is not None else None,
        retain_records=sink is None,
        front_door=front_door,
    )

    try:
        base = run_streaming(
            arrivals,
            dispatcher,
            num_streams=num_streams,
            memory_sync=memory_sync,
            scale=scale_name,
            spec=spec,
            power_interval=power_interval,
            serving=hooks,
            telemetry=telemetry,
            tracing=tracing,
        )
    except HarnessCrash as crash:
        # The journal holds everything committed before the crash; stamp
        # a durable crash marker and leave it on disk for the resume.
        if journal is not None:
            journal.mark_crash(crash.time)
            journal.close()
        if alert_journal is not None:
            alert_journal.mark_crash(crash.time)
            alert_journal.close()
        raise
    if journal is not None:
        if journal.pending:
            raise JournalMismatchError(
                f"resumed run settled only "
                f"{journal.verified}/{journal.recovered} journaled entries; "
                "the journal belongs to a longer run"
            )
        journal.close()
    if alert_journal is not None:
        if alert_journal.pending:
            raise JournalMismatchError(
                "resumed run did not re-emit every journaled alert record; "
                "the alert journal belongs to a longer run"
            )
        alert_journal.close()

    if sink is not None:
        outcomes = dict(sink.outcomes)
        met = int(sink.deadline_met)
    else:
        outcomes = dict(Counter(r.outcome for r in base.records))
        met = deadline_met_count(base.records)
    return ServingResult(
        **vars(base),
        outcomes=outcomes,
        deadline_met=met,
        breaker_trips=panel.trips if panel is not None else 0,
        breaker_fast_fails=panel.fast_fails if panel is not None else 0,
        recovered_entries=recovered,
        resumed=resume,
        journal_file=str(journal_path) if journal_path is not None else None,
        fleet_devices=gate.num_devices if gate is not None else 0,
        devices_lost=(
            gate.devices_lost(base.completion_time) if gate is not None else 0
        ),
    )


# ---------------------------------------------------------------------------
# Batch-scheduled serving: admission hands whole batches to the scheduler.
# ---------------------------------------------------------------------------


@dataclass
class BatchOutcome:
    """One admitted batch, as decided and as measured."""

    decision: object             # repro.scheduling.SchedulingDecision
    makespan: float              # measured batch makespan (s)
    energy: float                # exact energy over the batch window (J)
    records: list                # AppRecords, all stamped with the order

    @property
    def prediction_error(self) -> float:
        """Signed relative error of the scheduler's makespan prediction."""
        if self.makespan <= 0:
            return 0.0
        return (self.decision.predicted_makespan - self.makespan) / self.makespan


@dataclass
class BatchedServingResult:
    """Everything measured across a batch-scheduled serving run."""

    policy: str
    batches: List[BatchOutcome]
    total_makespan: float        # sum of batch makespans (batches run serially)
    total_energy: float
    cumulative_regret: float     # bandit regret (0 for non-learning policies)
    recovered_entries: int = 0
    resumed: bool = False
    journal_file: Optional[str] = None

    @property
    def decisions(self) -> list:
        return [b.decision for b in self.batches]

    def summary(self) -> str:
        """One-line digest for reports."""
        orders = Counter(d.order_label for d in self.decisions)
        mix = ", ".join(f"{k}x{v}" for k, v in sorted(orders.items()))
        return (
            f"{self.policy}: {len(self.batches)} batches in "
            f"{self.total_makespan * 1e3:.1f} ms ({mix}); "
            f"regret {self.cumulative_regret * 1e3:.2f} ms"
        )


def _normalize_batch(batch, scale_name: str):
    """One admitted batch -> a Workload (grouped FIFO admission order).

    Accepts either a flat sequence of type names or ``(type, count)``
    pairs.  Types are grouped in first-appearance order — the same
    Naive-FIFO convention every offline experiment uses — so the scheduler
    permutes exactly what the workload instantiates.
    """
    from ..core.workload import Workload

    if not batch:
        raise ValueError("empty batch")
    first = batch[0]
    if isinstance(first, str):
        counts: Dict[str, int] = {}
        order: List[str] = []
        for name in batch:
            if name not in counts:
                order.append(name)
            counts[name] = counts.get(name, 0) + 1
        spec = [(name, counts[name]) for name in order]
    else:
        spec = list(batch)
    return Workload.mixed(spec, scale=scale_name)


def run_batched_serving(
    batches: Sequence,
    policy: str = "bandit",
    *,
    width: Optional[int] = None,
    scale: Optional[str] = None,
    spec: Optional[DeviceSpec] = None,
    seed: int = 0,
    epsilon: float = 0.1,
    device: int = 0,
    scheduler=None,
    scheduler_config=None,
    journal_path=None,
    resume: bool = False,
    crash_after: Optional[int] = None,
    telemetry=None,
    tracing=None,
) -> BatchedServingResult:
    """Serve admitted batches through the adaptive batch scheduler.

    Each element of ``batches`` is one admitted batch (a sequence of type
    names, or ``(type, count)`` pairs).  Per batch the scheduler picks the
    launch order, the transfer-mutex setting and the stream width; the
    batch runs on the framework harness with exactly those parameters, and
    its measured makespan is fed back so learning policies improve across
    batches.  Batches execute back-to-back (the serving layer admits the
    next batch when the previous one drains), so ``total_makespan`` is the
    sum of per-batch makespans.

    Crash/resume: with a ``journal_path``, every decision and observation
    is journaled under a fingerprint that includes a digest of the batch
    sequence.  ``crash_after=N`` kills the run after N completed batches
    (test hook, mirroring the fault plan's HARNESS_CRASH); calling again
    with ``resume=True`` replays the run, verifies the journaled prefix
    byte-identically, and returns the result an uninterrupted run would
    have produced.

    Pass a prebuilt ``scheduler`` (:class:`repro.scheduling.BatchScheduler`)
    to share learning state across calls; otherwise one is built from
    ``scheduler_config`` or the keyword arguments.
    """
    from ..framework.harness import HarnessConfig, TestHarness
    from ..scheduling import BatchScheduler, SchedulerConfig

    if resume and journal_path is None and scheduler is None and (
        scheduler_config is None or scheduler_config.journal_path is None
    ):
        raise ValueError("resume=True requires a journal_path")
    scale_name = resolve_scale(scale)
    workloads = [_normalize_batch(b, scale_name) for b in batches]

    own_scheduler = scheduler is None
    if own_scheduler:
        if scheduler_config is None:
            digest = hashlib.sha1(
                json.dumps(
                    [w.types for w in workloads], sort_keys=True
                ).encode("utf-8")
            ).hexdigest()
            scheduler_config = SchedulerConfig(
                policy=policy,
                seed=seed,
                scale=scale_name,
                spec=spec,
                max_width=width,
                epsilon=epsilon,
                journal_path=journal_path,
                resume=resume,
                salt=f"batched-serving:{digest}",
            )
        scheduler = BatchScheduler(scheduler_config)
    sched_policy = scheduler.config.policy

    if telemetry is not None:
        from ..telemetry.probes import instrument_scheduler

        instrument_scheduler(telemetry, scheduler)

    outcomes: List[BatchOutcome] = []
    try:
        for i, workload in enumerate(workloads):
            if crash_after is not None and i >= crash_after:
                # Mirrors the fault plan's HARNESS_CRASH: abandon the run
                # mid-stream, leaving the journal prefix for the resume.
                raise HarnessCrash(sum(b.makespan for b in outcomes))
            decision = scheduler.schedule(
                workload.types, device=device, width=width
            )
            apps = workload.instantiate(decision.schedule)
            batch_ctx = None
            if tracing is not None:
                # Scope the tracer so per-app trace names stay unique
                # across batches (each batch reuses instance numbers),
                # and record the scheduler's decision as its own trace.
                tracing.tracer.set_scope(f"batch-{i}")
                batch_ctx = tracing.tracer.start_trace(
                    "batch", 0.0, policy=sched_policy
                )
                tracing.tracer.instant(
                    batch_ctx,
                    "schedule.decision",
                    "scheduler-decision",
                    0.0,
                    order=decision.order_label,
                    num_streams=decision.num_streams,
                    memory_sync=decision.memory_sync,
                    predicted=decision.predicted_makespan,
                )
            harness = TestHarness(
                HarnessConfig(
                    apps=apps,
                    num_streams=decision.num_streams,
                    memory_sync=decision.memory_sync,
                    spec=spec,
                    seed=seed,
                    order_label=decision.order_label,
                    tracing=tracing,
                )
            )
            result = harness.run()
            if batch_ctx is not None:
                tracing.tracer.end_trace(
                    batch_ctx, result.makespan, outcome="completed"
                )
                tracing.tracer.set_scope("")
            scheduler.observe(decision, result.makespan, records=result.records)
            outcomes.append(
                BatchOutcome(
                    decision=decision,
                    makespan=result.makespan,
                    energy=result.energy,
                    records=result.records,
                )
            )
    except HarnessCrash as crash:
        # Decisions/observations up to the crash are on disk; stamp the
        # crash marker and leave the journal for the resume.
        scheduler.mark_crash(crash.time)
        if own_scheduler:
            scheduler.close()
        raise
    if own_scheduler:
        scheduler.close()

    return BatchedServingResult(
        policy=sched_policy,
        batches=outcomes,
        total_makespan=sum(b.makespan for b in outcomes),
        total_energy=sum(b.energy for b in outcomes),
        cumulative_regret=scheduler.cumulative_regret(device),
        recovered_entries=scheduler.recovered,
        resumed=resume,
        journal_file=(
            str(scheduler.config.journal_path)
            if scheduler.config.journal_path is not None
            else None
        ),
    )
