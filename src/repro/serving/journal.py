"""Crash-safe run journaling for the serving layer.

The journal is a line-oriented file of checksummed **envelope records**
(see :mod:`repro.integrity.record`): one header record identifying the
run configuration (by fingerprint), then one record per *terminal job
outcome*, appended in commit order.  Each append is flushed and fsynced
before :meth:`RunJournal.record` returns, and file creation / atomic
rewrite is followed by a directory fsync — the durability contract is
"when record() returns, the OS has the bytes *and* the name", so the
crash-point fuzzing harness tests what a real SIGKILL would leave behind.

Because every record carries a CRC-32 and its file sequence number,
recovery is no longer limited to "one torn trailing line": a tail cut
mid-write — even mid-UTF-8-codepoint — *and* a byte flipped anywhere in
the middle of the file are both detected, the journal is truncated to its
last valid prefix, the rejected bytes are quarantined to a
``<path>.quarantine`` sidecar, and the scan is reported in a typed
:class:`~repro.integrity.record.RecoveryReport` (:attr:`RunJournal.
recovery`).

**Resume is replay.**  The simulation is deterministic, so the cheapest
*and* safest recovery is to re-execute the run from the start and *verify*
each recomputed outcome against the journaled prefix instead of appending
it; once the prefix is exhausted, new outcomes append as usual.  The
resumed run therefore produces byte-identical results to an uninterrupted
run, and any divergence (changed code, edited journal, wrong config) is
caught as a :class:`JournalMismatchError` rather than silently corrupting
the log.  The fingerprint check makes "resumed against the wrong run"
a first-class error, not a garbage result.

Pre-envelope (version 1) journals — plain JSONL — are detected by format
sniffing and read through a compat path; resuming one rewrites it in
envelope form.  Unknown formats are rejected with an actionable error,
never misparsed.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from ..integrity.record import (
    MARKER_KEY,
    RecoveryReport,
    UnknownJournalFormat,
    encode_line,
    fsync_dir,
    quarantine_bytes,
    scan_file,
)

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "LEGACY_JOURNAL_VERSION",
    "JournalError",
    "JournalMismatchError",
    "RunJournal",
]

JOURNAL_FORMAT = "repro-serving-journal"
#: Current on-disk version: checksummed envelope records.
JOURNAL_VERSION = 2
#: Pre-envelope plain-JSONL journals, still readable via the compat path.
LEGACY_JOURNAL_VERSION = 1


class JournalError(Exception):
    """The journal file is missing, unreadable or structurally invalid."""


class JournalMismatchError(JournalError):
    """A resumed run diverged from (or does not belong to) its journal."""


def _canonical(entry: Dict) -> Dict:
    """Round-trip an entry through JSON so comparisons see what disk sees.

    ``json`` serializes floats with ``repr`` and parses them back exactly,
    so a recomputed entry equals its journaled form iff the underlying
    values are bit-identical.
    """
    return json.loads(json.dumps(entry, sort_keys=True))


class RunJournal:
    """Append-only checksummed outcome log with replay-verified resume.

    Lifecycle: construct with a path, :meth:`begin` (fresh or resuming),
    feed every terminal outcome through :meth:`record`, :meth:`close`.
    The object is the ``journal`` duck type consumed by
    :class:`~repro.core.streaming.ServingHooks`.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self._seq = 0
        self._pending: Deque[Dict] = deque()
        #: Entries recovered from a prior run at :meth:`begin`.
        self.recovered = 0
        #: Recovered entries successfully re-verified during replay.
        self.verified = 0
        #: New entries appended (and fsynced) this run.
        self.appended = 0
        #: Marker records (e.g. crash markers) appended this run.
        self.markers = 0
        #: Scan report from the last resume (``None`` for fresh runs).
        self.recovery: Optional[RecoveryReport] = None

    # -- setup -------------------------------------------------------------

    def begin(self, fingerprint: str, resume: bool = False) -> int:
        """Open the journal; returns the number of recovered entries.

        Fresh runs truncate and write the header.  Resumed runs scan the
        existing file, check its fingerprint against this run's
        configuration, truncate to the last valid prefix (quarantining
        anything after it — a torn tail or flipped byte), and queue the
        surviving entries for replay verification.
        """
        if resume:
            header, entries = self._load(repair=True)
            if header.get("fingerprint") != fingerprint:
                raise JournalMismatchError(
                    f"journal {self.path} was written by a different run "
                    f"configuration (fingerprint {header.get('fingerprint')!r}"
                    f" != {fingerprint!r})"
                )
            self._pending = deque(entries)
            self.recovered = len(entries)
            # Rewrite header + surviving entries in envelope form so torn
            # bytes, markers and any legacy formatting are gone before we
            # start appending again.
            header = {
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(encode_line(header, 0))
                for seq, entry in enumerate(entries, start=1):
                    fh.write(encode_line(entry, seq))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            fsync_dir(self.path)
            self._seq = len(entries) + 1
        else:
            header = {
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as fh:
                fh.write(encode_line(header, 0))
                fh.flush()
                os.fsync(fh.fileno())
            fsync_dir(self.path)
            self._seq = 1
        self._fh = open(self.path, "a", encoding="utf-8")
        return self.recovered

    def _load(self, repair: bool = False) -> Tuple[Dict, List[Dict]]:
        """Scan the file; with ``repair`` also quarantine invalid bytes.

        Returns the header payload and the surviving entries (markers
        excluded), leaving the scan report in :attr:`recovery`.  Raises
        :class:`JournalError` when the file is absent, empty, of an
        unknown format, or carries the wrong header.
        """
        try:
            header, entries, report, prefix = scan_file(self.path)
        except FileNotFoundError:
            raise JournalError(
                f"cannot resume: journal {self.path} does not exist"
            ) from None
        except UnknownJournalFormat as exc:
            raise JournalError(
                f"{self.path} is not a {JOURNAL_FORMAT} file: {exc}"
            ) from None
        self.recovery = report
        if report.format == "legacy" and report.mid_file_corruption:
            # Legacy lines carry no checksum, so a bad line mid-file
            # cannot be blamed on a crash: refuse rather than guess which
            # suffix to trust.
            raise JournalError(
                f"journal {self.path} is corrupt at line "
                f"{report.first_invalid_line} (legacy format: only the "
                "final line may be torn); re-run without --resume or "
                "restore the file from backup"
            )
        if header is None:
            raise JournalError(
                f"journal {self.path} has a corrupt header line"
            )
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(f"{self.path} is not a {JOURNAL_FORMAT} file")
        if header.get("version") not in (
            JOURNAL_VERSION, LEGACY_JOURNAL_VERSION
        ):
            raise JournalError(
                f"journal {self.path} has unsupported version "
                f"{header.get('version')!r} (this build reads versions "
                f"{LEGACY_JOURNAL_VERSION} and {JOURNAL_VERSION})"
            )
        if repair and report.quarantined_bytes:
            data = self.path.read_bytes()
            report.sidecar = quarantine_bytes(
                self.path, data[len(data) - report.quarantined_bytes:]
            )
        return header, entries

    # -- engine-facing surface --------------------------------------------

    def record(self, entry: Dict) -> None:
        """Commit one terminal outcome.

        During replay of a resumed run this *verifies* the outcome against
        the journaled prefix instead of appending; past the prefix it
        appends one fsynced envelope record.
        """
        if self._fh is None:
            raise JournalError("journal used before begin() / after close()")
        entry = _canonical(entry)
        if self._pending:
            prior = self._pending.popleft()
            if prior != entry:
                raise JournalMismatchError(
                    f"resumed run diverged from journal {self.path} at "
                    f"recovered entry {self.verified + 1}/{self.recovered}: "
                    f"journaled {prior!r}, recomputed {entry!r}"
                )
            self.verified += 1
            return
        self._append(entry)
        self.appended += 1

    def mark_crash(self, time: float) -> None:
        """Durably note that the run is dying (best effort, idempotent).

        The marker is an envelope record like any other — fsynced before
        the crash propagates — but it is *not* an entry: :meth:`entries`
        filters it and the resume rewrite drops it, so a resumed journal
        still converges to the uninterrupted run's bytes.
        """
        if self._fh is None:
            return
        self._append({MARKER_KEY: "crash", "t": float(time)})
        self.markers += 1

    def _append(self, payload: Dict) -> None:
        self._fh.write(encode_line(payload, self._seq))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq += 1

    # -- teardown ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Recovered entries not yet re-verified by the replay."""
        return len(self._pending)

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def entries(self) -> List[Dict]:
        """Read back every intact entry currently on disk."""
        _, entries = self._load()
        return entries

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
