"""Crash-safe run journaling for the serving layer.

The journal is a JSONL file: one header line identifying the run
configuration (by fingerprint), then one line per *terminal job outcome*,
appended in commit order with a flush+fsync per line — so at any crash
point the file holds a prefix of the run's outcome log plus at most one
torn trailing line (which recovery discards).

**Resume is replay.**  The simulation is deterministic, so the cheapest
*and* safest recovery is to re-execute the run from the start and *verify*
each recomputed outcome against the journaled prefix instead of appending
it; once the prefix is exhausted, new outcomes append as usual.  The
resumed run therefore produces byte-identical results to an uninterrupted
run, and any divergence (changed code, edited journal, wrong config) is
caught as a :class:`JournalMismatchError` rather than silently corrupting
the log.  The fingerprint check makes "resumed against the wrong run"
a first-class error, not a garbage result.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalMismatchError",
    "RunJournal",
]

JOURNAL_FORMAT = "repro-serving-journal"
JOURNAL_VERSION = 1


class JournalError(Exception):
    """The journal file is missing, unreadable or structurally invalid."""


class JournalMismatchError(JournalError):
    """A resumed run diverged from (or does not belong to) its journal."""


def _canonical(entry: Dict) -> Dict:
    """Round-trip an entry through JSON so comparisons see what disk sees.

    ``json`` serializes floats with ``repr`` and parses them back exactly,
    so a recomputed entry equals its journaled form iff the underlying
    values are bit-identical.
    """
    return json.loads(json.dumps(entry, sort_keys=True))


class RunJournal:
    """Append-only JSONL outcome log with replay-verified resume.

    Lifecycle: construct with a path, :meth:`begin` (fresh or resuming),
    feed every terminal outcome through :meth:`record`, :meth:`close`.
    The object is the ``journal`` duck type consumed by
    :class:`~repro.core.streaming.ServingHooks`.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self._pending: Deque[Dict] = deque()
        #: Entries recovered from a prior run at :meth:`begin`.
        self.recovered = 0
        #: Recovered entries successfully re-verified during replay.
        self.verified = 0
        #: New entries appended (and fsynced) this run.
        self.appended = 0

    # -- setup -------------------------------------------------------------

    def begin(self, fingerprint: str, resume: bool = False) -> int:
        """Open the journal; returns the number of recovered entries.

        Fresh runs truncate and write the header.  Resumed runs load the
        existing file, check its fingerprint against this run's
        configuration, discard a torn trailing line if the crash left
        one, and queue the intact entries for replay verification.
        """
        if resume:
            header, entries = self._load()
            if header.get("fingerprint") != fingerprint:
                raise JournalMismatchError(
                    f"journal {self.path} was written by a different run "
                    f"configuration (fingerprint {header.get('fingerprint')!r}"
                    f" != {fingerprint!r})"
                )
            self._pending = deque(entries)
            self.recovered = len(entries)
            # Rewrite header + intact entries so the torn line (if any) is
            # gone before we start appending again.
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                for entry in entries:
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        else:
            header = {
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        self._fh = open(self.path, "a", encoding="utf-8")
        return self.recovered

    def _load(self) -> Tuple[Dict, List[Dict]]:
        """Parse header + entries, tolerating one torn trailing line."""
        if not self.path.exists():
            raise JournalError(
                f"cannot resume: journal {self.path} does not exist"
            )
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            raise JournalError(f"journal {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal {self.path} has a corrupt header line"
            ) from exc
        if (
            not isinstance(header, dict)
            or header.get("format") != JOURNAL_FORMAT
        ):
            raise JournalError(f"{self.path} is not a {JOURNAL_FORMAT} file")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {self.path} has unsupported version "
                f"{header.get('version')!r}"
            )
        entries: List[Dict] = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn final line from the crash; discard
                raise JournalError(
                    f"journal {self.path} is corrupt at line {lineno} "
                    "(only the final line may be torn)"
                ) from exc
        return header, entries

    # -- engine-facing surface --------------------------------------------

    def record(self, entry: Dict) -> None:
        """Commit one terminal outcome.

        During replay of a resumed run this *verifies* the outcome against
        the journaled prefix instead of appending; past the prefix it
        appends one fsynced line.
        """
        if self._fh is None:
            raise JournalError("journal used before begin() / after close()")
        entry = _canonical(entry)
        if self._pending:
            prior = self._pending.popleft()
            if prior != entry:
                raise JournalMismatchError(
                    f"resumed run diverged from journal {self.path} at "
                    f"recovered entry {self.verified + 1}/{self.recovered}: "
                    f"journaled {prior!r}, recomputed {entry!r}"
                )
            self.verified += 1
            return
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    # -- teardown ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Recovered entries not yet re-verified by the replay."""
        return len(self._pending)

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def entries(self) -> List[Dict]:
        """Read back every intact entry currently on disk."""
        _, entries = self._load()
        return entries

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
