"""Overload-resilient serving layer on top of the streaming dispatcher.

The paper frames its harness as the substrate for "intelligent scheduler
algorithms to ... manage streaming workloads"; :mod:`repro.core.streaming`
built the open-loop dispatcher, and this package makes it survivable under
overload and faults:

* **Bounded admission** — a finite queue with a backpressure policy
  (block / reject / shed-oldest) instead of the implicit unbounded FIFO.
* **Deadline-aware load shedding** — every arrival carries a seeded SLO
  deadline derived from its type's serial-baseline runtime; jobs whose
  queueing delay already makes the deadline unreachable are shed, and
  *goodput* (in-SLO completions per second) is reported separately from
  raw throughput.
* **Circuit breakers** — per app type, opening after K consecutive
  faults, failing fast while open, half-open probe after a seeded-jitter
  cooldown.
* **Crash-safe journaling** — every terminal outcome is an fsynced JSONL
  line; a run killed mid-flight (the ``harness_crash`` fault kind)
  resumes by deterministic replay, verified entry-by-entry against the
  journal, reproducing the uninterrupted run byte-for-byte.
* **Fleet-aware admission** — with a :class:`FleetServingConfig`,
  admission capacity shrinks when a device loss is detected, jobs are
  routed round-robin across surviving devices, and circuit breakers are
  scoped per device (see :class:`FleetCapacityGate` and
  :mod:`repro.fleet` for the full multi-device harness).

Entry point: :func:`run_serving`.  See ``docs/serving.md`` and
``docs/fleet.md``.
"""

from .breaker import BreakerState, CircuitBreakerPanel
from .config import (
    QUEUE_POLICIES,
    BreakerConfig,
    FleetServingConfig,
    ServingConfig,
)
from .fleet_gate import FleetCapacityGate
from .journal import (
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    LEGACY_JOURNAL_VERSION,
    JournalError,
    JournalMismatchError,
    RunJournal,
)
from .service import (
    SHED_OUTCOMES,
    BatchedServingResult,
    BatchOutcome,
    ServingResult,
    measure_service_baselines,
    run_batched_serving,
    run_serving,
)

__all__ = [
    "BatchOutcome",
    "BatchedServingResult",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreakerPanel",
    "FleetCapacityGate",
    "FleetServingConfig",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "LEGACY_JOURNAL_VERSION",
    "JournalError",
    "JournalMismatchError",
    "QUEUE_POLICIES",
    "RunJournal",
    "SHED_OUTCOMES",
    "ServingConfig",
    "ServingResult",
    "measure_service_baselines",
    "run_batched_serving",
    "run_serving",
]
