"""Adaptive scheduling: online ordering, sync and concurrency decisions.

The paper's largest win — up to 31.8% makespan improvement — comes from
choosing a launch order plus the host-side transfer mutex (Figures 3, 7,
8), but those five orderings were only ever swept *offline*.  This package
puts the choice online, between serving admission and the framework
harness.  Per admitted batch, a :class:`BatchScheduler` selects

(a) a **launch order** (one of the five static policies, a greedy
    transfer/compute interleaving, or an epsilon-greedy bandit that learns
    the best static order per workload-mix signature),
(b) whether to take the Section III-B **HtoD transfer mutex**, and
(c) a **concurrency width** (how many streams the batch may spread over).

Layout:

* :mod:`~repro.scheduling.orders` — the five Figure 3 static orders
  (canonical home; re-exported by ``repro.framework.scheduler``).
* :mod:`~repro.scheduling.characterize` — transfer-heavy vs compute-heavy
  classification from declared Table III geometry blended with observed
  per-record telemetry.
* :mod:`~repro.scheduling.policies` — the policy registry: five static
  wrappers, ``greedy-interleave`` and ``bandit``.
* :mod:`~repro.scheduling.scheduler` — :class:`BatchScheduler`: decision
  journaling (crash-resume replays choices byte-identically), per-device
  policy state, predicted-vs-observed accounting.

Everything is deterministic under a fixed seed; see ``docs/scheduling.md``.
"""

from __future__ import annotations

from .orders import (
    FIGURE_3,
    SchedulingOrder,
    all_orders,
    make_schedule,
    ordering_rows,
    schedule_signature,
)

__all__ = [
    "FIGURE_3",
    "SchedulingOrder",
    "all_orders",
    "make_schedule",
    "ordering_rows",
    "schedule_signature",
    # lazy (see __getattr__):
    "AppClass",
    "TypeProfile",
    "WorkloadCharacterizer",
    "BatchContext",
    "SchedulingDecision",
    "SchedulingPolicy",
    "StaticOrderPolicy",
    "GreedyInterleavePolicy",
    "EpsilonGreedyBanditPolicy",
    "POLICY_NAMES",
    "make_policy",
    "SchedulerConfig",
    "BatchScheduler",
]

#: name -> submodule for the adaptive layer.  Resolved lazily so that
#: importing ``repro.framework`` (whose ``scheduler`` shim pulls in
#: :mod:`.orders`) does not drag the characterizer / harness stack along —
#: which would be a circular import during package initialization.
_LAZY = {
    "AppClass": "characterize",
    "TypeProfile": "characterize",
    "WorkloadCharacterizer": "characterize",
    "BatchContext": "policies",
    "SchedulingDecision": "policies",
    "SchedulingPolicy": "policies",
    "StaticOrderPolicy": "policies",
    "GreedyInterleavePolicy": "policies",
    "EpsilonGreedyBanditPolicy": "policies",
    "POLICY_NAMES": "policies",
    "make_policy": "policies",
    "SchedulerConfig": "scheduler",
    "BatchScheduler": "scheduler",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
