"""The batch scheduler: online ordering, sync and width decisions.

:class:`BatchScheduler` sits between serving admission and the framework
harness.  Per admitted batch it consults a policy (see
:mod:`~repro.scheduling.policies`) for the launch order, predicts the DMA
contention stretch to decide whether the batch should take the Section
III-B transfer mutex, and grants a concurrency width.  Measured makespans
are fed back through :meth:`observe`, which is what lets the bandit policy
learn the best static order per workload mix.

Decisions and observations are journaled through the serving layer's
:class:`~repro.serving.journal.RunJournal`: a crashed batch-serving run
resumed against its journal replays every decision and *verifies* it
byte-identically against the recorded prefix — divergence (changed seed,
code, or policy) raises instead of silently re-deciding differently.

Per-device policy state: a fleet shares one scheduler, but each device id
gets its own policy instance (its own bandit arms), because makespans
measured on one device's queue say nothing about another's backlog.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .characterize import WorkloadCharacterizer
from .policies import (
    BatchContext,
    EpsilonGreedyBanditPolicy,
    POLICY_NAMES,
    SchedulingDecision,
    SchedulingPolicy,
    make_policy,
    mix_signature,
)

__all__ = ["SchedulerConfig", "BatchScheduler", "DEFAULT_SYNC_THRESHOLD"]

#: Predicted DMA stretch at or above which the transfer mutex is enabled.
#: Calibrated so a homogeneous compute-heavy batch (gaussian, stretch ~1.6
#: at width 8) keeps the mutex off while any mixed or transfer-leaning
#: batch (stretch ~3+) turns it on — matching the paper's Figure 8 finding
#: that sync helps precisely when transfers contend.
DEFAULT_SYNC_THRESHOLD = 2.0


@dataclass
class SchedulerConfig:
    """Everything that shapes scheduling decisions (and the journal key).

    ``policy`` is a registry name from
    :data:`~repro.scheduling.policies.POLICY_NAMES`.  ``sync_override``
    forces the mutex on/off regardless of the predictor (``None`` = let the
    predictor decide).  ``max_width`` caps the granted concurrency width.
    ``journal_path``/``resume`` enable crash-safe decision journaling.
    """

    policy: str = "bandit"
    seed: int = 0
    scale: Optional[str] = None
    spec: Optional[object] = None
    max_width: Optional[int] = None
    sync_threshold: float = DEFAULT_SYNC_THRESHOLD
    sync_override: Optional[bool] = None
    epsilon: float = 0.1
    decay: float = 0.25
    journal_path: Optional[Union[str, Path]] = None
    resume: bool = False
    policy_options: Dict = field(default_factory=dict)
    #: Caller-provided discriminator mixed into the fingerprint — batched
    #: serving digests its batch sequence here, so a journal can never be
    #: resumed against a different batch stream.
    salt: str = ""

    def fingerprint(self) -> str:
        """Stable digest of every decision-shaping field.

        The journal refuses to resume under a different fingerprint, so
        any change that could alter the decision stream (policy, seed,
        scale, thresholds) is caught before replay rather than surfacing
        as a confusing mid-replay mismatch.
        """
        payload = {
            "format": "repro-scheduler",
            "version": 1,
            "policy": self.policy,
            "seed": self.seed,
            "scale": self.scale,
            "max_width": self.max_width,
            "sync_threshold": self.sync_threshold,
            "sync_override": self.sync_override,
            "epsilon": self.epsilon,
            "decay": self.decay,
            "policy_options": {
                k: self.policy_options[k] for k in sorted(self.policy_options)
            },
            "salt": self.salt,
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha1(blob).hexdigest()


class BatchScheduler:
    """Per-batch decision engine with journaling and feedback learning.

    Usage::

        sched = BatchScheduler(SchedulerConfig(policy="bandit", seed=7))
        decision = sched.schedule(["gaussian"] * 4 + ["nn"] * 4)
        ... run the batch with decision.schedule / decision.memory_sync ...
        sched.observe(decision, measured_makespan)

    The scheduler is a context manager; exiting closes the journal.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()
        if self.config.policy not in POLICY_NAMES:
            raise KeyError(
                f"unknown policy {self.config.policy!r}; "
                f"available: {POLICY_NAMES}"
            )
        self.characterizer = WorkloadCharacterizer(
            scale=self.config.scale, spec=self.config.spec
        )
        #: device id -> policy instance (independent learning state).
        self._policies: Dict[int, SchedulingPolicy] = {}
        #: device id -> number of decisions issued.
        self._decision_counts: Dict[int, int] = {}
        #: All decisions issued, in issue order (telemetry reads this).
        self.decisions: List[SchedulingDecision] = []
        #: Parallel to :attr:`decisions`: observed makespan or ``None``.
        self.observed: List[Optional[float]] = []
        #: Parallel to :attr:`decisions`: predicted makespan at decide time.
        self.predicted: List[float] = []
        self._journal = None
        self._recovered = 0
        if self.config.journal_path is not None:
            from ..serving.journal import RunJournal

            self._journal = RunJournal(self.config.journal_path)
            self._recovered = self._journal.begin(
                self.config.fingerprint(), resume=self.config.resume
            )

    # -- policy state ------------------------------------------------------

    def _policy_for(self, device: int) -> SchedulingPolicy:
        policy = self._policies.get(device)
        if policy is None:
            kwargs = dict(self.config.policy_options)
            if self.config.policy == EpsilonGreedyBanditPolicy.name:
                kwargs.setdefault("epsilon", self.config.epsilon)
                kwargs.setdefault("decay", self.config.decay)
            policy = make_policy(self.config.policy, **kwargs)
            self._policies[device] = policy
        return policy

    def policy_for(self, device: int = 0) -> SchedulingPolicy:
        """The (lazily created) policy instance owning ``device``'s state."""
        return self._policy_for(device)

    # -- prediction --------------------------------------------------------

    def predicted_stretch(self, types: Sequence[str], width: int) -> float:
        """Heuristic DMA latency stretch for a batch at a given width.

        ``1 + (effective width - 1) * mean transfer fraction``: each
        concurrently launched instance adds contention proportional to how
        transfer-bound the mix is.  Width 1 or a pure-compute mix predicts
        no stretch.
        """
        if not types:
            return 1.0
        eff = max(1, min(width, len(types)))
        mean_fraction = sum(
            self.characterizer.fraction(t) for t in types
        ) / len(types)
        return 1.0 + (eff - 1) * mean_fraction

    def predicted_makespan(self, types: Sequence[str], width: int) -> float:
        """Declared-geometry makespan estimate (lower-bound flavoured)."""
        if not types:
            return 0.0
        eff = max(1, min(width, len(types)))
        estimates = [self.characterizer.serial_estimate(t) for t in types]
        return max(sum(estimates) / eff, max(estimates))

    def _decide_sync(self, stretch: float) -> bool:
        if self.config.sync_override is not None:
            return bool(self.config.sync_override)
        return stretch >= self.config.sync_threshold

    # -- the decision ------------------------------------------------------

    def schedule(
        self,
        types: Sequence[str],
        device: int = 0,
        width: Optional[int] = None,
    ) -> SchedulingDecision:
        """Decide launch order, sync and width for one admitted batch.

        ``types`` is the batch's type sequence in admission (FIFO) order;
        ``width`` an optional caller-side stream cap (defaults to the batch
        size, further capped by ``config.max_width``).
        """
        types = tuple(types)
        if not types:
            raise ValueError("cannot schedule an empty batch")
        granted = width if width is not None else len(types)
        if self.config.max_width is not None:
            granted = min(granted, self.config.max_width)
        granted = max(1, min(granted, len(types)))

        index = self._decision_counts.get(device, 0)
        ctx = BatchContext(
            types=types,
            num_streams=granted,
            device=device,
            decision_index=index,
            seed=self.config.seed,
        )
        policy = self._policy_for(device)
        schedule, order_label = policy.schedule(ctx, self.characterizer)

        stretch = self.predicted_stretch(types, granted)
        decision = SchedulingDecision(
            policy=self.config.policy,
            order_label=order_label,
            schedule=tuple(schedule),
            memory_sync=self._decide_sync(stretch),
            num_streams=granted,
            signature=mix_signature(types, granted),
            device=device,
            decision_index=index,
            predicted_makespan=self.predicted_makespan(types, granted),
            predicted_stretch=stretch,
            explored=policy.explored_last,
        )
        self._decision_counts[device] = index + 1
        self.decisions.append(decision)
        self.observed.append(None)
        self.predicted.append(decision.predicted_makespan)
        if self._journal is not None:
            self._journal.record(decision.to_journal())
        return decision

    # -- feedback ----------------------------------------------------------

    def observe(
        self,
        decision: SchedulingDecision,
        makespan: float,
        records: Optional[Sequence] = None,
    ) -> None:
        """Feed one batch's measured makespan (and records) back.

        Updates the deciding device's policy (bandit arm means), the
        characterizer's observed EMA (when ``records`` are given), and the
        journal.  Must be called in decision order per scheduler for the
        journal replay to stay aligned.
        """
        policy = self._policy_for(decision.device)
        policy.observe(decision.signature, decision.order_label, makespan)
        if records is not None:
            self.characterizer.observe_all(records)
        for i in range(len(self.decisions) - 1, -1, -1):
            if self.decisions[i] is decision:
                self.observed[i] = makespan
                break
        if self._journal is not None:
            self._journal.record(
                {
                    "kind": "observation",
                    "index": decision.decision_index,
                    "device": decision.device,
                    "signature": decision.signature,
                    "order": decision.order_label,
                    "makespan": makespan,
                }
            )

    # -- introspection -----------------------------------------------------

    @property
    def recovered(self) -> int:
        """Journal entries recovered at :meth:`__init__` (resume only)."""
        return self._recovered

    @property
    def journal(self):
        """The underlying :class:`RunJournal`, or ``None``."""
        return self._journal

    def cumulative_regret(self, device: int = 0) -> float:
        """Bandit regret for a device (0.0 for non-learning policies)."""
        policy = self._policies.get(device)
        return getattr(policy, "cumulative_regret", 0.0) if policy else 0.0

    def decision_count(self, device: Optional[int] = None) -> int:
        """Decisions issued — for one device or in total."""
        if device is None:
            return len(self.decisions)
        return self._decision_counts.get(device, 0)

    def mark_crash(self, time: float) -> None:
        """Stamp a durable crash marker in the decision journal (no-op
        without one); see :meth:`repro.serving.journal.RunJournal.
        mark_crash`."""
        if self._journal is not None:
            self._journal.mark_crash(time)

    def close(self) -> None:
        """Close the journal (idempotent)."""
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
