"""Workload characterization: transfer-heavy vs compute-heavy app types.

The greedy interleaving policy and the sync predictor both need to know,
per application type, how much of its serial life is PCIe transfer versus
kernel execution.  Two sources feed that estimate:

* **Declared geometry** (Table III): the type's :class:`~repro.framework.\
kernel.AppProfile` gives total HtoD/DtoH payload (costed with the spec's
  DMA wire model) and the kernel launch list (costed with each launch's
  serial duration at device-wide occupancy — the same estimate Figure 5
  uses for its serialized reference).
* **Observed records**: every finished :class:`~repro.framework.metrics.\
AppRecord` carries measured ``pure_transfer_time`` and
  ``kernel_busy_time``; :meth:`WorkloadCharacterizer.observe` folds them
  in with an exponential moving average, so the classification tracks what
  the telemetry actually saw rather than what the geometry promised.

The blend is deterministic: with no observations the declared prior is
returned exactly; each observation moves the estimate by a fixed
``ema_alpha`` step.  Classification is a threshold on the blended transfer
fraction; :meth:`compute_work` ranks types by aggregate block-residency
time (blocks x block duration), the device-filling-ness key the greedy
policy sorts on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

__all__ = [
    "AppClass",
    "TypeProfile",
    "WorkloadCharacterizer",
    "DEFAULT_TRANSFER_THRESHOLD",
]

#: Blended transfer fraction at or above which a type is transfer-heavy.
DEFAULT_TRANSFER_THRESHOLD = 0.5


class AppClass(Enum):
    """Coarse resource class of an application type."""

    TRANSFER_HEAVY = "transfer-heavy"
    COMPUTE_HEAVY = "compute-heavy"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TypeProfile:
    """One type's characterization snapshot.

    ``transfer_fraction`` is transfer time / (transfer + compute time) in
    [0, 1]; ``compute_work`` is the declared aggregate block-residency time
    in seconds (how much parallel compute the type pushes at the device).
    """

    type_name: str
    transfer_fraction: float
    app_class: AppClass
    compute_work: float
    declared_fraction: float
    observed_fraction: Optional[float]
    observations: int

    @property
    def transfer_heavy(self) -> bool:
        return self.app_class is AppClass.TRANSFER_HEAVY


class WorkloadCharacterizer:
    """Classifies app types from declared geometry plus observed records.

    Parameters
    ----------
    scale:
        Problem-size profile used to resolve declared geometry (explicit
        argument > ``REPRO_SCALE`` env > ``"paper"``, as everywhere).
    spec:
        Device spec for the DMA/occupancy cost model (default Tesla K20).
    threshold:
        Transfer fraction at or above which a type is transfer-heavy.
    ema_alpha:
        Weight of each new observation in the observed-fraction EMA.
    """

    def __init__(
        self,
        scale: Optional[str] = None,
        spec=None,
        threshold: float = DEFAULT_TRANSFER_THRESHOLD,
        ema_alpha: float = 0.25,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        from ..core.workload import resolve_scale
        from ..gpu.specs import tesla_k20

        self.scale = resolve_scale(scale)
        self.spec = spec or tesla_k20()
        self.threshold = threshold
        self.ema_alpha = ema_alpha
        #: type -> (declared transfer seconds, declared compute seconds,
        #: declared compute work) from geometry, computed once per type.
        self._declared: Dict[str, tuple] = {}
        #: type -> EMA of observed transfer fraction.
        self._observed: Dict[str, float] = {}
        #: type -> number of records folded into the EMA.
        self._counts: Dict[str, int] = {}

    # -- declared geometry -------------------------------------------------

    def _declared_costs(self, type_name: str) -> tuple:
        cached = self._declared.get(type_name)
        if cached is not None:
            return cached
        from ..apps.registry import get_app_class
        from ..core.workload import SCALES
        from ..framework.kernel import KernelPhase
        from ..gpu.occupancy import device_wide_blocks

        kwargs = SCALES[self.scale].get(type_name, {})
        profile = get_app_class(type_name).build_profile(**dict(kwargs))
        transfer = self.spec.dma_htod.transfer_time(
            profile.htod_bytes
        ) + self.spec.dma_dtoh.transfer_time(profile.dtoh_bytes)
        compute = 0.0
        work = 0.0
        for phase in profile.phases:
            if not isinstance(phase, KernelPhase):
                continue
            for k in phase.descriptors:
                resident = min(device_wide_blocks(k, self.spec), k.num_blocks)
                compute += k.serial_duration(resident)
                work += k.num_blocks * k.block_duration
        costs = (transfer, compute, work)
        self._declared[type_name] = costs
        return costs

    def declared_fraction(self, type_name: str) -> float:
        """Transfer fraction from geometry alone (the prior)."""
        transfer, compute, _ = self._declared_costs(type_name)
        total = transfer + compute
        return transfer / total if total > 0 else 0.0

    def serial_estimate(self, type_name: str) -> float:
        """Declared serial seconds (transfer + compute) for one instance."""
        transfer, compute, _ = self._declared_costs(type_name)
        return transfer + compute

    def compute_work(self, type_name: str) -> float:
        """Aggregate block-residency seconds (blocks x block duration).

        The greedy policy's ranking key: types with the most parallel
        compute work saturate the device and can hide the transfers of
        whatever launches after them.
        """
        return self._declared_costs(type_name)[2]

    # -- observation -------------------------------------------------------

    def observe(self, record) -> None:
        """Fold one finished :class:`AppRecord` into the observed EMA."""
        from ..gpu.commands import CopyDirection

        transfer = record.pure_transfer_time(
            CopyDirection.HTOD
        ) + record.pure_transfer_time(CopyDirection.DTOH)
        compute = record.kernel_busy_time
        total = transfer + compute
        if total <= 0 or not math.isfinite(total):
            return
        fraction = transfer / total
        name = record.type_name
        prior = self._observed.get(name)
        if prior is None:
            self._observed[name] = fraction
        else:
            self._observed[name] = prior + self.ema_alpha * (fraction - prior)
        self._counts[name] = self._counts.get(name, 0) + 1

    def observe_all(self, records) -> None:
        """Fold every record of a finished batch."""
        for record in records:
            self.observe(record)

    # -- blended view ------------------------------------------------------

    def fraction(self, type_name: str) -> float:
        """Blended transfer fraction: declared prior, nudged by the EMA.

        With observations the estimate is the midpoint of prior and EMA —
        the prior never washes out entirely, so a few anomalous records
        cannot flip a type's class by themselves.
        """
        declared = self.declared_fraction(type_name)
        observed = self._observed.get(type_name)
        if observed is None:
            return declared
        return 0.5 * (declared + observed)

    def classify(self, type_name: str) -> AppClass:
        """Transfer-heavy iff the blended fraction reaches the threshold."""
        if self.fraction(type_name) >= self.threshold:
            return AppClass.TRANSFER_HEAVY
        return AppClass.COMPUTE_HEAVY

    def profile(self, type_name: str) -> TypeProfile:
        """Full characterization snapshot for one type."""
        return TypeProfile(
            type_name=type_name,
            transfer_fraction=self.fraction(type_name),
            app_class=self.classify(type_name),
            compute_work=self.compute_work(type_name),
            declared_fraction=self.declared_fraction(type_name),
            observed_fraction=self._observed.get(type_name),
            observations=self._counts.get(type_name, 0),
        )

    def observations(self, type_name: str) -> int:
        """Records folded in for ``type_name`` so far."""
        return self._counts.get(type_name, 0)
