"""Application launch-order policies (paper Section III-C, Figure 3).

Given a workload of ``m`` copies of application type X and ``n`` copies of
type Y, the paper compares five launch orders:

* **Naive FIFO** — all X instances, then all Y instances.
* **Round-Robin** — alternate types: X1, Y1, X2, Y2, ...
* **Random Shuffle** — a random permutation of the FIFO order.
* **Reverse FIFO** — FIFO with the *pair order* reversed: all Y, then all X.
* **Reverse Round-Robin** — Round-Robin starting with Y: Y1, X1, Y2, X2, ...

The order matters for two reasons the paper gives: it is the order in which
the framework allocates CUDA streams to applications (so, with NA > NS,
which applications serialize behind each other), and — because child threads
are launched in schedule order — it prejudices the order in which work
reaches the DMA engines and the grid scheduler.

Orders generalize beyond two types: the type sequence of the schedule is
permuted per policy while instances of each type keep their relative order
(verified by tests against the paper's Figure 3 example with m = n = 4).

This module is the canonical home of the static orders; the historical
import path :mod:`repro.framework.scheduler` re-exports everything here.
The adaptive policies that *choose* among these orders online live in
:mod:`repro.scheduling.policies`.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SchedulingOrder",
    "make_schedule",
    "schedule_signature",
    "all_orders",
    "FIGURE_3",
    "ordering_rows",
]


class SchedulingOrder(Enum):
    """The five launch-order policies of Figure 3."""

    NAIVE_FIFO = "naive-fifo"
    ROUND_ROBIN = "round-robin"
    RANDOM_SHUFFLE = "random-shuffle"
    REVERSE_FIFO = "reverse-fifo"
    REVERSE_ROUND_ROBIN = "reverse-round-robin"

    def __str__(self) -> str:
        return self.value


def all_orders() -> Tuple[SchedulingOrder, ...]:
    """All five policies, in the paper's presentation order."""
    return (
        SchedulingOrder.NAIVE_FIFO,
        SchedulingOrder.ROUND_ROBIN,
        SchedulingOrder.RANDOM_SHUFFLE,
        SchedulingOrder.REVERSE_FIFO,
        SchedulingOrder.REVERSE_ROUND_ROBIN,
    )


#: The paper's Figure 3 reference schedules for m = n = 4 (the four
#: deterministic panels; the shuffle panel is seed-dependent).  Shared by
#: the Figure 3 benchmark and the scheduling tests so the expected layout
#: lives in exactly one place.
FIGURE_3: Dict[str, List[str]] = {
    "naive-fifo": [
        "AX(1)", "AX(2)", "AX(3)", "AX(4)", "AY(1)", "AY(2)", "AY(3)", "AY(4)",
    ],
    "round-robin": [
        "AX(1)", "AY(1)", "AX(2)", "AY(2)", "AX(3)", "AY(3)", "AX(4)", "AY(4)",
    ],
    "reverse-fifo": [
        "AY(1)", "AY(2)", "AY(3)", "AY(4)", "AX(1)", "AX(2)", "AX(3)", "AX(4)",
    ],
    "reverse-round-robin": [
        "AY(1)", "AX(1)", "AY(2)", "AX(2)", "AY(3)", "AX(3)", "AY(4)", "AX(4)",
    ],
}


def _by_type(items: Sequence[str]) -> "OrderedDict[str, List[int]]":
    """Group instance indices by type, preserving first-seen type order."""
    groups: "OrderedDict[str, List[int]]" = OrderedDict()
    for idx, typ in enumerate(items):
        groups.setdefault(typ, []).append(idx)
    return groups


def _interleave(groups: "OrderedDict[str, List[int]]") -> List[int]:
    """Round-robin across type groups: one instance of each per turn."""
    queues = [list(v) for v in groups.values()]
    out: List[int] = []
    while any(queues):
        for q in queues:
            if q:
                out.append(q.pop(0))
    return out


def make_schedule(
    types: Sequence[str],
    order: SchedulingOrder,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Permute a workload according to ``order``.

    Parameters
    ----------
    types:
        The type name of each application instance, in Naive-FIFO order
        (i.e. grouped by type: ``["X"]*m + ["Y"]*n`` for the paper's setup).
    order:
        Which policy to apply.
    rng:
        Required for :attr:`SchedulingOrder.RANDOM_SHUFFLE`; seeded by the
        caller so runs are reproducible.

    Returns
    -------
    A permutation of ``range(len(types))``: position k of the result is the
    index (into ``types``) of the k-th application to launch.
    """
    n = len(types)
    fifo = list(range(n))
    groups = _by_type(types)

    if order is SchedulingOrder.NAIVE_FIFO:
        return fifo

    if order is SchedulingOrder.ROUND_ROBIN:
        return _interleave(groups)

    if order is SchedulingOrder.RANDOM_SHUFFLE:
        if rng is None:
            raise ValueError("RANDOM_SHUFFLE requires an rng")
        shuffled = fifo.copy()
        rng.shuffle(shuffled)
        return shuffled

    if order is SchedulingOrder.REVERSE_FIFO:
        # FIFO with the type-group order reversed (Figure 3d): all Y first.
        reversed_groups = OrderedDict(reversed(list(groups.items())))
        out: List[int] = []
        for indices in reversed_groups.values():
            out.extend(indices)
        return out

    if order is SchedulingOrder.REVERSE_ROUND_ROBIN:
        # Round-Robin with the type order reversed (Figure 3e): Y1, X1, ...
        reversed_groups = OrderedDict(reversed(list(groups.items())))
        return _interleave(reversed_groups)

    raise ValueError(f"unhandled order {order!r}")  # pragma: no cover


def schedule_signature(
    types: Sequence[str], schedule: Sequence[int]
) -> List[str]:
    """Render a schedule as the paper's ``AX(1) AY(1) ...`` labels.

    Instance numbers are per type, 1-based, in original FIFO order —
    matching Figure 3's notation exactly, which the unit tests compare
    against verbatim.
    """
    instance_no: Dict[int, int] = {}
    counters: Dict[str, int] = {}
    for idx, typ in enumerate(types):
        counters[typ] = counters.get(typ, 0) + 1
        instance_no[idx] = counters[typ]
    return [f"{types[i]}({instance_no[i]})" for i in schedule]


def ordering_rows(result) -> List[dict]:
    """Flatten an ``OrderingResult`` into the Figure 7/8 table rows.

    One shared implementation for the CLI ``fig7``/``fig8`` handlers and
    ``bench_fig07`` / ``bench_fig08`` (which previously each carried their
    own copy of this dict comprehension).
    """
    return [
        {
            "pair": f"{r.pair[0]}+{r.pair[1]}",
            "order": str(r.order),
            "makespan_ms": r.makespan * 1e3,
            "normalized_perf": r.normalized_performance,
        }
        for r in result.rows
    ]
