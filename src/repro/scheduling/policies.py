"""Scheduling policies: the five static orders plus two adaptive ones.

A policy maps a :class:`BatchContext` (the admitted batch's type sequence
plus the decision coordinates) to a launch-order permutation.  The registry
holds:

* one :class:`StaticOrderPolicy` per Figure 3 order (``naive-fifo``,
  ``round-robin``, ``random-shuffle``, ``reverse-fifo``,
  ``reverse-round-robin``),
* ``greedy-interleave`` — alternates transfer-heavy and compute-heavy
  instances (per the :mod:`~repro.scheduling.characterize` classification),
  starting with the class that carries the most aggregate compute work, so
  device-filling kernels execute while later transfer-bound apps stream
  their copies behind the mutex, and
* ``bandit`` — a deterministic seeded epsilon-greedy bandit over the five
  static orders, keyed by workload-mix signature, scoring arms by measured
  makespan and converging onto the best static order for each mix.

Determinism: every random draw comes from a generator seeded with
``(seed, crc32(policy), device, decision_index)`` (or the per-signature
pull count, for the bandit), so a decision stream is a pure function of the
seed and the batch sequence — which is what lets the journal replay
decisions byte-identically after a crash.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .characterize import AppClass, WorkloadCharacterizer
from .orders import SchedulingOrder, _by_type, _interleave, all_orders, make_schedule

__all__ = [
    "BatchContext",
    "SchedulingDecision",
    "SchedulingPolicy",
    "StaticOrderPolicy",
    "GreedyInterleavePolicy",
    "EpsilonGreedyBanditPolicy",
    "POLICY_NAMES",
    "make_policy",
    "mix_signature",
]


@dataclass(frozen=True)
class BatchContext:
    """One batch as the policies see it.

    ``types`` is the type name per instance in admission (FIFO) order;
    ``num_streams`` the width cap the scheduler granted; ``device`` and
    ``decision_index`` the decision's coordinates (per-device running
    count); ``seed`` the scheduler's seed.
    """

    types: Tuple[str, ...]
    num_streams: int
    device: int = 0
    decision_index: int = 0
    seed: int = 0


@dataclass(frozen=True)
class SchedulingDecision:
    """Everything a policy decided for one batch.

    ``schedule`` permutes the batch's FIFO order; ``order_label`` names the
    concrete order used (for the bandit that is the chosen arm, so records
    stay attributable even when the policy is adaptive).  The prediction
    fields let telemetry report predicted-vs-observed makespan.
    """

    policy: str
    order_label: str
    schedule: Tuple[int, ...]
    memory_sync: bool
    num_streams: int
    signature: str
    device: int = 0
    decision_index: int = 0
    predicted_makespan: float = 0.0
    predicted_stretch: float = 0.0
    explored: bool = False

    def to_journal(self) -> Dict:
        """The journal entry for this decision (stable key set)."""
        return {
            "kind": "decision",
            "index": self.decision_index,
            "device": self.device,
            "signature": self.signature,
            "policy": self.policy,
            "order": self.order_label,
            "schedule": list(self.schedule),
            "sync": self.memory_sync,
            "width": self.num_streams,
        }


def mix_signature(types: Sequence[str], num_streams: int) -> str:
    """Workload-mix signature: sorted type counts plus the width cap.

    Two batches with the same mix and width share bandit state — the
    launch-order effect depends on the *composition*, not on which
    individual arrival happens to sit where in the FIFO.
    """
    counts: Dict[str, int] = {}
    for name in types:
        counts[name] = counts.get(name, 0) + 1
    mix = "+".join(f"{name}:{counts[name]}" for name in sorted(counts))
    return f"{mix}|w{num_streams}"


def _policy_rng(
    seed: int, policy: str, device: int, index: int
) -> np.random.Generator:
    """Deterministic per-decision generator (independent streams)."""
    return np.random.default_rng(
        [seed, zlib.crc32(policy.encode("utf-8")), device, index]
    )


class SchedulingPolicy:
    """Base: a named mapping from batch context to a launch order."""

    name: str = "abstract"

    def schedule(
        self, ctx: BatchContext, characterizer: WorkloadCharacterizer
    ) -> Tuple[List[int], str]:
        """Return (permutation of ``range(len(ctx.types))``, order label)."""
        raise NotImplementedError

    def observe(self, signature: str, order_label: str, makespan: float) -> None:
        """Feedback hook: measured makespan of a decided batch (no-op)."""

    @property
    def explored_last(self) -> bool:
        """Whether the most recent decision was exploratory (bandit only)."""
        return False


class StaticOrderPolicy(SchedulingPolicy):
    """One fixed Figure 3 order, applied to every batch."""

    def __init__(self, order: SchedulingOrder) -> None:
        self.order = order
        self.name = order.value

    def schedule(
        self, ctx: BatchContext, characterizer: WorkloadCharacterizer
    ) -> Tuple[List[int], str]:
        rng = None
        if self.order is SchedulingOrder.RANDOM_SHUFFLE:
            rng = _policy_rng(ctx.seed, self.name, ctx.device, ctx.decision_index)
        return make_schedule(ctx.types, self.order, rng=rng), self.name


class GreedyInterleavePolicy(SchedulingPolicy):
    """Alternate transfer-heavy and compute-heavy instances.

    Type groups are ranked by descending declared compute work (aggregate
    block-residency seconds) and partitioned by class.  The schedule then
    alternates between the two classes, starting with the class of the
    highest-work group, taking one instance per turn and cycling round-robin
    across a class's type groups.  With a single class present this
    degenerates to a round-robin across the work-ranked groups.

    Rationale (calibrated against the Figure 7/8 ordering matrices): the
    most device-filling type launches first so its kernels occupy the SMXs
    while every later, more transfer-bound app streams its copies — under
    the mutex those copies burst back-to-back exactly behind compute that
    can hide them.  Instances within a type keep FIFO order, so the result
    is always a permutation.
    """

    name = "greedy-interleave"

    def schedule(
        self, ctx: BatchContext, characterizer: WorkloadCharacterizer
    ) -> Tuple[List[int], str]:
        groups = _by_type(ctx.types)
        ranked = sorted(
            groups.keys(), key=lambda t: -characterizer.compute_work(t)
        )
        by_class: Dict[AppClass, "OrderedDict[str, List[int]]"] = {
            AppClass.COMPUTE_HEAVY: OrderedDict(),
            AppClass.TRANSFER_HEAVY: OrderedDict(),
        }
        for name in ranked:
            by_class[characterizer.classify(name)][name] = list(groups[name])

        first = characterizer.classify(ranked[0])
        second = (
            AppClass.TRANSFER_HEAVY
            if first is AppClass.COMPUTE_HEAVY
            else AppClass.COMPUTE_HEAVY
        )
        if not by_class[second]:
            # Single class: plain interleave across the work-ranked groups.
            return _interleave(by_class[first]), self.name

        queues = {
            cls: [q for q in by_class[cls].values()] for cls in (first, second)
        }
        cursor = {first: 0, second: 0}
        out: List[int] = []
        turn = first
        while any(q for qs in queues.values() for q in qs):
            qs = [q for q in queues[turn] if q]
            if not qs:
                turn = second if turn is first else first
                continue
            pick = qs[cursor[turn] % len(qs)]
            out.append(pick.pop(0))
            cursor[turn] += 1
            turn = second if turn is first else first
        return out, self.name


@dataclass
class _ArmStats:
    """Running mean makespan of one (signature, arm) cell."""

    pulls: int = 0
    mean: float = 0.0

    def update(self, value: float) -> None:
        self.pulls += 1
        self.mean += (value - self.mean) / self.pulls


class EpsilonGreedyBanditPolicy(SchedulingPolicy):
    """Seeded epsilon-greedy over the five static orders, per signature.

    Per workload-mix signature the policy first pulls every arm once (in
    the paper's presentation order — the deterministic exploration phase),
    then exploits the arm with the lowest mean measured makespan, except
    for an epsilon-probability exploration draw whose epsilon decays as
    ``epsilon0 / (1 + decay * t)`` with the signature's pull count ``t``.
    All draws come from a generator seeded with ``(seed, crc32(signature),
    device, t)``, so the decision stream is reproducible and replays
    byte-identically from the journal.

    Because the simulator is deterministic, each arm's makespan is a fixed
    number per signature, so one exploration pass suffices for the mean to
    be exact and exploitation to lock onto the best static order.
    """

    name = "bandit"

    def __init__(
        self,
        epsilon: float = 0.1,
        decay: float = 0.25,
        arms: Optional[Sequence[SchedulingOrder]] = None,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        if decay < 0.0:
            raise ValueError("decay must be >= 0")
        self.epsilon = epsilon
        self.decay = decay
        self.arms: Tuple[SchedulingOrder, ...] = tuple(arms or all_orders())
        #: signature -> arm value -> running stats.
        self.stats: Dict[str, Dict[str, _ArmStats]] = {}
        #: Cumulative regret: sum over observations of (observed makespan -
        #: best known mean at observation time).
        self.cumulative_regret: float = 0.0
        self._explored_last = False

    # -- choice ------------------------------------------------------------

    def _signature_stats(self, signature: str) -> Dict[str, _ArmStats]:
        return self.stats.setdefault(
            signature, {arm.value: _ArmStats() for arm in self.arms}
        )

    def pulls(self, signature: str) -> int:
        """Total pulls recorded for a signature."""
        return sum(s.pulls for s in self._signature_stats(signature).values())

    def best_arm(self, signature: str) -> Optional[SchedulingOrder]:
        """Lowest-mean fully-explored arm, or ``None`` before exploration."""
        stats = self._signature_stats(signature)
        if any(s.pulls == 0 for s in stats.values()):
            return None
        best = min(stats.items(), key=lambda kv: (kv[1].mean, kv[0]))
        return SchedulingOrder(best[0])

    def choose(self, ctx: BatchContext, signature: str) -> SchedulingOrder:
        """Pick an arm for this decision (exploration bookkeeping inside)."""
        stats = self._signature_stats(signature)
        for arm in self.arms:  # deterministic exploration pass, arm order
            if stats[arm.value].pulls == 0:
                self._explored_last = True
                return arm
        t = self.pulls(signature)
        rng = _policy_rng(ctx.seed, f"{self.name}:{signature}", ctx.device, t)
        eps = self.epsilon / (1.0 + self.decay * max(0, t - len(self.arms)))
        if float(rng.random()) < eps:
            self._explored_last = True
            return self.arms[int(rng.integers(len(self.arms)))]
        self._explored_last = False
        best = min(stats.items(), key=lambda kv: (kv[1].mean, kv[0]))
        return SchedulingOrder(best[0])

    @property
    def explored_last(self) -> bool:
        return self._explored_last

    # -- SchedulingPolicy surface -----------------------------------------

    def schedule(
        self, ctx: BatchContext, characterizer: WorkloadCharacterizer
    ) -> Tuple[List[int], str]:
        arm = self.choose(ctx, mix_signature(ctx.types, ctx.num_streams))
        rng = None
        if arm is SchedulingOrder.RANDOM_SHUFFLE:
            rng = _policy_rng(
                ctx.seed, f"{self.name}:{arm.value}", ctx.device, ctx.decision_index
            )
        return make_schedule(ctx.types, arm, rng=rng), arm.value

    def observe(self, signature: str, order_label: str, makespan: float) -> None:
        """Record a measured makespan for the pulled arm; track regret."""
        stats = self._signature_stats(signature)
        arm = stats.get(order_label)
        if arm is None:  # unknown arm label: not ours to learn from
            return
        arm.update(makespan)
        explored = [s.mean for s in stats.values() if s.pulls > 0]
        self.cumulative_regret += max(0.0, makespan - min(explored))


#: Registry: every selectable policy name, static orders first.
POLICY_NAMES: Tuple[str, ...] = tuple(o.value for o in all_orders()) + (
    GreedyInterleavePolicy.name,
    EpsilonGreedyBanditPolicy.name,
)


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Instantiate a policy by registry name.

    ``kwargs`` are forwarded to the adaptive policies (e.g. ``epsilon`` /
    ``decay`` for the bandit); static orders take none.
    """
    if name == GreedyInterleavePolicy.name:
        return GreedyInterleavePolicy(**kwargs)
    if name == EpsilonGreedyBanditPolicy.name:
        return EpsilonGreedyBanditPolicy(**kwargs)
    try:
        order = SchedulingOrder(name)
    except ValueError:
        raise KeyError(
            f"unknown policy {name!r}; available: {POLICY_NAMES}"
        ) from None
    if kwargs:
        raise TypeError(f"static policy {name!r} takes no options")
    return StaticOrderPolicy(order)
