"""Launch-order search and learning (the paper's future work, realized).

Section III-C conjectures that "we could converge on an optimal ordering
without exhaustively searching all possible orderings", and the conclusion
plans "learning algorithms capable of proposing dynamic reordering of the
task queue to achieve specific objectives, such as greater throughput and
lower power consumption".  This module implements both:

* :class:`OrderSearch` — derivative-free search over launch orders: seeds
  from the five Figure 3 policies, then random restarts and greedy pairwise
  -swap hill climbing, each candidate evaluated by an actual harness run.
  Deterministic given its seed.
* :class:`PolicyBandit` — an epsilon-greedy multi-armed bandit over the
  five named policies for *repeated* batches: each round it picks a policy,
  observes the chosen objective, and updates its estimates.  This is the
  "dynamic reordering" learner for recurring workload mixes.

Both optimize a pluggable objective (:data:`OBJECTIVES`): makespan, energy,
or energy-delay product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..framework.harness import HarnessConfig, TestHarness
from ..framework.scheduler import SchedulingOrder, all_orders, make_schedule
from .runner import RunConfig, RunResult
from .workload import Workload

__all__ = [
    "OBJECTIVES",
    "evaluate_schedule",
    "SearchResult",
    "OrderSearch",
    "BanditRound",
    "PolicyBandit",
]

#: Objective name -> extractor (smaller is better).
OBJECTIVES: Dict[str, Callable[[RunResult], float]] = {
    "makespan": lambda run: run.makespan,
    "energy": lambda run: run.energy,
    # Energy-delay product: the classic balanced power/performance metric.
    "edp": lambda run: run.energy * run.makespan,
}


def evaluate_schedule(
    workload: Workload,
    schedule: Sequence[int],
    num_streams: int,
    memory_sync: bool = True,
    objective: str = "makespan",
    spec=None,
) -> Tuple[float, RunResult]:
    """Run one explicit schedule and return (objective value, run).

    This bypasses the named policies: ``schedule`` is an arbitrary
    permutation of the workload, which is what the search mutates.
    """
    if objective not in OBJECTIVES:
        raise KeyError(
            f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
        )
    apps = workload.instantiate(schedule)
    harness = TestHarness(
        HarnessConfig(
            apps=apps,
            num_streams=num_streams,
            memory_sync=memory_sync,
            spec=spec,
        )
    )
    result = harness.run()
    run = RunResult(
        config=RunConfig(
            workload=workload,
            num_streams=num_streams,
            memory_sync=memory_sync,
            spec=spec,
        ),
        harness=result,
    )
    return OBJECTIVES[objective](run), run


@dataclass
class SearchResult:
    """Outcome of an :class:`OrderSearch`."""

    best_schedule: List[int]
    best_value: float
    best_run: RunResult
    evaluations: int
    history: List[Tuple[str, float]] = field(default_factory=list)
    seed_values: Dict[str, float] = field(default_factory=dict)

    @property
    def improvement_over_worst_seed_pct(self) -> float:
        """How much the search beat the worst named policy (%)."""
        worst = max(self.seed_values.values())
        return (worst - self.best_value) / worst * 100.0

    @property
    def improvement_over_best_seed_pct(self) -> float:
        """How much the search beat the best named policy (%)."""
        best_seed = min(self.seed_values.values())
        return (best_seed - self.best_value) / best_seed * 100.0


class OrderSearch:
    """Hill-climbing launch-order optimizer with policy seeding.

    Parameters
    ----------
    workload, num_streams, memory_sync, objective, spec:
        The fixed experimental cell; only the launch order varies.
    seed:
        RNG seed for shuffles and swap proposals.
    """

    def __init__(
        self,
        workload: Workload,
        num_streams: int,
        memory_sync: bool = True,
        objective: str = "makespan",
        seed: int = 0,
        spec=None,
    ) -> None:
        if objective not in OBJECTIVES:
            raise KeyError(
                f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
            )
        self.workload = workload
        self.num_streams = num_streams
        self.memory_sync = memory_sync
        self.objective = objective
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self._cache: Dict[Tuple[int, ...], Tuple[float, RunResult]] = {}
        self.evaluations = 0

    def _evaluate(self, schedule: Sequence[int]) -> Tuple[float, RunResult]:
        key = tuple(schedule)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        value, run = evaluate_schedule(
            self.workload,
            schedule,
            self.num_streams,
            memory_sync=self.memory_sync,
            objective=self.objective,
            spec=self.spec,
        )
        self._cache[key] = (value, run)
        self.evaluations += 1
        return value, run

    def search(
        self, restarts: int = 2, swaps_per_climb: int = 20
    ) -> SearchResult:
        """Seed with the five policies, then climb by pairwise swaps.

        ``restarts`` extra random starting points are climbed as well; the
        globally best schedule wins.  Total harness runs are bounded by
        ``5 + restarts + (2 + restarts) * swaps_per_climb`` (minus cache
        hits) — a tiny fraction of the ``NA!`` order space.
        """
        history: List[Tuple[str, float]] = []
        seeds: List[Tuple[str, List[int]]] = []
        for order in all_orders():
            seeds.append(
                (str(order), make_schedule(self.workload.types, order, rng=self.rng))
            )
        for i in range(restarts):
            shuffled = list(range(self.workload.size))
            self.rng.shuffle(shuffled)
            seeds.append((f"restart-{i}", shuffled))

        seed_values: Dict[str, float] = {}
        best_schedule: Optional[List[int]] = None
        best_value = float("inf")
        best_run: Optional[RunResult] = None

        for name, schedule in seeds:
            value, run = self._evaluate(schedule)
            seed_values[name] = value
            history.append((name, value))
            if value < best_value:
                best_schedule, best_value, best_run = list(schedule), value, run

        # Greedy hill climb from the two best seeds and every restart.
        ranked = sorted(seeds, key=lambda s: seed_values[s[0]])
        climb_from = ranked[:2] + [s for s in seeds if s[0].startswith("restart")]
        for name, schedule in climb_from:
            current = list(schedule)
            current_value, current_run = self._evaluate(current)
            for _ in range(swaps_per_climb):
                i, j = self.rng.choice(self.workload.size, size=2, replace=False)
                candidate = current.copy()
                candidate[i], candidate[j] = candidate[j], candidate[i]
                value, run = self._evaluate(candidate)
                history.append((f"{name}+swap", value))
                if value < current_value:
                    current, current_value, current_run = candidate, value, run
            if current_value < best_value:
                best_schedule, best_value, best_run = current, current_value, current_run

        assert best_schedule is not None and best_run is not None
        return SearchResult(
            best_schedule=best_schedule,
            best_value=best_value,
            best_run=best_run,
            evaluations=self.evaluations,
            history=history,
            seed_values=seed_values,
        )

    def exhaustive(self, max_sequences: int = 1000) -> SearchResult:
        """Evaluate *every* distinct type sequence (small workloads only).

        Two schedules that launch the same type sequence are equivalent in
        this model (instances of a type are interchangeable), so the search
        space is the multiset permutations of the type list — e.g. 70 for
        m = n = 4 — not ``NA!``.  Raises if that count exceeds
        ``max_sequences``; use :meth:`search` for larger workloads.
        """
        from itertools import permutations
        from math import factorial

        types = self.workload.types
        counts: Dict[str, int] = {}
        for t in types:
            counts[t] = counts.get(t, 0) + 1
        total = factorial(len(types))
        for c in counts.values():
            total //= factorial(c)
        if total > max_sequences:
            raise ValueError(
                f"{total} distinct type sequences exceed max_sequences="
                f"{max_sequences}; use search() instead"
            )

        # Instance indices per type, consumed in FIFO order per sequence.
        by_type: Dict[str, List[int]] = {}
        for idx, t in enumerate(types):
            by_type.setdefault(t, []).append(idx)

        seen = set()
        history: List[Tuple[str, float]] = []
        best_schedule: Optional[List[int]] = None
        best_value = float("inf")
        best_run: Optional[RunResult] = None
        for sequence in permutations(types):
            if sequence in seen:
                continue
            seen.add(sequence)
            cursors = {t: iter(by_type[t]) for t in by_type}
            schedule = [next(cursors[t]) for t in sequence]
            value, run = self._evaluate(schedule)
            history.append(("".join(s[0] for s in sequence), value))
            if value < best_value:
                best_schedule, best_value, best_run = schedule, value, run

        assert best_schedule is not None and best_run is not None
        values = [v for _, v in history]
        return SearchResult(
            best_schedule=best_schedule,
            best_value=best_value,
            best_run=best_run,
            evaluations=self.evaluations,
            history=history,
            seed_values={"exhaustive-worst": max(values),
                         "exhaustive-best": min(values)},
        )


@dataclass
class BanditRound:
    """One decision of the :class:`PolicyBandit`."""

    round_index: int
    policy: SchedulingOrder
    value: float
    explored: bool


class PolicyBandit:
    """Epsilon-greedy bandit over the five Figure 3 policies.

    For a service that runs the *same class* of batch repeatedly (the
    paper's streaming-workload future work), the bandit converges on the
    policy minimizing the chosen objective while spending a bounded
    fraction of rounds exploring.
    """

    def __init__(
        self,
        workload: Workload,
        num_streams: int,
        memory_sync: bool = True,
        objective: str = "makespan",
        epsilon: float = 0.2,
        seed: int = 0,
        spec=None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if objective not in OBJECTIVES:
            raise KeyError(
                f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
            )
        self.workload = workload
        self.num_streams = num_streams
        self.memory_sync = memory_sync
        self.objective = objective
        self.epsilon = epsilon
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self.policies = list(all_orders())
        self.counts: Dict[SchedulingOrder, int] = {p: 0 for p in self.policies}
        self.means: Dict[SchedulingOrder, float] = {p: 0.0 for p in self.policies}
        self.rounds: List[BanditRound] = []

    def _observe(self, policy: SchedulingOrder) -> float:
        schedule = make_schedule(self.workload.types, policy, rng=self.rng)
        value, _run = evaluate_schedule(
            self.workload,
            schedule,
            self.num_streams,
            memory_sync=self.memory_sync,
            objective=self.objective,
            spec=self.spec,
        )
        return value

    def select(self) -> Tuple[SchedulingOrder, bool]:
        """Pick the next policy (returns (policy, explored?))."""
        untried = [p for p in self.policies if self.counts[p] == 0]
        if untried:
            return untried[0], True
        if self.rng.random() < self.epsilon:
            return self.policies[self.rng.integers(len(self.policies))], True
        return self.best_policy(), False

    def step(self) -> BanditRound:
        """One decide -> run -> update round."""
        policy, explored = self.select()
        value = self._observe(policy)
        n = self.counts[policy] + 1
        self.counts[policy] = n
        self.means[policy] += (value - self.means[policy]) / n
        record = BanditRound(
            round_index=len(self.rounds),
            policy=policy,
            value=value,
            explored=explored,
        )
        self.rounds.append(record)
        return record

    def run(self, rounds: int) -> List[BanditRound]:
        """Execute ``rounds`` decisions and return their records."""
        return [self.step() for _ in range(rounds)]

    def best_policy(self) -> SchedulingOrder:
        """Current best estimate (lowest mean objective; ties by order)."""
        tried = [p for p in self.policies if self.counts[p] > 0]
        if not tried:
            return self.policies[0]
        return min(tried, key=lambda p: (self.means[p], self.policies.index(p)))

    def exploitation_fraction(self) -> float:
        """Share of rounds spent exploiting the current best."""
        if not self.rounds:
            return 0.0
        return sum(1 for r in self.rounds if not r.explored) / len(self.rounds)
