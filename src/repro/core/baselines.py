"""Comparator techniques from the related work (paper Section II).

The paper positions its lazy (LEFTOVER) policy against three families of
prior art; all three are implemented so the ablation benchmarks can compare
them on the same workloads:

* **Symbiosis-style admission control** (Li et al. [2]) — two kernels may
  execute concurrently only if the *sum* of their resource requests fits in
  the device.  For realistic kernels this "almost always results in
  serialized execution"; :func:`symbiosis_admission` is a grid-engine
  admission hook enforcing it.
* **Elastic-kernel transfer chunking** (Pai et al. [8]) — large copies are
  split into many small ones to exploit copy-queue interleaving.
  :func:`chunk_profile` rewrites an application profile accordingly (the
  paper's approach is the opposite: *batch* small copies via the mutex).
* **Kernel reordering with fixed thread->stream binding** (Wende et al.
  [11]) — applications launch round-robin across per-stream CPU queues.
  :func:`wende_schedule` produces that launch order; combined with the
  harness's stream sharing it reproduces the host-side serialization the
  paper contrasts with its dynamic assignment.
"""

from __future__ import annotations

from typing import List, Sequence

from ..framework.kernel import AppProfile, Buffer, Phase, TransferPhase
from ..framework.scheduler import SchedulingOrder, make_schedule
from ..gpu.block_scheduler import GridState
from ..gpu.specs import DeviceSpec

__all__ = ["symbiosis_admission", "chunk_profile", "wende_schedule"]


def symbiosis_admission(spec: DeviceSpec):
    """Admission hook: co-schedule only if *total* requests fit the device.

    "For two kernels to be scheduled concurrently, the sum total of their
    resource requests must be less than or equal to the total resources
    available on the GPU."  The hook receives the candidate grid and the
    currently executing grids and admits the candidate only when adding its
    full block/thread request keeps the device within its theoretical
    ceilings.  Oversubscribing kernels therefore serialize — the behaviour
    the paper's LEFTOVER policy improves on (Figure 5).
    """
    max_blocks = spec.max_resident_blocks
    max_threads = spec.max_resident_threads

    def admit(candidate: GridState, active: List[GridState]) -> bool:
        if not active:
            # A lone kernel always runs (possibly over several waves); the
            # sum rule only gates *concurrent* scheduling.
            return True
        blocks = candidate.kernel.num_blocks + sum(
            g.kernel.num_blocks for g in active
        )
        threads = candidate.kernel.total_threads + sum(
            g.kernel.total_threads for g in active
        )
        return blocks <= max_blocks and threads <= max_threads

    return admit


def chunk_profile(profile: AppProfile, chunk_bytes: int = 256 * 1024) -> AppProfile:
    """Split every transfer buffer into <= ``chunk_bytes`` pieces.

    Models Pai et al.'s transfer chunking: more, smaller copy commands per
    application, which *increases* copy-queue interleaving.  Used by the
    ablation bench to show that chunking (helpful for their 100 MB-scale
    single transfers) hurts the paper's many-small-transfers regime, where
    batching via the mutex is the right call.
    """
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    from dataclasses import replace

    new_phases: List[Phase] = []
    for phase in profile.phases:
        if not isinstance(phase, TransferPhase):
            new_phases.append(phase)
            continue
        buffers: List[Buffer] = []
        for buf in phase.buffers:
            remaining = buf.nbytes
            index = 0
            while remaining > 0:
                piece = min(chunk_bytes, remaining)
                buffers.append(Buffer(f"{buf.name}[{index}]", piece))
                remaining -= piece
                index += 1
        new_phases.append(replace(phase, buffers=tuple(buffers)))
    return replace(profile, phases=tuple(new_phases))


def wende_schedule(types: Sequence[str]) -> List[int]:
    """Wende et al.'s round-robin kernel reordering as a launch order.

    Their technique inserts kernels into per-thread CPU queues and launches
    round-robin across them; at the granularity of whole applications this
    is exactly the Round-Robin order of Figure 3b (their work examines only
    this one ordering — the paper examines five).
    """
    return make_schedule(types, SchedulingOrder.ROUND_ROBIN)
