"""Per-figure experiment drivers (paper Section V).

Every table and figure of the paper's evaluation has a driver here that
returns a structured result object with ``rows()`` for tabulation:

=============  =========================================================
driver         reproduces
=============  =========================================================
fig1_fig2      Figures 1 & 2 — copy-queue interleaving vs mutex timelines
fig3           Figure 3 — the five launch orders (schedule signatures)
fig4           Figure 4 — concurrency speedup vs serial (half/full)
fig5           Figure 5 — LEFTOVER oversubscription snapshot
fig6           Figure 6 — effective memory transfer latency
fig7 / fig8    Figures 7 & 8 — launch-order effect, default vs sync
fig9           Figure 9 — power/energy: serial vs half vs full
fig10          Figure 10 — power/energy: default vs sync
table3         Table III — launch geometry of the ported applications
headline       the abstract's aggregate claims
=============  =========================================================

Absolute times come from the simulator's calibrated cost model; the paper's
claims are about the *relative* numbers, which is what the result objects
expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.registry import all_pairs, get_app_class
from ..framework.metrics import improvement_pct
from ..scheduling.orders import SchedulingOrder, all_orders, schedule_signature
from ..gpu.commands import CopyDirection
from ..gpu.kernels import Dim3, KernelDescriptor
from ..gpu.specs import DeviceSpec, tesla_k20
from ..sim.engine import Environment
from ..sim.trace import TraceRecorder
from .runner import ExperimentRunner, RunConfig, RunResult
from .workload import Workload

__all__ = [
    "TimelineStudy",
    "fig1_fig2_timelines",
    "fig3_orders",
    "Fig4Row",
    "Fig4Result",
    "fig4_concurrency",
    "Fig5Result",
    "fig5_oversubscription",
    "Fig6Row",
    "Fig6Result",
    "fig6_effective_latency",
    "OrderingRow",
    "OrderingResult",
    "fig7_ordering_default",
    "fig8_ordering_sync",
    "PowerScenario",
    "Fig9Result",
    "fig9_power_concurrency",
    "Fig10Result",
    "fig10_power_sync",
    "table3_geometry",
    "HomogeneousRow",
    "HomogeneousResult",
    "homogeneous_scaling",
    "HeadlineResult",
    "headline_numbers",
]

#: The pair the paper uses for its timeline and power illustrations.
ILLUSTRATION_PAIR: Tuple[str, str] = ("gaussian", "needle")


# ---------------------------------------------------------------------------
# Figures 1 & 2 — interleaving vs synchronized transfer timelines
# ---------------------------------------------------------------------------

@dataclass
class TimelineStudy:
    """Two traced runs differing only in the transfer mutex."""

    pair: Tuple[str, str]
    default_run: RunResult
    sync_run: RunResult

    @property
    def default_trace(self) -> TraceRecorder:
        """Figure 1's timeline (interleaved copies)."""
        return self.default_run.harness.trace

    @property
    def sync_trace(self) -> TraceRecorder:
        """Figure 2's timeline (consecutive per-app bursts)."""
        return self.sync_run.harness.trace

    def interleaving_switches(self, trace: TraceRecorder) -> int:
        """Number of app-to-app handovers in HtoD copy service order.

        High for Figure 1 (copies interleave), minimal for Figure 2 (one
        application's copies run back to back).
        """
        order = [
            s.meta.get("app")
            for s in sorted(
                trace.filter(category="memcpy_htod"), key=lambda s: s.start
            )
        ]
        return sum(1 for a, b in zip(order, order[1:]) if a != b)

    def rows(self) -> List[dict]:
        """Summary rows for the two scenarios."""
        out = []
        for label, run in (("default", self.default_run), ("sync", self.sync_run)):
            trace = run.harness.trace
            out.append(
                {
                    "scenario": label,
                    "makespan_ms": run.makespan * 1e3,
                    "htod_interleaving_switches": self.interleaving_switches(trace),
                    "avg_effective_latency_ms": run.harness.effective_latency() * 1e3,
                }
            )
        return out


def fig1_fig2_timelines(
    pair: Tuple[str, str] = ILLUSTRATION_PAIR,
    num_apps: int = 8,
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> TimelineStudy:
    """Reproduce the Figure 1 (default) and Figure 2 (mutex) timelines."""
    runner = runner or ExperimentRunner()
    workload = Workload.heterogeneous_pair(*pair, num_apps, scale=scale)
    base = dict(workload=workload, num_streams=num_apps, record_trace=True)
    default_run = runner.run(RunConfig(memory_sync=False, **base))
    sync_run = runner.run(RunConfig(memory_sync=True, **base))
    return TimelineStudy(pair=pair, default_run=default_run, sync_run=sync_run)


# ---------------------------------------------------------------------------
# Figure 3 — launch orders
# ---------------------------------------------------------------------------

def fig3_orders(m: int = 4, n: int = 4, seed: int = 7) -> Dict[str, List[str]]:
    """The five schedules for m copies of X and n of Y (Figure 3)."""
    from ..scheduling.orders import make_schedule

    types = ["AX"] * m + ["AY"] * n
    rng = np.random.default_rng(seed)
    out = {}
    for order in all_orders():
        perm = make_schedule(types, order, rng=rng)
        out[str(order)] = schedule_signature(types, perm)
    return out


# ---------------------------------------------------------------------------
# Figure 4 — concurrency speedup over serial
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Row:
    """One bar of Figure 4."""

    pair: Tuple[str, str]
    num_apps: int
    scenario: str          # "half" (NA = 2 NS) or "full" (NA = NS)
    num_streams: int
    makespan: float
    serial_makespan: float
    improvement_pct: float


@dataclass
class Fig4Result:
    """All bars of Figure 4 (a)-(f)."""

    rows: List[Fig4Row] = field(default_factory=list)

    def by_pair(self) -> Dict[Tuple[str, str], List[Fig4Row]]:
        """Group rows per subplot (a)-(f)."""
        out: Dict[Tuple[str, str], List[Fig4Row]] = {}
        for row in self.rows:
            out.setdefault(row.pair, []).append(row)
        return out

    def stats(self, scenario: str) -> Tuple[float, float]:
        """(max, mean) improvement for one scenario, in percent."""
        vals = [r.improvement_pct for r in self.rows if r.scenario == scenario]
        if not vals:
            return (0.0, 0.0)
        return (max(vals), sum(vals) / len(vals))


def fig4_concurrency(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    na_values: Sequence[int] = (4, 8, 16, 32),
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Fig4Result:
    """Half- and full-concurrent improvement over serial, per pair and NA."""
    runner = runner or ExperimentRunner()
    result = Fig4Result()
    for pair in pairs or all_pairs():
        for na in na_values:
            workload = Workload.heterogeneous_pair(*pair, na, scale=scale)
            serial = runner.run_serial(workload)
            for scenario, ns in (("half", max(1, na // 2)), ("full", na)):
                run = runner.run(
                    RunConfig(workload=workload, num_streams=ns)
                )
                result.rows.append(
                    Fig4Row(
                        pair=pair,
                        num_apps=na,
                        scenario=scenario,
                        num_streams=ns,
                        makespan=run.makespan,
                        serial_makespan=serial.makespan,
                        improvement_pct=run.improvement_over(serial),
                    )
                )
    return result


# ---------------------------------------------------------------------------
# Figure 5 — LEFTOVER oversubscription snapshot
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    """Five oversubscribing kernels on five streams."""

    total_requested_blocks: int
    device_block_ceiling: int
    max_kernel_concurrency: int
    kernel_spans: List[dict]
    makespan: float
    serialized_makespan: float

    @property
    def oversubscribed(self) -> bool:
        """Whether the request exceeded the device ceiling (it must)."""
        return self.total_requested_blocks > self.device_block_ceiling

    def rows(self) -> List[dict]:
        """Per-kernel span rows (the Figure 5 timeline content)."""
        return self.kernel_spans


def fig5_oversubscription(
    spec: Optional[DeviceSpec] = None,
    admission=None,
) -> Fig5Result:
    """Reproduce the Figure 5 snapshot.

    Five streams launch, at (nearly) the same instant, the paper's mix: 89
    blocks of ``needle_cuda_shared_1``, 88 of ``needle_cuda_shared_2``, two
    single-block ``Fan1`` launches and a 1024-block ``Fan2`` — 1203 thread
    blocks against the K20's 208-block ceiling.  Under LEFTOVER all five
    overlap; under symbiosis admission (pass ``admission``) they serialize.
    """
    from ..gpu.device import GPUDevice

    spec = spec or tesla_k20()
    env = Environment()
    trace = TraceRecorder()
    device = GPUDevice(env, spec=spec, trace=trace, admission=admission)

    kernels = [
        KernelDescriptor("needle_cuda_shared_1", Dim3(89), Dim3(32),
                         registers_per_thread=24, block_duration=60e-6),
        KernelDescriptor("needle_cuda_shared_2", Dim3(88), Dim3(32),
                         registers_per_thread=24, block_duration=60e-6),
        KernelDescriptor("Fan1", Dim3(1), Dim3(512),
                         registers_per_thread=14, block_duration=50e-6),
        KernelDescriptor("Fan1", Dim3(1), Dim3(512),
                         registers_per_thread=14, block_duration=50e-6),
        KernelDescriptor("Fan2", Dim3(32, 32), Dim3(16, 16),
                         registers_per_thread=15, block_duration=8e-6),
    ]

    def launcher(stream, kd, delay):
        yield env.timeout(delay)
        cmd = stream.enqueue_kernel(kd, app_id=f"{kd.name}@{stream.sid}")
        yield cmd.done

    for i, kd in enumerate(kernels):
        stream = device.create_stream()
        env.process(launcher(stream, kd, delay=i * 2e-6))
    env.run()

    spans = [
        {
            "stream": s.track,
            "kernel": s.name,
            "blocks": s.meta.get("blocks"),
            "start_us": s.start * 1e6,
            "end_us": s.end * 1e6,
        }
        for s in trace.filter(category="kernel")
    ]
    total_blocks = sum(k.num_blocks for k in kernels)
    # Serialized reference: kernels one after another, each at its own
    # device-wide occupancy.
    from ..gpu.occupancy import device_wide_blocks

    serialized = sum(
        k.serial_duration(min(device_wide_blocks(k, spec), k.num_blocks))
        for k in kernels
    )
    return Fig5Result(
        total_requested_blocks=total_blocks,
        device_block_ceiling=spec.max_resident_blocks,
        max_kernel_concurrency=trace.max_concurrency("kernel"),
        kernel_spans=spans,
        makespan=env.now,
        serialized_makespan=serialized,
    )


# ---------------------------------------------------------------------------
# Figure 6 — effective memory transfer latency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6Row:
    """One bar group of Figure 6 at a given concurrency level."""

    num_apps: int
    expected_ms: float
    default_ms: float
    sync_ms: float

    @property
    def default_ratio(self) -> float:
        """Default / expected — the paper reports up to ~8x."""
        return self.default_ms / self.expected_ms if self.expected_ms else 0.0

    @property
    def sync_ratio(self) -> float:
        """Sync / expected — the paper reports ~1x."""
        return self.sync_ms / self.expected_ms if self.expected_ms else 0.0


@dataclass
class Fig6Result:
    """Figure 6 for one pair."""

    pair: Tuple[str, str]
    rows: List[Fig6Row] = field(default_factory=list)

    @property
    def worst_default_ratio(self) -> float:
        """Largest observed stretch of the default behaviour."""
        return max((r.default_ratio for r in self.rows), default=0.0)


def fig6_effective_latency(
    pair: Tuple[str, str] = ILLUSTRATION_PAIR,
    na_values: Sequence[int] = (4, 8, 16, 32),
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Fig6Result:
    """Expected vs default vs synchronized effective HtoD latency.

    "Expected" follows the paper: the average per-application transfer
    latency measured in the homogeneous (uncontended) case — here a solo
    run of each application — averaged over the pair.
    """
    runner = runner or ExperimentRunner()
    solo_latencies = []
    for name in pair:
        solo = runner.run_serial(Workload.homogeneous(name, 1, scale=scale))
        solo_latencies.append(
            float(np.mean([
                r.effective_latency(CopyDirection.HTOD) or 0.0
                for r in solo.harness.records
            ]))
        )
    expected = float(np.mean(solo_latencies))

    result = Fig6Result(pair=pair)
    for na in na_values:
        workload = Workload.heterogeneous_pair(*pair, na, scale=scale)
        default_run = runner.run(
            RunConfig(workload=workload, num_streams=na, memory_sync=False)
        )
        sync_run = runner.run(
            RunConfig(workload=workload, num_streams=na, memory_sync=True)
        )
        result.rows.append(
            Fig6Row(
                num_apps=na,
                expected_ms=expected * 1e3,
                default_ms=default_run.harness.effective_latency() * 1e3,
                sync_ms=sync_run.harness.effective_latency() * 1e3,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figures 7 & 8 — launch-order effect
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OrderingRow:
    """One bar of Figures 7/8: a (pair, order) cell."""

    pair: Tuple[str, str]
    order: SchedulingOrder
    makespan: float
    normalized_performance: float  # worst makespan / this makespan (>= 1)


@dataclass
class OrderingResult:
    """Figures 7 or 8 across all pairs."""

    memory_sync: bool
    rows: List[OrderingRow] = field(default_factory=list)

    def by_pair(self) -> Dict[Tuple[str, str], List[OrderingRow]]:
        """Rows grouped per pair."""
        out: Dict[Tuple[str, str], List[OrderingRow]] = {}
        for row in self.rows:
            out.setdefault(row.pair, []).append(row)
        return out

    def spread_pct(self) -> Dict[Tuple[str, str], float]:
        """Per pair: (worst - best) / worst in percent — the paper's
        "schedule order can affect up to X% performance improvement"."""
        out = {}
        for pair, rows in self.by_pair().items():
            worst = max(r.makespan for r in rows)
            best = min(r.makespan for r in rows)
            out[pair] = improvement_pct(worst, best)
        return out

    def stats(self) -> Tuple[float, float]:
        """(max, mean) ordering spread across pairs, percent."""
        spreads = list(self.spread_pct().values())
        return (max(spreads), sum(spreads) / len(spreads)) if spreads else (0.0, 0.0)


def _ordering_study(
    memory_sync: bool,
    pairs: Optional[Sequence[Tuple[str, str]]],
    num_apps: int,
    scale: Optional[str],
    runner: Optional[ExperimentRunner],
    seed: int,
) -> OrderingResult:
    runner = runner or ExperimentRunner()
    result = OrderingResult(memory_sync=memory_sync)
    for pair in pairs or all_pairs():
        workload = Workload.heterogeneous_pair(*pair, num_apps, scale=scale)
        per_order = runner.ordering_matrix(
            workload, num_streams=num_apps, memory_sync=memory_sync, seed=seed
        )
        worst = max(r.makespan for r in per_order.values())
        for order, run in per_order.items():
            result.rows.append(
                OrderingRow(
                    pair=pair,
                    order=order,
                    makespan=run.makespan,
                    normalized_performance=worst / run.makespan,
                )
            )
    return result


def fig7_ordering_default(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    num_apps: int = 32,
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> OrderingResult:
    """Figure 7: ordering effect with default transfer behaviour."""
    return _ordering_study(False, pairs, num_apps, scale, runner, seed)


def fig8_ordering_sync(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    num_apps: int = 32,
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> OrderingResult:
    """Figure 8: ordering effect with the transfer mutex enabled."""
    return _ordering_study(True, pairs, num_apps, scale, runner, seed)


# ---------------------------------------------------------------------------
# Figures 9 & 10 — power and energy
# ---------------------------------------------------------------------------

@dataclass
class PowerScenario:
    """One power trace (a line of Figure 9/10)."""

    label: str
    num_streams: int
    memory_sync: bool
    makespan: float
    energy: float
    average_power: float
    peak_power: float
    samples: List[Tuple[float, float]]


@dataclass
class Fig9Result:
    """Figure 9 plus the aggregate energy statistics of Section V-D."""

    pair: Tuple[str, str]
    scenarios: List[PowerScenario]
    energy_improvement_by_pair: Dict[Tuple[str, str], float]

    @property
    def average_energy_improvement(self) -> float:
        """Mean full-concurrency energy reduction across pairs (%)."""
        vals = list(self.energy_improvement_by_pair.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def best_energy_improvement(self) -> Tuple[Tuple[str, str], float]:
        """(pair, %) with the largest energy reduction."""
        pair = max(self.energy_improvement_by_pair, key=self.energy_improvement_by_pair.get)
        return pair, self.energy_improvement_by_pair[pair]


def fig9_power_concurrency(
    pair: Tuple[str, str] = ILLUSTRATION_PAIR,
    num_apps: int = 32,
    pairs_for_stats: Optional[Sequence[Tuple[str, str]]] = None,
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
    power_interval: float = 15e-3,
) -> Fig9Result:
    """Power traces (serial / half / full) plus cross-pair energy stats.

    The paper oversamples the sensor at 66.7 Hz (15 ms) — pass a smaller
    ``power_interval`` for denser traces of short simulated runs.
    """
    runner = runner or ExperimentRunner()
    workload = Workload.heterogeneous_pair(*pair, num_apps, scale=scale)
    scenarios = []
    serial_runs: Dict[Tuple[str, str], RunResult] = {}

    for label, ns in (
        ("serial", 1),
        ("half-concurrent", max(1, num_apps // 2)),
        ("full-concurrent", num_apps),
    ):
        run = runner.run(
            RunConfig(
                workload=workload,
                num_streams=ns,
                power_interval=power_interval,
            )
        )
        scenarios.append(
            PowerScenario(
                label=label,
                num_streams=ns,
                memory_sync=False,
                makespan=run.makespan,
                energy=run.energy,
                average_power=run.average_power,
                peak_power=run.peak_power,
                samples=run.harness.power_samples,
            )
        )
        if label == "serial":
            serial_runs[pair] = run

    improvements: Dict[Tuple[str, str], float] = {}
    for p in pairs_for_stats or all_pairs():
        wl = Workload.heterogeneous_pair(*p, num_apps, scale=scale)
        serial = serial_runs.get(p) or runner.run(
            RunConfig(workload=wl, num_streams=1, power_interval=power_interval)
        )
        full = runner.run(
            RunConfig(workload=wl, num_streams=num_apps, power_interval=power_interval)
        )
        improvements[p] = full.energy_improvement_over(serial)
    return Fig9Result(
        pair=pair,
        scenarios=scenarios,
        energy_improvement_by_pair=improvements,
    )


@dataclass
class Fig10Result:
    """Figure 10: default vs synchronized transfers at full concurrency."""

    pair: Tuple[str, str]
    scenarios: List[PowerScenario]
    energy_improvement_by_pair: Dict[Tuple[str, str], float]  # sync vs serial

    @property
    def power_delta_pct(self) -> float:
        """Average-power change of sync vs default (%; ~0 per the paper)."""
        default = next(s for s in self.scenarios if not s.memory_sync)
        sync = next(s for s in self.scenarios if s.memory_sync)
        return (sync.average_power - default.average_power) / default.average_power * 100.0

    @property
    def average_energy_improvement(self) -> float:
        """Mean sync-vs-serial energy reduction across pairs (%)."""
        vals = list(self.energy_improvement_by_pair.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def best_energy_improvement(self) -> Tuple[Tuple[str, str], float]:
        """(pair, %) with the largest energy reduction."""
        pair = max(self.energy_improvement_by_pair, key=self.energy_improvement_by_pair.get)
        return pair, self.energy_improvement_by_pair[pair]


def fig10_power_sync(
    pair: Tuple[str, str] = ILLUSTRATION_PAIR,
    num_apps: int = 32,
    pairs_for_stats: Optional[Sequence[Tuple[str, str]]] = None,
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
    power_interval: float = 15e-3,
) -> Fig10Result:
    """Power traces and energy for default vs mutex-synchronized transfers."""
    runner = runner or ExperimentRunner()
    workload = Workload.heterogeneous_pair(*pair, num_apps, scale=scale)
    scenarios = []
    for label, sync in (("default", False), ("memory-sync", True)):
        run = runner.run(
            RunConfig(
                workload=workload,
                num_streams=num_apps,
                memory_sync=sync,
                power_interval=power_interval,
            )
        )
        scenarios.append(
            PowerScenario(
                label=label,
                num_streams=num_apps,
                memory_sync=sync,
                makespan=run.makespan,
                energy=run.energy,
                average_power=run.average_power,
                peak_power=run.peak_power,
                samples=run.harness.power_samples,
            )
        )

    improvements: Dict[Tuple[str, str], float] = {}
    for p in pairs_for_stats or all_pairs():
        wl = Workload.heterogeneous_pair(*p, num_apps, scale=scale)
        serial = runner.run_serial(wl)
        sync_run = runner.run(
            RunConfig(workload=wl, num_streams=num_apps, memory_sync=True)
        )
        improvements[p] = sync_run.energy_improvement_over(serial)
    return Fig10Result(
        pair=pair,
        scenarios=scenarios,
        energy_improvement_by_pair=improvements,
    )


# ---------------------------------------------------------------------------
# Homogeneous workload scaling (Section IV's homogeneous case)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HomogeneousRow:
    """One (application, NA) cell of the homogeneous scaling study."""

    app: str
    num_apps: int
    serial_makespan: float
    concurrent_makespan: float
    improvement_pct: float
    serial_energy: float
    concurrent_energy: float


@dataclass
class HomogeneousResult:
    """Self-concurrency scaling per application type."""

    rows: List[HomogeneousRow] = field(default_factory=list)

    def by_app(self) -> Dict[str, List[HomogeneousRow]]:
        """Rows grouped per application."""
        out: Dict[str, List[HomogeneousRow]] = {}
        for row in self.rows:
            out.setdefault(row.app, []).append(row)
        return out

    def best_improvement(self) -> Tuple[str, float]:
        """(app, %) with the largest self-concurrency gain."""
        best = max(self.rows, key=lambda r: r.improvement_pct)
        return best.app, best.improvement_pct


def homogeneous_scaling(
    apps: Optional[Sequence[str]] = None,
    na_values: Sequence[int] = (4, 8, 16),
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> HomogeneousResult:
    """How much each application gains from *self*-concurrency.

    The paper's homogeneous workloads ("each application executes the same
    kernel functions on the same size data") isolate an application's own
    overlap potential: underutilizers (needle, nn) gain enormously, while
    device-filling applications (srad, gaussian's Fan2 phases) gain little
    — the resource-utilization spread the heterogeneous pairings exploit.
    """
    from ..apps.registry import list_apps

    runner = runner or ExperimentRunner()
    result = HomogeneousResult()
    for app in apps or list_apps():
        for na in na_values:
            workload = Workload.homogeneous(app, na, scale=scale)
            serial = runner.run_serial(workload)
            concurrent = runner.run(
                RunConfig(workload=workload, num_streams=na)
            )
            result.rows.append(
                HomogeneousRow(
                    app=app,
                    num_apps=na,
                    serial_makespan=serial.makespan,
                    concurrent_makespan=concurrent.makespan,
                    improvement_pct=concurrent.improvement_over(serial),
                    serial_energy=serial.energy,
                    concurrent_energy=concurrent.energy,
                )
            )
    return result


# ---------------------------------------------------------------------------
# Table III and the headline numbers
# ---------------------------------------------------------------------------

def table3_geometry(scale: Optional[str] = None) -> List[dict]:
    """Launch geometry of every ported application (Table III rows)."""
    from .workload import SCALES, resolve_scale

    scale_name = resolve_scale(scale)
    rows = []
    for name in sorted(SCALES[scale_name]):
        kwargs = SCALES[scale_name][name]
        summary = get_app_class(name).workload_summary(**kwargs)
        for kernel, info in sorted(summary["kernels"].items()):
            grids = sorted(info["grid_dims"])
            grid_str = (
                str(grids[0])
                if len(grids) == 1
                else f"{grids[0]} ... {grids[-1]}"
            )
            rows.append(
                {
                    "application": summary["name"],
                    "kernel": kernel,
                    "data_dim": summary["data_dim"],
                    "calls": info["calls"],
                    "grid_dim": grid_str,
                    "block_dim": str(info["block_dim"]),
                    "max_blocks": info["max_blocks"],
                    "threads_per_block": info["threads_per_block"],
                }
            )
    return rows


@dataclass
class HeadlineResult:
    """The abstract's aggregate claims, measured."""

    max_full_concurrent_improvement: float   # paper: up to 59%
    avg_full_concurrent_improvement: float   # paper: 24.8%
    max_half_concurrent_improvement: float   # paper: up to 56%
    avg_half_concurrent_improvement: float   # paper: 23.6%
    max_ordering_sync_improvement: float     # paper: up to 31.8%
    avg_ordering_sync_improvement: float     # paper: 7.8%
    max_ordering_default_improvement: float  # paper: up to 9.4%
    avg_ordering_default_improvement: float  # paper: 3.8%
    max_energy_improvement_sync: float       # paper: up to 25.7%
    avg_energy_improvement_sync: float       # paper: 10.4%

    def rows(self) -> List[dict]:
        """(claim, paper value, measured) rows for EXPERIMENTS.md."""
        paper = {
            "max full-concurrent improvement": (59.0, self.max_full_concurrent_improvement),
            "avg full-concurrent improvement": (24.8, self.avg_full_concurrent_improvement),
            "max half-concurrent improvement": (56.0, self.max_half_concurrent_improvement),
            "avg half-concurrent improvement": (23.6, self.avg_half_concurrent_improvement),
            "max ordering improvement (sync)": (31.8, self.max_ordering_sync_improvement),
            "avg ordering improvement (sync)": (7.8, self.avg_ordering_sync_improvement),
            "max ordering improvement (default)": (9.4, self.max_ordering_default_improvement),
            "avg ordering improvement (default)": (3.8, self.avg_ordering_default_improvement),
            "max energy reduction (sync)": (25.7, self.max_energy_improvement_sync),
            "avg energy reduction (sync)": (10.4, self.avg_energy_improvement_sync),
        }
        return [
            {"claim": k, "paper_pct": v[0], "measured_pct": v[1]}
            for k, v in paper.items()
        ]


def headline_numbers(
    num_apps: int = 32,
    scale: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> HeadlineResult:
    """Measure every aggregate number quoted in the paper's abstract."""
    runner = runner or ExperimentRunner()
    fig4 = fig4_concurrency(
        na_values=(num_apps,), scale=scale, runner=runner
    )
    max_full, avg_full = fig4.stats("full")
    max_half, avg_half = fig4.stats("half")
    fig7 = fig7_ordering_default(num_apps=num_apps, scale=scale, runner=runner)
    fig8 = fig8_ordering_sync(num_apps=num_apps, scale=scale, runner=runner)
    max_ord7, avg_ord7 = fig7.stats()
    max_ord8, avg_ord8 = fig8.stats()
    fig10 = fig10_power_sync(num_apps=num_apps, scale=scale, runner=runner)
    best_pair, max_energy = fig10.best_energy_improvement
    return HeadlineResult(
        max_full_concurrent_improvement=max_full,
        avg_full_concurrent_improvement=avg_full,
        max_half_concurrent_improvement=max_half,
        avg_half_concurrent_improvement=avg_half,
        max_ordering_sync_improvement=max_ord8,
        avg_ordering_sync_improvement=avg_ord8,
        max_ordering_default_improvement=max_ord7,
        avg_ordering_default_improvement=avg_ord7,
        max_energy_improvement_sync=max_energy,
        avg_energy_improvement_sync=fig10.average_energy_improvement,
    )
