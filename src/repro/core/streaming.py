"""Streaming (open-loop) workloads and online dispatch policies.

The paper's conclusion: "We envision designing intelligent scheduler
algorithms to support energy efficient execution or manage streaming
workloads, rather than a finite set."  This module implements that
extension: applications *arrive over time* (a seeded Poisson process over a
type mix) and an online :class:`Dispatcher` policy decides when to admit
each arrival to a stream:

* :class:`GreedyDispatcher` — admit immediately on the next stream
  (round-robin); maximum concurrency, the throughput-first policy.
* :class:`ConcurrencyCapDispatcher` — admit only while fewer than ``cap``
  applications are in flight; queue otherwise (FIFO).  ``cap=1`` recovers
  serialized execution, ``cap=NS`` the greedy policy.
* :class:`PowerCapDispatcher` — admit only while the board's sampled power
  is below a wattage budget; the "energy efficient execution" objective.

:func:`run_streaming` executes one arrival trace under a dispatcher and
returns per-job latency (sojourn) statistics plus power/energy, so policies
are comparable on a throughput-latency-power frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.registry import get_app_class
from ..framework.app_thread import AppThread
from ..framework.metrics import AppRecord
from ..framework.power_monitor import PowerMonitor
from ..framework.stream_manager import StreamManager
from ..framework.sync import make_synchronizer
from ..gpu.device import GPUDevice
from ..gpu.specs import DeviceSpec, tesla_k20
from ..sim.engine import Environment
from ..sim.events import AllOf, Event
from ..sim.resources import Store
from .workload import SCALES, resolve_scale

__all__ = [
    "Arrival",
    "poisson_arrivals",
    "Dispatcher",
    "GreedyDispatcher",
    "ConcurrencyCapDispatcher",
    "PowerCapDispatcher",
    "StreamingResult",
    "run_streaming",
]


@dataclass(frozen=True)
class Arrival:
    """One job of a streaming trace."""

    index: int
    time: float
    type_name: str


def poisson_arrivals(
    rate: float,
    duration: float,
    type_mix: Sequence[Tuple[str, float]],
    seed: int = 0,
) -> List[Arrival]:
    """A seeded Poisson arrival trace over a weighted type mix.

    Parameters
    ----------
    rate:
        Mean arrivals per second.
    duration:
        Trace length in (simulated) seconds.
    type_mix:
        ``[(type_name, weight), ...]``; weights are normalized.
    """
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    names = [n for n, _ in type_mix]
    weights = np.array([w for _, w in type_mix], dtype=float)
    if weights.sum() <= 0:
        raise ValueError("type mix weights must sum to > 0")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    arrivals: List[Arrival] = []
    t = 0.0
    index = 0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        name = names[rng.choice(len(names), p=weights)]
        arrivals.append(Arrival(index=index, time=t, type_name=name))
        index += 1
    return arrivals


class Dispatcher:
    """Base class for online admission policies.

    Subclasses implement :meth:`may_admit`, consulted whenever a job is at
    the head of the queue; the streaming engine re-consults after every
    completion (and, for power capping, every sensor sample).
    """

    name = "dispatcher"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:  # pragma: no cover
        """Whether the head-of-queue job may start now."""
        raise NotImplementedError


class GreedyDispatcher(Dispatcher):
    """Admit everything immediately (throughput-first)."""

    name = "greedy"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:
        return True


class ConcurrencyCapDispatcher(Dispatcher):
    """At most ``cap`` applications in flight."""

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.cap = cap
        self.name = f"cap-{cap}"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:
        return in_flight < self.cap


class PowerCapDispatcher(Dispatcher):
    """Admit only while sampled board power is under ``watts``."""

    def __init__(self, watts: float) -> None:
        if watts <= 0:
            raise ValueError("watts must be positive")
        self.watts = watts
        self.name = f"power-cap-{watts:.0f}W"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:
        return in_flight == 0 or power_watts < self.watts


@dataclass
class StreamingResult:
    """Measurements of one streaming run."""

    dispatcher: str
    jobs: int
    completion_time: float          # last job completion (s)
    records: List[AppRecord]
    sojourn_times: List[float]      # arrival -> completion per job
    queue_delays: List[float]       # arrival -> admission per job
    energy: float
    average_power: float
    peak_power: float
    peak_in_flight: int

    @property
    def throughput(self) -> float:
        """Completed jobs per second of makespan."""
        return self.jobs / self.completion_time if self.completion_time else 0.0

    @property
    def mean_sojourn(self) -> float:
        """Mean time from arrival to completion."""
        return float(np.mean(self.sojourn_times)) if self.sojourn_times else 0.0

    @property
    def p95_sojourn(self) -> float:
        """95th-percentile sojourn time."""
        if not self.sojourn_times:
            return 0.0
        return float(np.percentile(self.sojourn_times, 95))

    def summary(self) -> str:
        """One-line digest for reports."""
        return (
            f"{self.dispatcher}: {self.jobs} jobs in "
            f"{self.completion_time * 1e3:.1f} ms "
            f"({self.throughput:.0f} jobs/s), mean sojourn "
            f"{self.mean_sojourn * 1e3:.2f} ms, p95 "
            f"{self.p95_sojourn * 1e3:.2f} ms, avg power "
            f"{self.average_power:.0f} W, energy {self.energy:.3f} J"
        )


def run_streaming(
    arrivals: Sequence[Arrival],
    dispatcher: Dispatcher,
    num_streams: int = 32,
    memory_sync: bool = True,
    scale: Optional[str] = None,
    spec: Optional[DeviceSpec] = None,
    power_interval: float = 1e-3,
) -> StreamingResult:
    """Execute an arrival trace under an online dispatch policy."""
    if not arrivals:
        raise ValueError("empty arrival trace")
    scale_name = resolve_scale(scale)
    spec = spec or tesla_k20()
    env = Environment()
    device = GPUDevice(env, spec=spec)
    manager = StreamManager(env, device, num_streams)
    synchronizer = make_synchronizer(env, memory_sync)
    monitor = PowerMonitor(env, device, interval=power_interval)

    records: List[AppRecord] = []
    sojourns: List[float] = []
    queue_delays: List[float] = []
    state = {"in_flight": 0, "peak": 0}
    queue: Store = Store(env, name="admission-queue")
    admit_poke = {"event": None}

    instance_counters: Dict[str, int] = {}

    def make_thread(arrival: Arrival) -> AppThread:
        count = instance_counters.get(arrival.type_name, 0)
        instance_counters[arrival.type_name] = count + 1
        kwargs = SCALES[scale_name].get(arrival.type_name, {})
        app = get_app_class(arrival.type_name).create(instance=count, **kwargs)
        record = AppRecord(
            app_id=app.app_id,
            type_name=arrival.type_name,
            instance=count,
            stream_index=-1,
            launch_index=arrival.index,
        )
        records.append(record)
        return AppThread(env, device, app, synchronizer, record)

    def poke() -> None:
        evt = admit_poke["event"]
        if evt is not None and not evt.triggered:
            evt.succeed()

    def job_body(thread: AppThread, arrival_time: float):
        yield from thread.run()
        state["in_flight"] -= 1
        sojourns.append(env.now - arrival_time)
        poke()

    def arrival_body(arrival: Arrival):
        # Per-job host thread: allocate/initialize concurrently with other
        # arrivals, then join the admission queue.
        thread = make_thread(arrival)
        yield from thread.prepare()
        queue.put((thread, arrival.time))
        poke()

    def source():
        now = 0.0
        for arrival in arrivals:
            yield env.timeout(arrival.time - now)
            now = arrival.time
            env.process(arrival_body(arrival), name=f"arrival-{arrival.index}")

    completions: List[Event] = []

    def admitter():
        served = 0
        while served < len(arrivals):
            get = queue.get()
            item = yield get
            thread, arrival_time = item
            # Wait for the dispatcher's admission condition.
            while not dispatcher.may_admit(
                state["in_flight"], device.power.current_power
            ):
                gate = Event(env)
                admit_poke["event"] = gate
                # Re-evaluate on every completion or sensor tick.
                tick = env.timeout(power_interval)
                yield env.any_of([gate, tick])
                admit_poke["event"] = None
            queue_delays.append(env.now - arrival_time)
            stream = manager.acquire(thread.app.app_id)
            thread.assign_stream(stream)
            thread.record.stream_index = stream.index
            thread.record.spawn_time = env.now
            state["in_flight"] += 1
            state["peak"] = max(state["peak"], state["in_flight"])
            completions.append(
                env.process(job_body(thread, arrival_time), name=thread.app.app_id)
            )
            served += 1
        if completions:
            yield AllOf(env, completions)
        monitor.stop()

    monitor.start()
    env.process(source(), name="arrival-source")
    done = env.process(admitter(), name="admitter")
    env.run(until=done)
    env.run()

    completion_time = max((r.complete_time for r in records), default=0.0)
    energy = device.power.energy(completion_time)
    return StreamingResult(
        dispatcher=dispatcher.name,
        jobs=len(arrivals),
        completion_time=completion_time,
        records=records,
        sojourn_times=sojourns,
        queue_delays=queue_delays,
        energy=energy,
        average_power=energy / completion_time if completion_time else 0.0,
        peak_power=device.power.peak_power,
        peak_in_flight=state["peak"],
    )
