"""Streaming (open-loop) workloads and online dispatch policies.

The paper's conclusion: "We envision designing intelligent scheduler
algorithms to support energy efficient execution or manage streaming
workloads, rather than a finite set."  This module implements that
extension: applications *arrive over time* (a seeded Poisson process over a
type mix) and an online :class:`Dispatcher` policy decides when to admit
each arrival to a stream:

* :class:`GreedyDispatcher` — admit immediately on the next stream
  (round-robin); maximum concurrency, the throughput-first policy.
* :class:`ConcurrencyCapDispatcher` — admit only while fewer than ``cap``
  applications are in flight; queue otherwise (FIFO).  ``cap=1`` recovers
  serialized execution, ``cap=NS`` the greedy policy.
* :class:`PowerCapDispatcher` — admit only while the board's sampled power
  is below a wattage budget; the "energy efficient execution" objective.

**Queue fairness.**  Queued arrivals are released *strictly FIFO by
arrival time*: whenever the dispatcher frees a slot, the queued job with
the smallest ``(arrival.time, arrival.index)`` key is admitted next, even
if a later arrival finished its host-side preparation earlier.  Ties in
arrival time are broken deterministically by arrival index, so two runs of
the same trace always release jobs in the same order.

**Starvation guard.**  A dispatcher may carry a ``stall_timeout``: if the
head-of-line job has waited that long without the admission condition ever
holding (e.g. a power budget the board never gets under), the engine emits
an :class:`AdmissionStallWarning` and releases the job anyway, so a
mis-sized budget degrades to slow progress instead of queueing forever.

:func:`run_streaming` executes one arrival trace under a dispatcher and
returns per-job latency (sojourn) statistics plus power/energy, so policies
are comparable on a throughput-latency-power frontier.  The optional
``serving`` hooks (:class:`ServingHooks`, driven by :mod:`repro.serving`)
add bounded admission, deadline-aware load shedding, circuit breaking and
crash-safe journaling; with the hooks inert the engine executes exactly
the same event sequence as a plain run — results are byte-identical.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..apps.registry import get_app_class
from ..framework.app_thread import AppThread
from ..framework.metrics import AppRecord
from ..framework.power_monitor import PowerMonitor
from ..framework.stream_manager import StreamManager
from ..framework.sync import make_synchronizer
from ..gpu.device import GPUDevice
from ..gpu.specs import DeviceSpec, tesla_k20
from ..sim.engine import Environment
from ..sim.errors import FaultError, HarnessCrash
from ..sim.events import AllOf, Event
from .workload import SCALES, resolve_scale

__all__ = [
    "Arrival",
    "poisson_arrivals",
    "Dispatcher",
    "GreedyDispatcher",
    "ConcurrencyCapDispatcher",
    "PowerCapDispatcher",
    "AdmissionStallWarning",
    "ServingHooks",
    "StreamingResult",
    "run_streaming",
]


class AdmissionStallWarning(RuntimeWarning):
    """A dispatcher's admission condition never held within its timeout.

    Emitted by :func:`run_streaming` when a head-of-line job is released
    by the starvation guard rather than by the dispatcher itself.
    """


@dataclass(frozen=True)
class Arrival:
    """One job of a streaming trace.

    The last four fields are the multi-tenant extension used by
    :mod:`repro.workload`; their defaults are inert, so traces built by
    :func:`poisson_arrivals` (and every pre-existing caller) behave — and
    fingerprint — exactly as before.

    Attributes
    ----------
    tenant:
        Tenant-class name, or ``""`` outside multi-tenant traffic.
    tenant_id:
        Sub-tenant index within the class (seeded popularity draw).
    deadline:
        Absolute SLO deadline carried *on the arrival* (seconds); ``0``
        means none.  Used only when the serving layer does not compute a
        deadline table of its own.
    priority:
        Tenant-class priority (higher = more important); informational.
    """

    index: int
    time: float
    type_name: str
    tenant: str = ""
    tenant_id: int = 0
    deadline: float = 0.0
    priority: int = 0


def poisson_arrivals(
    rate: float,
    duration: float,
    type_mix: Sequence[Tuple[str, float]],
    seed: int = 0,
) -> List[Arrival]:
    """A seeded Poisson arrival trace over a weighted type mix.

    Parameters
    ----------
    rate:
        Mean arrivals per second.
    duration:
        Trace length in (simulated) seconds.
    type_mix:
        ``[(type_name, weight), ...]``; weights are normalized.
    """
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    names = [n for n, _ in type_mix]
    weights = np.array([w for _, w in type_mix], dtype=float)
    if weights.sum() <= 0:
        raise ValueError("type mix weights must sum to > 0")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    arrivals: List[Arrival] = []
    t = 0.0
    index = 0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        name = names[rng.choice(len(names), p=weights)]
        arrivals.append(Arrival(index=index, time=t, type_name=name))
        index += 1
    return arrivals


class Dispatcher:
    """Base class for online admission policies.

    Subclasses implement :meth:`may_admit`, consulted whenever a job is at
    the head of the queue; the streaming engine re-consults after every
    completion (and, for power capping, every sensor sample).

    ``stall_timeout`` (seconds, ``None`` = never) bounds how long the
    head-of-line job may wait for the admission condition; see the module
    docstring's starvation guard.
    """

    name = "dispatcher"
    stall_timeout: Optional[float] = None

    def may_admit(self, in_flight: int, power_watts: float) -> bool:  # pragma: no cover
        """Whether the head-of-queue job may start now."""
        raise NotImplementedError


class GreedyDispatcher(Dispatcher):
    """Admit everything immediately (throughput-first)."""

    name = "greedy"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:
        return True


class ConcurrencyCapDispatcher(Dispatcher):
    """At most ``cap`` applications in flight.

    Queued arrivals are released strictly FIFO by arrival time with ties
    broken by arrival index (see the module docstring); the cap bounds
    *concurrency*, never reorders the queue.
    """

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.cap = cap
        self.name = f"cap-{cap}"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:
        return in_flight < self.cap


class PowerCapDispatcher(Dispatcher):
    """Admit only while sampled board power is under ``watts``.

    A budget below the board's active floor would otherwise serialize the
    queue behind every in-flight drain (the head waits for the device to go
    fully idle before each admission).  ``stall_timeout`` bounds that wait:
    after ``stall_timeout`` seconds the head-of-line job is released anyway
    and an :class:`AdmissionStallWarning` is emitted.  ``None`` (default)
    preserves the original queue-forever behaviour.
    """

    def __init__(self, watts: float, stall_timeout: Optional[float] = None) -> None:
        if watts <= 0:
            raise ValueError("watts must be positive")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive (or None)")
        self.watts = watts
        self.stall_timeout = stall_timeout
        self.name = f"power-cap-{watts:.0f}W"

    def may_admit(self, in_flight: int, power_watts: float) -> bool:
        return in_flight == 0 or power_watts < self.watts


@dataclass
class ServingHooks:
    """Engine-level switches for the overload-resilient serving layer.

    Built and owned by :mod:`repro.serving` (see
    :class:`~repro.serving.config.ServingConfig` for the user-facing
    surface); :func:`run_streaming` only consumes it.  Every field's
    default is inert: a default-constructed ``ServingHooks`` executes the
    exact event sequence of a plain run.

    Attributes
    ----------
    queue_depth:
        Maximum jobs waiting for admission; ``0`` = unbounded (the
        original implicit FIFO).
    queue_policy:
        What to do with an arrival that finds the queue full:
        ``"block"`` (backpressure: the arrival waits for a slot),
        ``"reject"`` (shed the new arrival) or ``"shed-oldest"`` (evict
        the queue head to make room).
    deadlines:
        Absolute SLO deadline per arrival index (seconds), or ``None``.
    service_estimates:
        ``type_name -> seconds`` estimate of one job's service time, used
        for the deadline-reachability check.
    shed_unreachable:
        Shed a job at release time when ``now + estimate`` already
        overshoots its deadline (deadline-aware load shedding).
    breaker:
        Per-app-type circuit breaker panel (``allow`` / ``on_success`` /
        ``on_failure`` duck type), or ``None``.
    journal:
        Crash-safe run journal (``record(entry)`` duck type), or ``None``.
    crash_at:
        Simulated time at which to raise
        :class:`~repro.sim.errors.HarnessCrash` (the ``harness_crash``
        fault kind), or ``None``.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` injected into the
        device engines for this run.
    fleet_gate:
        Fleet-aware admission gate (``may_admit`` / ``route`` /
        ``breaker_key`` duck type, see
        :class:`~repro.serving.fleet_gate.FleetCapacityGate`), or
        ``None``.  When set, admission is additionally capped by the
        fleet's surviving capacity, each admitted job is stamped with a
        device index, and breakers are scoped by the gate's key.
    on_settle:
        Callback ``(record, arrival_time)`` invoked once per terminal
        outcome, right after the journal write.  The workload layer's
        streaming statistics sink; ``None`` changes nothing.
    retain_records:
        ``False`` drops each :class:`AppRecord` from the result list at
        settle time (after ``on_settle``), and stops accumulating the
        per-job sojourn/queue-delay lists — the bounded-memory mode for
        million-request traces.  The default keeps every record, exactly
        as before.
    front_door:
        Shed arrivals *at the front door* — inside the arrival source,
        before the application object is even constructed — whenever the
        admission pipeline (preparing + ready jobs) is already at
        ``queue_depth``.  Requires the ``"reject"`` queue policy; the
        bound then covers host-side preparation as well as the ready
        queue, which is what keeps an overloaded million-request run
        O(queue_depth) in memory and O(1) per shed arrival.
    """

    queue_depth: int = 0
    queue_policy: str = "block"
    deadlines: Optional[Sequence[float]] = None
    service_estimates: Optional[Mapping[str, float]] = None
    shed_unreachable: bool = False
    breaker: Optional[object] = None
    journal: Optional[object] = None
    crash_at: Optional[float] = None
    fault_plan: Optional[object] = None
    fleet_gate: Optional[object] = None
    on_settle: Optional[object] = None
    retain_records: bool = True
    front_door: bool = False

    def __post_init__(self) -> None:
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.queue_policy not in ("block", "reject", "shed-oldest"):
            raise ValueError(f"unknown queue policy {self.queue_policy!r}")
        if self.front_door and (
            self.queue_policy != "reject" or self.queue_depth <= 0
        ):
            raise ValueError(
                "front_door shedding requires queue_policy='reject' "
                "and a positive queue_depth"
            )


@dataclass
class StreamingResult:
    """Measurements of one streaming run."""

    dispatcher: str
    jobs: int
    completion_time: float          # last job completion (s)
    records: List[AppRecord]
    sojourn_times: List[float]      # arrival -> completion per job
    queue_delays: List[float]       # arrival -> admission per job
    energy: float
    average_power: float
    peak_power: float
    peak_in_flight: int

    @property
    def throughput(self) -> float:
        """Completed jobs per second of makespan."""
        return self.jobs / self.completion_time if self.completion_time else 0.0

    @property
    def mean_sojourn(self) -> float:
        """Mean time from arrival to completion."""
        return float(np.mean(self.sojourn_times)) if self.sojourn_times else 0.0

    @property
    def p95_sojourn(self) -> float:
        """95th-percentile sojourn time."""
        if not self.sojourn_times:
            return 0.0
        return float(np.percentile(self.sojourn_times, 95))

    @property
    def p99_sojourn(self) -> float:
        """99th-percentile sojourn time (the serving layer's tail metric)."""
        if not self.sojourn_times:
            return 0.0
        return float(np.percentile(self.sojourn_times, 99))

    def summary(self) -> str:
        """One-line digest for reports."""
        return (
            f"{self.dispatcher}: {self.jobs} jobs in "
            f"{self.completion_time * 1e3:.1f} ms "
            f"({self.throughput:.0f} jobs/s), mean sojourn "
            f"{self.mean_sojourn * 1e3:.2f} ms, p95 "
            f"{self.p95_sojourn * 1e3:.2f} ms, avg power "
            f"{self.average_power:.0f} W, energy {self.energy:.3f} J"
        )


#: Slack for float comparisons on the simulated clock.
_EPS = 1e-15


def run_streaming(
    arrivals: Iterable[Arrival],
    dispatcher: Dispatcher,
    num_streams: int = 32,
    memory_sync: bool = True,
    scale: Optional[str] = None,
    spec: Optional[DeviceSpec] = None,
    power_interval: float = 1e-3,
    serving: Optional[ServingHooks] = None,
    telemetry=None,
    tracing=None,
) -> StreamingResult:
    """Execute an arrival trace under an online dispatch policy.

    With ``serving`` omitted (or inert) this is the plain open-loop
    engine; :mod:`repro.serving` passes hooks to enable bounded admission,
    shedding, circuit breaking and journaling on the same code path.
    ``telemetry`` (a :class:`~repro.telemetry.Telemetry`) additionally
    samples queue depths, in-flight count, outcome counters and sojourn
    histograms; ``None`` leaves every code path untouched.  ``tracing``
    (a :class:`~repro.telemetry.Tracing`) records one causal trace per
    arrival — admission queue, stream, mutex and DMA waits — and feeds
    terminal outcomes to the SLO burn-rate monitor when one is
    configured; ``None`` likewise leaves results byte-identical.

    ``arrivals`` may be any iterable ordered by arrival time — a
    materialized list (the original contract) or a lazy generator such as
    a :mod:`repro.workload` traffic stream, which is consumed one arrival
    at a time so the trace is never held in memory.
    """
    arrival_iter: Iterator[Arrival]
    if isinstance(arrivals, Sequence):
        if not arrivals:
            raise ValueError("empty arrival trace")
        arrival_iter = iter(arrivals)
    else:
        arrival_iter = iter(arrivals)
        try:
            head = next(arrival_iter)
        except StopIteration:
            raise ValueError("empty arrival trace") from None
        arrival_iter = itertools.chain((head,), arrival_iter)
    hooks = serving if serving is not None else ServingHooks()
    scale_name = resolve_scale(scale)
    spec = spec or tesla_k20()
    env = Environment()
    injector = None
    plan = hooks.fault_plan
    if plan is not None and len(plan):
        from ..resilience import FaultInjector

        injector = FaultInjector(env, plan)
        env.attach_fault_injector(injector)
    device = GPUDevice(env, spec=spec, injector=injector)
    manager = StreamManager(env, device, num_streams)
    synchronizer = make_synchronizer(env, memory_sync)
    monitor = PowerMonitor(env, device, interval=power_interval, injector=injector)
    if not hooks.retain_records:
        # Bounded-memory mode: drop the O(simulated-time) power history.
        # The exact running energy integral and the monitor's aggregate
        # stats survive; only retrospective series queries are given up.
        device.power.retain_segments = False
        monitor.retain_samples = False

    records: List[AppRecord] = []
    sojourns: List[float] = []
    queue_delays: List[float] = []
    state = {
        "in_flight": 0,
        "peak": 0,
        "settled": 0,
        "produced": 0,       # arrivals emitted by the source so far
        "source_done": False,
        "front_queue": 0,    # preparing + ready jobs (front-door bound)
        "last_complete": 0.0,
        "last_energy": 0.0,  # exact J integral at last_complete (bounded mode)
    }
    #: Jobs ready for admission, ordered by (arrival time, arrival index):
    #: strict FIFO release by arrival, deterministic tie-break by index.
    ready: List[Tuple[float, int, AppThread]] = []
    #: Arrivals back-pressured by a full bounded queue, same ordering.
    blocked: List[Tuple[float, int, Event]] = []
    admit_poke = {"event": None}

    deadlines = hooks.deadlines
    estimates = dict(hooks.service_estimates or {})
    breaker = hooks.breaker
    journal = hooks.journal
    fleet_gate = hooks.fleet_gate

    def breaker_key(record: AppRecord) -> str:
        """Breaker scope: per (device, type) with a fleet gate, else type."""
        if fleet_gate is not None:
            return fleet_gate.breaker_key(record)
        return record.type_name

    tracer = tracing.tracer if tracing is not None else None
    burn_monitor = tracing.monitor if tracing is not None else None
    if tracer is not None:
        env.attach_tracer(tracer)
    #: launch_index -> root SpanContext for every traced arrival.
    trace_ctxs: Dict[int, object] = {}

    outcome_counter = None
    sojourn_hist = None
    goodput_counter = None
    if telemetry is not None:
        from ..telemetry.probes import (
            instrument_device,
            instrument_environment,
            instrument_injector,
            instrument_records,
        )

        telemetry.attach(env)
        instrument_environment(telemetry, env)
        instrument_device(telemetry, device)
        instrument_records(telemetry, records)
        instrument_injector(telemetry, injector)
        admission_depth = telemetry.gauge(
            "repro_serving_admission_queue_depth",
            "Jobs prepared and waiting for admission",
        )
        blocked_depth = telemetry.gauge(
            "repro_serving_blocked_arrivals",
            "Arrivals back-pressured by a full bounded queue",
        )
        inflight_gauge = telemetry.gauge(
            "repro_serving_in_flight", "Jobs admitted and not yet settled"
        )
        outcome_counter = telemetry.counter(
            "repro_serving_outcomes_total",
            "Terminal job outcomes",
            labelnames=("outcome",),
        )
        goodput_counter = telemetry.counter(
            "repro_serving_goodput_jobs_total",
            "Jobs completed within their SLO (or with no SLO set)",
        )
        sojourn_hist = telemetry.histogram(
            "repro_serving_sojourn_seconds", "Arrival-to-completion latency"
        )
        telemetry.add_probe(lambda: admission_depth.set(len(ready)))
        telemetry.add_probe(lambda: blocked_depth.set(len(blocked)))
        telemetry.add_probe(lambda: inflight_gauge.set(state["in_flight"]))

    instance_counters: Dict[str, int] = {}

    def make_thread(arrival: Arrival) -> AppThread:
        count = instance_counters.get(arrival.type_name, 0)
        instance_counters[arrival.type_name] = count + 1
        kwargs = SCALES[scale_name].get(arrival.type_name, {})
        app = get_app_class(arrival.type_name).create(instance=count, **kwargs)
        record = AppRecord(
            app_id=app.app_id,
            type_name=arrival.type_name,
            instance=count,
            stream_index=-1,
            launch_index=arrival.index,
        )
        if deadlines is not None:
            record.slo_deadline = deadlines[arrival.index]
        elif arrival.deadline > 0.0:
            record.slo_deadline = arrival.deadline
        if arrival.tenant:
            record.tenant = arrival.tenant
            record.tenant_id = arrival.tenant_id
        records.append(record)
        return AppThread(env, device, app, synchronizer, record)

    def poke() -> None:
        evt = admit_poke["event"]
        if evt is not None and not evt.triggered:
            evt.succeed()

    def finalize(record: AppRecord, outcome: str, arrival_time: float) -> None:
        """Stamp a terminal outcome and journal it (host-side only)."""
        record.outcome = outcome
        if tracer is not None:
            ctx = trace_ctxs.pop(record.launch_index, None)
            if ctx is not None:
                tracer.end_trace(ctx, env.now, outcome=outcome)
        if burn_monitor is not None:
            burn_monitor.observe(env.now, outcome == "completed")
        if outcome_counter is not None:
            outcome_counter.inc(outcome=outcome)
            if outcome == "completed":
                goodput_counter.inc()
            if record.ran:
                sojourn_hist.observe(env.now - arrival_time)
        if journal is not None:
            journal.record(
                {
                    "index": record.launch_index,
                    "app_id": record.app_id,
                    "type": record.type_name,
                    "outcome": outcome,
                    "arrival": arrival_time,
                    "admit": record.spawn_time if record.spawn_time > 0 else None,
                    "complete": record.complete_time if record.ran else None,
                    "deadline": (
                        record.slo_deadline if record.slo_deadline > 0 else None
                    ),
                    "deadline_met": record.deadline_met if record.ran else None,
                    # The device key exists only in fleet-aware runs, so
                    # single-device journals stay byte-identical.
                    **(
                        {"device": record.device_index}
                        if fleet_gate is not None
                        else {}
                    ),
                    # Tenant keys exist only in multi-tenant traffic runs.
                    **(
                        {"tenant": record.tenant, "user": record.tenant_id}
                        if record.tenant
                        else {}
                    ),
                }
            )
        if record.ran and record.complete_time > state["last_complete"]:
            state["last_complete"] = record.complete_time
            if not hooks.retain_records:
                # Snapshot now, while complete_time is still the present:
                # without the segment history a later retrospective
                # energy(completion_time) query would be unanswerable.
                state["last_energy"] = device.power.energy(record.complete_time)
        if hooks.on_settle is not None:
            hooks.on_settle(record, arrival_time)
        if not hooks.retain_records:
            # Identity-based removal: the live window is O(in-flight).
            for i in range(len(records) - 1, -1, -1):
                if records[i] is record:
                    del records[i]
                    break

    def shed(record: AppRecord, outcome: str, arrival_time: float) -> None:
        """Terminal outcome for a job that never starts; unblocks the loop."""
        finalize(record, outcome, arrival_time)
        state["settled"] += 1
        poke()

    def job_body(thread: AppThread, arrival_time: float):
        record = thread.record
        failed = False
        try:
            yield from thread.run()
        except FaultError:
            failed = True
        state["in_flight"] -= 1
        if failed:
            record.failed = True
            if breaker is not None:
                breaker.on_failure(breaker_key(record), env.now)
            finalize(record, "failed", arrival_time)
        else:
            if hooks.retain_records:
                sojourns.append(env.now - arrival_time)
            if breaker is not None:
                breaker.on_success(breaker_key(record), env.now)
            late = 0 < record.slo_deadline < env.now - _EPS
            finalize(record, "late" if late else "completed", arrival_time)
        poke()

    def arrival_body(arrival: Arrival):
        # Per-job host thread: allocate/initialize concurrently with other
        # arrivals, then join the admission queue.
        thread = make_thread(arrival)
        if tracer is not None:
            ctx = tracer.start_trace(
                thread.record.app_id,
                arrival.time,
                type=arrival.type_name,
                index=arrival.index,
            )
            thread.trace_ctx = ctx
            trace_ctxs[arrival.index] = ctx
        prepare_from = env.now
        yield from thread.prepare()
        if tracer is not None and env.now > prepare_from:
            tracer.record_leaf(
                thread.trace_ctx, "host.prepare", "prepare",
                prepare_from, env.now,
            )
        thread._trace_ready_at = env.now
        # With front-door shedding the bound was already enforced at the
        # source (over preparing + ready), so the ready-only check is off.
        if (
            not hooks.front_door
            and hooks.queue_depth > 0
            and len(ready) >= hooks.queue_depth
        ):
            if hooks.queue_policy == "reject":
                shed(thread.record, "shed-reject", arrival.time)
                return
            if hooks.queue_policy == "shed-oldest":
                old_time, _, old_thread = heapq.heappop(ready)
                shed(old_thread.record, "shed-oldest", old_time)
            else:  # block: wait (FIFO by arrival) until a slot frees
                while len(ready) >= hooks.queue_depth:
                    gate = Event(env)
                    heapq.heappush(blocked, (arrival.time, arrival.index, gate))
                    yield gate
        heapq.heappush(ready, (arrival.time, arrival.index, thread))
        poke()

    def front_door_shed(arrival: Arrival) -> None:
        """Shed an arrival before constructing its application object.

        The O(1)-per-arrival overload path: no app, no host thread, no
        ready-queue churn — just a terminal record, so a run drowning in
        traffic costs microseconds per excess arrival.
        """
        record = AppRecord(
            app_id=f"{arrival.type_name}#fd{arrival.index}",
            type_name=arrival.type_name,
            instance=-1,
            stream_index=-1,
            launch_index=arrival.index,
        )
        if deadlines is not None:
            record.slo_deadline = deadlines[arrival.index]
        elif arrival.deadline > 0.0:
            record.slo_deadline = arrival.deadline
        if arrival.tenant:
            record.tenant = arrival.tenant
            record.tenant_id = arrival.tenant_id
        if hooks.retain_records:
            records.append(record)
        shed(record, "shed-reject", arrival.time)

    def source():
        now = 0.0
        for arrival in arrival_iter:
            yield env.timeout(arrival.time - now)
            now = arrival.time
            state["produced"] += 1
            if hooks.front_door and state["front_queue"] >= hooks.queue_depth:
                front_door_shed(arrival)
                continue
            if hooks.front_door:
                state["front_queue"] += 1
            env.process(arrival_body(arrival), name=f"arrival-{arrival.index}")
        state["source_done"] = True
        poke()

    completions: List[Event] = []

    def admitter():
        while not (
            state["source_done"] and state["settled"] >= state["produced"]
        ):
            if not ready:
                # Wait for an enqueue (or a shed that settles the count).
                gate = Event(env)
                admit_poke["event"] = gate
                yield gate
                admit_poke["event"] = None
                continue
            # Wait for the dispatcher's admission condition (head-of-line),
            # further capped by the fleet's surviving capacity when a
            # fleet gate is attached.
            def may_start() -> bool:
                return dispatcher.may_admit(
                    state["in_flight"], device.power.current_power
                ) and (
                    fleet_gate is None
                    or fleet_gate.may_admit(state["in_flight"], env.now)
                )

            wait_start = env.now
            while not may_start():
                stall = dispatcher.stall_timeout
                if stall is not None:
                    remaining = stall - (env.now - wait_start)
                    if remaining <= _EPS:
                        warnings.warn(
                            f"{dispatcher.name}: admission condition not met "
                            f"after {stall:.6g}s; releasing head-of-line job "
                            "to avoid starvation",
                            AdmissionStallWarning,
                            stacklevel=2,
                        )
                        break
                    tick = env.timeout(min(power_interval, remaining))
                else:
                    tick = env.timeout(power_interval)
                gate = Event(env)
                admit_poke["event"] = gate
                # Re-evaluate on every completion or sensor tick.
                yield env.any_of([gate, tick])
                admit_poke["event"] = None
            arrival_time, _, thread = heapq.heappop(ready)
            if hooks.front_door:
                state["front_queue"] -= 1
            if blocked:
                # A queue slot freed: wake the oldest back-pressured arrival.
                _, _, gate = heapq.heappop(blocked)
                gate.succeed()
            record = thread.record
            if fleet_gate is not None:
                # Stamp the fleet routing decision before the breaker
                # check: breaker scope is (device, type).
                record.device_index = fleet_gate.route(env.now)
            # Deadline-aware shedding: drop work whose queueing delay
            # already makes the SLO unreachable.
            if (
                hooks.shed_unreachable
                and record.slo_deadline > 0
                and env.now + estimates.get(record.type_name, 0.0)
                > record.slo_deadline + _EPS
            ):
                shed(record, "shed-deadline", arrival_time)
                continue
            # Circuit breaker: fail fast while the app type's breaker is open.
            if breaker is not None and not breaker.allow(breaker_key(record), env.now):
                shed(record, "breaker-open", arrival_time)
                continue
            state["settled"] += 1
            if hooks.retain_records:
                queue_delays.append(env.now - arrival_time)
            if tracer is not None and thread.trace_ctx is not None:
                ready_at = getattr(thread, "_trace_ready_at", arrival_time)
                if env.now > ready_at:
                    tracer.record_leaf(
                        thread.trace_ctx, "admission.queue",
                        "admission-queue", ready_at, env.now,
                    )
            stream = manager.acquire(thread.app.app_id)
            thread.assign_stream(stream)
            thread.record.stream_index = stream.index
            thread.record.spawn_time = env.now
            state["in_flight"] += 1
            state["peak"] = max(state["peak"], state["in_flight"])
            proc = env.process(
                job_body(thread, arrival_time), name=thread.app.app_id
            )
            if hooks.retain_records:
                completions.append(proc)
        if completions:
            yield AllOf(env, completions)
        # Bounded-memory mode retains no process list: drain by count.
        # job_body pokes on every completion, so this wakes precisely
        # when the in-flight population changes.
        while state["in_flight"] > 0:
            gate = Event(env)
            admit_poke["event"] = gate
            yield gate
            admit_poke["event"] = None
        monitor.stop()
        if telemetry is not None:
            telemetry.stop()

    if hooks.crash_at is not None:

        def crash_body():
            yield env.timeout(hooks.crash_at)
            raise HarnessCrash(env.now)

        env.process(crash_body(), name="harness-crash")

    monitor.start()
    if telemetry is not None:
        telemetry.start()
    env.process(source(), name="arrival-source")
    done = env.process(admitter(), name="admitter")
    env.run(until=done)
    env.run()
    if telemetry is not None:
        telemetry.finalize()

    if hooks.retain_records:
        completion_time = max((r.complete_time for r in records), default=0.0)
        energy = device.power.energy(completion_time)
    else:
        completion_time = state["last_complete"]
        energy = state["last_energy"]
    return StreamingResult(
        dispatcher=dispatcher.name,
        jobs=state["produced"],
        completion_time=completion_time,
        records=records,
        sojourn_times=sojourns,
        queue_delays=queue_delays,
        energy=energy,
        average_power=energy / completion_time if completion_time else 0.0,
        peak_power=device.power.peak_power,
        peak_in_flight=state["peak"],
    )
