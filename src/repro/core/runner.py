"""Experiment runner: configure, execute and compare harness runs.

The paper's evaluation always reports *relative* numbers: improvement over
serialized execution (Figure 4), latency relative to the homogeneous
expectation (Figure 6), performance relative to the slowest launch order
(Figures 7/8), energy relative to the serial baseline (Figures 9/10).
:class:`ExperimentRunner` provides exactly those comparisons, caching the
(expensive) serial baselines so sweep experiments don't recompute them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..framework.harness import HarnessConfig, HarnessResult, TestHarness
from ..framework.metrics import improvement_pct
from ..framework.scheduler import SchedulingOrder
from ..gpu.specs import DeviceSpec
from ..resilience import ResilienceConfig
from .workload import Workload

__all__ = ["RunConfig", "RunResult", "ExperimentRunner", "quick_run"]


@dataclass(frozen=True)
class RunConfig:
    """One experiment cell: workload x streams x order x policies."""

    workload: Workload
    num_streams: int
    order: SchedulingOrder = SchedulingOrder.NAIVE_FIFO
    memory_sync: bool = False
    copy_policy: str = "interleave"
    spec: Optional[DeviceSpec] = None
    seed: int = 0
    record_trace: bool = False
    power_interval: float = 15e-3
    spawn_jitter: float = 0.0
    admission: object = None
    #: Optional fault-injection / watchdog / retry / degradation setup.
    #: When its ``deadline_factor`` is set without explicit baselines, the
    #: runner measures the serial baseline and fills them in (cached).
    resilience: Optional[ResilienceConfig] = None
    #: Optional :class:`~repro.fleet.FleetConfig`: run the cell on a
    #: multi-device fleet (with failover) instead of the single-device
    #: harness.  ``None`` keeps the original pipeline untouched.
    fleet: object = None
    #: Optional :class:`~repro.telemetry.Telemetry`: live metrics for the
    #: run (single-device or fleet).  ``None`` = uninstrumented.
    telemetry: object = None
    #: Runtime invariant probes (:mod:`repro.integrity.invariants`):
    #: ``True`` attaches a default :class:`InvariantChecker`, or pass a
    #: preconfigured checker.  ``None``/``False`` = off (byte-identical
    #: results, zero probe cost).  Single-device cells only.
    integrity: object = None
    #: Optional :class:`~repro.telemetry.Tracing`: per-app causal traces
    #: for the run (single-device or fleet).  ``None`` = untraced.
    tracing: object = None

    @property
    def num_apps(self) -> int:
        """NA."""
        return self.workload.size

    def label(self) -> str:
        """Short cell id for tables and logs."""
        sync = "sync" if self.memory_sync else "default"
        return (
            f"{self.workload.describe()} | NS={self.num_streams} "
            f"| {self.order} | {sync}"
        )


@dataclass
class RunResult:
    """A harness result annotated with its configuration."""

    config: RunConfig
    harness: HarnessResult

    @property
    def makespan(self) -> float:
        """Wall time of the whole schedule (s)."""
        return self.harness.makespan

    @property
    def energy(self) -> float:
        """Exact GPU energy over the run window (J)."""
        return self.harness.energy

    @property
    def average_power(self) -> float:
        """Energy / makespan (W)."""
        return self.harness.average_power

    @property
    def peak_power(self) -> float:
        """Peak instantaneous model power (W)."""
        return self.harness.peak_power

    def improvement_over(self, baseline: "RunResult") -> float:
        """Makespan improvement vs ``baseline`` in percent (positive=faster)."""
        return improvement_pct(baseline.makespan, self.makespan)

    def energy_improvement_over(self, baseline: "RunResult") -> float:
        """Energy reduction vs ``baseline`` in percent (positive=less energy)."""
        return improvement_pct(baseline.energy, self.energy)

    def summary(self) -> str:
        """Configuration + measurements in one line."""
        return f"[{self.config.label()}] {self.harness.summary()}"


class ExperimentRunner:
    """Executes :class:`RunConfig` cells with serial-baseline caching."""

    def __init__(self, default_spec: Optional[DeviceSpec] = None) -> None:
        self.default_spec = default_spec
        self._serial_cache: Dict[tuple, RunResult] = {}
        self.runs_executed: int = 0

    # -- execution ---------------------------------------------------------

    def run(self, config: RunConfig) -> RunResult:
        """Execute one cell in a fresh simulation."""
        rng = np.random.default_rng(config.seed)
        schedule = config.workload.schedule(config.order, rng=rng)
        apps = config.workload.instantiate(schedule)
        spec = config.spec or self.default_spec
        resilience = config.resilience
        if config.fleet is not None:
            # Multi-device cell: dispatch to the fleet harness.  The fault
            # plan (if any) rides in on the resilience config; FleetResult
            # duck-types the HarnessResult surface RunResult reads.
            from ..fleet import FleetHarness

            fleet_result = FleetHarness(
                apps,
                config.fleet,
                num_streams=config.num_streams,
                memory_sync=config.memory_sync,
                spec=spec,
                copy_policy=config.copy_policy,
                power_interval=config.power_interval,
                plan=resilience.plan if resilience is not None else None,
                seed=config.seed,
                telemetry=config.telemetry,
                tracing=config.tracing,
            ).run()
            self.runs_executed += 1
            return RunResult(config=config, harness=fleet_result)
        if resilience is not None and resilience.needs_baselines:
            resilience = self.resolve_baselines(config)
        harness_config = HarnessConfig(
            apps=apps,
            num_streams=config.num_streams,
            memory_sync=config.memory_sync,
            spec=spec,
            copy_policy=config.copy_policy,
            record_trace=config.record_trace,
            power_interval=config.power_interval,
            spawn_jitter=config.spawn_jitter,
            seed=config.seed,
            admission=config.admission,
            resilience=resilience,
            telemetry=config.telemetry,
            order_label=str(config.order),
            integrity=config.integrity,
            tracing=config.tracing,
        )
        result = TestHarness(harness_config).run()
        self.runs_executed += 1
        return RunResult(config=config, harness=result)

    def resolve_baselines(self, config: RunConfig) -> ResilienceConfig:
        """Fill a resilience config's baseline runtimes from the serial run.

        The watchdog deadline is defined as a multiple of each application
        type's *serial-baseline* runtime; this measures that baseline (one
        cached clean run of the workload on one stream, no faults) and
        returns the config with ``baseline_runtimes`` populated with the
        worst observed wall time per type.

        A record whose GPU section never ran (zero/negative wall time)
        contributes nothing: a zero entry would derive a 0s watchdog
        deadline that fires before the attempt's first event.  Types left
        without a baseline fall back to the config's ``default_deadline``
        / ``deadline_floor``.
        """
        if config.resilience is None:
            raise ValueError("config has no resilience settings")
        serial = self.run_serial(
            config.workload,
            copy_policy=config.copy_policy,
            spec=config.spec,
        )
        baselines: Dict[str, float] = {}
        for record in serial.harness.records:
            if record.wall_time <= 0:
                continue
            baselines[record.type_name] = max(
                baselines.get(record.type_name, 0.0), record.wall_time
            )
        return dataclasses.replace(
            config.resilience,
            baseline_runtimes=tuple(sorted(baselines.items())),
        )

    def run_serial(self, workload: Workload, **kwargs) -> RunResult:
        """The serialized baseline: the whole workload on one stream.

        Order is Naive FIFO (order cannot matter when everything
        serializes through a single stream's host lock) and memory sync is
        off (a single stream never contends with itself).  Results are
        cached per workload.
        """
        key = (workload.entries, tuple(sorted(kwargs.items())))
        cached = self._serial_cache.get(key)
        if cached is not None:
            return cached
        config = RunConfig(
            workload=workload,
            num_streams=1,
            order=SchedulingOrder.NAIVE_FIFO,
            memory_sync=False,
            **kwargs,
        )
        result = self.run(config)
        self._serial_cache[key] = result
        return result

    # -- comparisons ------------------------------------------------------------

    def improvement_vs_serial(self, config: RunConfig) -> Tuple[float, RunResult, RunResult]:
        """(improvement %, run, serial baseline) for one cell."""
        serial = self.run_serial(
            config.workload,
            copy_policy=config.copy_policy,
            spec=config.spec,
        )
        result = self.run(config)
        return result.improvement_over(serial), result, serial

    def ordering_matrix(
        self,
        workload: Workload,
        num_streams: int,
        memory_sync: bool,
        orders: Optional[Sequence[SchedulingOrder]] = None,
        seed: int = 0,
        **kwargs,
    ) -> Dict[SchedulingOrder, RunResult]:
        """Run every launch order on one workload (Figures 7/8 cells)."""
        from ..framework.scheduler import all_orders

        results = {}
        for order in orders or all_orders():
            config = RunConfig(
                workload=workload,
                num_streams=num_streams,
                order=order,
                memory_sync=memory_sync,
                seed=seed,
                **kwargs,
            )
            results[order] = self.run(config)
        return results


def quick_run(
    pair: Tuple[str, str] = ("gaussian", "needle"),
    num_apps: int = 8,
    num_streams: int = 8,
    memory_sync: bool = False,
    order: SchedulingOrder = SchedulingOrder.NAIVE_FIFO,
    scale: Optional[str] = None,
    **kwargs,
) -> RunResult:
    """One-call convenience API used by the README quickstart."""
    workload = Workload.heterogeneous_pair(pair[0], pair[1], num_apps, scale=scale)
    config = RunConfig(
        workload=workload,
        num_streams=num_streams,
        order=order,
        memory_sync=memory_sync,
        **kwargs,
    )
    return ExperimentRunner().run(config)
