"""Workload construction: homogeneous and heterogeneous application sets.

The paper's methodology (Section IV): a *homogeneous* workload runs many
copies of one application (same kernels, data size, launch geometry); a
*heterogeneous* workload mixes two (or more) types, evenly split.  The test
harness sweeps the number of applications NA against the number of streams
NS from fully serialized (NS = 1) to fully parallelized (NS = NA <= 32).

A :class:`Workload` is declarative — a list of (type name, profile kwargs)
in Naive-FIFO order — and is *instantiated* into concrete
:class:`~repro.framework.kernel.KernelApp` objects per schedule, so one
workload can be rerun under every launch order of Figure 3.

Scale profiles: experiments default to the paper's Table III sizes
(``"paper"``); reduced ``"small"``/``"tiny"`` profiles exist for fast test
runs and are selectable globally via the ``REPRO_SCALE`` environment
variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.registry import get_app_class
from ..framework.kernel import KernelApp
from ..framework.scheduler import SchedulingOrder, make_schedule

__all__ = ["SCALES", "resolve_scale", "Workload"]

#: Named problem-size profiles per application type.
SCALES: Dict[str, Dict[str, Dict[str, object]]] = {
    "paper": {
        "gaussian": {"n": 512},
        "nn": {"records": 42764},
        "needle": {"n": 512},
        "srad": {"n": 512, "iterations": 10},
    },
    "small": {
        "gaussian": {"n": 128},
        "nn": {"records": 10240},
        "needle": {"n": 256},
        "srad": {"n": 256, "iterations": 5},
    },
    "tiny": {
        "gaussian": {"n": 48},
        "nn": {"records": 2048},
        "needle": {"n": 64},
        "srad": {"n": 64, "iterations": 3},
    },
}


def resolve_scale(scale: Optional[str] = None) -> str:
    """Pick a scale: explicit argument > ``REPRO_SCALE`` env > ``"paper"``."""
    name = scale or os.environ.get("REPRO_SCALE", "paper")
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}")
    return name


@dataclass(frozen=True)
class Workload:
    """A set of application instances in Naive-FIFO order.

    Attributes
    ----------
    entries:
        ``(type_name, profile_kwargs)`` per instance, grouped by type —
        i.e. already in the paper's Naive FIFO order.
    """

    entries: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def homogeneous(
        name: str, count: int, scale: Optional[str] = None, **overrides
    ) -> "Workload":
        """``count`` copies of application ``name``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        kwargs = dict(SCALES[resolve_scale(scale)].get(name, {}))
        kwargs.update(overrides)
        entry = (name, tuple(sorted(kwargs.items())))
        return Workload(entries=tuple([entry] * count))

    @staticmethod
    def heterogeneous_pair(
        type_x: str,
        type_y: str,
        total: int,
        scale: Optional[str] = None,
    ) -> "Workload":
        """Evenly split pair workload (the paper's Figure 4/7/8 setup).

        ``total`` must be even; the first half is type X, the second half
        type Y (Naive FIFO order).
        """
        if total < 2 or total % 2 != 0:
            raise ValueError("total must be an even number >= 2")
        if type_x == type_y:
            raise ValueError("a heterogeneous pair needs two distinct types")
        scale_name = resolve_scale(scale)
        kx = tuple(sorted(SCALES[scale_name].get(type_x, {}).items()))
        ky = tuple(sorted(SCALES[scale_name].get(type_y, {}).items()))
        half = total // 2
        return Workload(
            entries=tuple([(type_x, kx)] * half + [(type_y, ky)] * half)
        )

    @staticmethod
    def mixed(
        spec: Sequence[Tuple[str, int]], scale: Optional[str] = None
    ) -> "Workload":
        """Arbitrary mixture: ``[("gaussian", 4), ("nn", 8), ...]``.

        Supports the "higher degree of task heterogeneity" the paper notes
        its framework can already drive.
        """
        scale_name = resolve_scale(scale)
        entries: List[Tuple[str, Tuple]] = []
        for name, count in spec:
            if count < 1:
                raise ValueError(f"count for {name!r} must be >= 1")
            kwargs = tuple(sorted(SCALES[scale_name].get(name, {}).items()))
            entries.extend([(name, kwargs)] * count)
        if not entries:
            raise ValueError("empty workload spec")
        return Workload(entries=tuple(entries))

    # -- properties ---------------------------------------------------------

    @property
    def size(self) -> int:
        """NA — number of application instances."""
        return len(self.entries)

    @property
    def types(self) -> List[str]:
        """Type name per instance, Naive-FIFO order."""
        return [name for name, _ in self.entries]

    @property
    def type_counts(self) -> Dict[str, int]:
        """Instances per type."""
        counts: Dict[str, int] = {}
        for name, _ in self.entries:
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- instantiation ---------------------------------------------------------

    def schedule(
        self,
        order: SchedulingOrder = SchedulingOrder.NAIVE_FIFO,
        rng: Optional[np.random.Generator] = None,
    ) -> List[int]:
        """Launch order (instance indices) under the given policy."""
        return make_schedule(self.types, order, rng=rng)

    def instantiate(
        self, schedule: Optional[Sequence[int]] = None
    ) -> List[KernelApp]:
        """Build concrete app objects in launch order.

        Instance numbers are per type in FIFO order (so ``gaussian#0`` is
        the same logical instance under every launch order).
        """
        schedule = list(schedule) if schedule is not None else list(range(self.size))
        if sorted(schedule) != list(range(self.size)):
            raise ValueError("schedule must be a permutation of the workload")
        instance_no: Dict[int, int] = {}
        counters: Dict[str, int] = {}
        for idx, (name, _) in enumerate(self.entries):
            counters[name] = counters.get(name, 0)
            instance_no[idx] = counters[name]
            counters[name] += 1
        apps: List[KernelApp] = []
        for idx in schedule:
            name, kwargs = self.entries[idx]
            apps.append(
                get_app_class(name).create(
                    instance=instance_no[idx], **dict(kwargs)
                )
            )
        return apps

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``16x gaussian + 16x needle``."""
        return " + ".join(
            f"{count}x {name}" for name, count in sorted(self.type_counts.items())
        )
