"""The multi-device fleet harness: run a schedule across N devices and
survive losing some of them.

Mirrors :class:`~repro.framework.harness.TestHarness`'s paper flow (parent
prepares every app up front, then spawns one driver per app, staggered by
the thread-spawn cost) on top of the fleet machinery:

* apps are placed on devices by the :class:`~repro.fleet.coordinator.
  FailoverCoordinator` using the configured placement policy;
* each app runs inside a *driver* loop that retries faults from the last
  checkpoint and migrates across device losses;
* an optional crash-safe journal (reusing :class:`~repro.serving.journal.
  RunJournal`) records checkpoints, device losses, failovers and terminal
  app outcomes; a run killed by :class:`~repro.sim.errors.HarnessCrash`
  mid-failover resumes by deterministic replay, verified entry-by-entry.

:class:`FleetResult` aggregates per-device summaries (energy cut off at
the loss instant, goodput), recovery timelines and migration accounting,
and duck-types the pieces of :class:`~repro.framework.harness.
HarnessResult` that :class:`~repro.core.runner.RunResult` reads.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..framework.kernel import KernelApp
from ..framework.metrics import AppRecord, makespan
from ..gpu.specs import DeviceSpec
from ..resilience.budget import RetryBudget, unfinishable
from ..resilience.degradation import ConcurrencyLimiter
from ..resilience.faults import FaultPlan
from ..resilience.metastable import MetastabilityProbe
from ..resilience.retry import app_rng
from ..sim.engine import Environment
from ..sim.errors import DeviceLost, FaultError, HarnessCrash, Interrupt
from ..sim.events import AllOf
from .checkpoint import CheckpointStore
from .config import FleetConfig
from .coordinator import FailoverCoordinator, RecoveryEvent
from .health import HealthEvent, HealthMonitor
from .hedging import HedgeManager, HedgeWin
from .registry import DeviceRegistry
from .thread import FleetAppThread

__all__ = ["DeviceSummary", "FleetResult", "FleetHarness", "run_fleet"]


class _ShedWork(Exception):
    """Raised at a checkpoint boundary to abandon deadline-doomed work."""


@dataclass
class DeviceSummary:
    """End-of-run accounting for one fleet device."""

    index: int
    state: str
    loss_time: Optional[float]
    detected_time: Optional[float]
    apps_completed: int
    energy: float
    peak_power: float
    #: ``rail<r>/sw<s>/rack<k>`` fault-domain tag; ``None`` without a
    #: configured topology.
    domain: Optional[str] = None

    def goodput(self, span: float) -> float:
        """Completed apps per second of fleet makespan."""
        return self.apps_completed / span if span > 0 else 0.0


@dataclass
class FleetResult:
    """Everything measured in one fleet run."""

    fleet: FleetConfig
    records: List[AppRecord]
    makespan: float
    total_time: float
    energy: float                 # sum over devices, cut at loss instants
    average_power: float          # fleet energy / makespan
    peak_power: float             # max over devices
    devices: List[DeviceSummary]
    health_events: List[HealthEvent]
    recoveries: List[RecoveryEvent]
    checkpoints: int = 0
    recovered_entries: int = 0
    resumed: bool = False
    #: Generation advances declared by the fence (one per device loss).
    fence_advances: int = 0
    #: Journal writes rejected for presenting a superseded fence token.
    stale_writes_rejected: int = 0
    #: Gray-failure mitigation accounting (all zero with hedging off).
    hedges_launched: int = 0
    hedge_wins: int = 0
    duplicate_kernels: int = 0
    hedge_events: List[dict] = field(default_factory=list)
    #: Failover-storm control accounting (all zero with storm=None).
    storm_queued: int = 0
    storm_released: int = 0
    storm_failed: int = 0
    storm_peak_depth: int = 0
    #: Shared retry-budget accounting (all zero with retry_budget=None).
    retry_budget_granted: int = 0
    retry_budget_denied: int = 0
    #: Metastability accounting (all zero/empty with brownout=None).
    metastable_windows: int = 0
    brownout_level: int = 0
    brownout_events: List[dict] = field(default_factory=list)
    goodput_windows: List[dict] = field(default_factory=list)
    journal_file: Optional[str] = None
    #: The run's telemetry (same object passed to the harness), if enabled.
    telemetry: object = None

    @property
    def completed(self) -> int:
        """Apps that ran to completion."""
        return sum(1 for r in self.records if not r.failed)

    @property
    def shed_apps(self) -> int:
        """Apps shed by deadline propagation or a level-2 brownout."""
        return sum(
            1 for r in self.records if r.outcome.startswith("shed-")
        )

    @property
    def deadline_misses(self) -> int:
        """Apps that finished (or gave up) past their deadline."""
        return sum(
            1 for r in self.records if r.outcome == "deadline-missed"
        )

    @property
    def retries_denied(self) -> int:
        """Retries/re-runs refused by the shared retry budget."""
        return sum(r.retries_denied for r in self.records)

    @property
    def failed(self) -> int:
        """Apps that could not be completed (faults or lost devices)."""
        return sum(1 for r in self.records if r.failed)

    @property
    def migrations(self) -> int:
        """Total device-loss failovers survived."""
        return sum(r.migrations for r in self.records)

    @property
    def reexecuted_kernels(self) -> int:
        """Total kernels re-run because they were in flight at a loss."""
        return sum(r.reexecuted_kernels for r in self.records)

    def duplicate_ratio(self, total_kernels: int) -> float:
        """Duplicated kernels as a fraction of ``total_kernels``."""
        if total_kernels <= 0:
            return 0.0
        return self.duplicate_kernels / total_kernels

    @property
    def devices_lost(self) -> int:
        """Devices that fell off the bus during the run."""
        return sum(1 for d in self.devices if d.state == "lost")

    @property
    def recovery_time(self) -> float:
        """Worst loss-to-resumed latency across recoveries (seconds)."""
        if not self.recoveries:
            return 0.0
        return max(r["resumed"] - r["lost"] for r in self.recoveries)

    def per_device_goodput(self) -> Dict[int, float]:
        """device index -> completed apps per second of makespan."""
        return {d.index: d.goodput(self.makespan) for d in self.devices}

    def summary(self) -> str:
        """One-paragraph digest (duck-types ``HarnessResult.summary``)."""
        text = (
            f"{len(self.records)} apps on {len(self.devices)} devices "
            f"({self.devices_lost} lost): {self.completed} completed, "
            f"{self.failed} failed, {self.migrations} migrations, "
            f"{self.reexecuted_kernels} kernels re-executed; makespan "
            f"{self.makespan * 1e3:.2f} ms, energy {self.energy:.3f} J, "
            f"avg power {self.average_power:.1f} W"
        )
        if self.recoveries:
            text += f"; worst recovery {self.recovery_time * 1e3:.2f} ms"
        return text


def _fleet_fingerprint(
    apps: Sequence[KernelApp],
    fleet: FleetConfig,
    num_streams: int,
    memory_sync: bool,
    copy_policy: str,
    spec: Optional[DeviceSpec],
    power_interval: float,
    plan: FaultPlan,
    seed: int,
    deadlines: Optional[Dict[str, float]] = None,
) -> str:
    """Content hash of everything that determines the run's journal."""
    payload = {
        "apps": [[a.app_id, a.profile.name] for a in apps],
        "fleet": [
            fleet.num_devices,
            fleet.heartbeat_interval,
            fleet.detection_latency,
            fleet.detection_jitter,
            fleet.failover,
            fleet.checkpoint,
            fleet.max_attempts,
            fleet.placement,
            fleet.seed,
        ],
        "num_streams": num_streams,
        "memory_sync": memory_sync,
        "copy_policy": copy_policy,
        "spec": spec.name if spec is not None else None,
        "power_interval": power_interval,
        # HARNESS_CRASH is excluded on purpose: a crash (and the resume
        # that follows) does not change what the run computes, so a
        # crashed-and-resumed journal stays byte-identical to the journal
        # of the same run executed uninterrupted.
        "plan": [
            [f.kind.value, f.time, f.target, f.duration, f.factor,
             f.direction, f.device]
            for f in plan
            if f.kind.value != "harness_crash"
        ],
        "seed": seed,
    }
    if fleet.hedging is not None:
        # Key is absent (not None) with hedging off so fingerprints — and
        # therefore journals — of pre-gray runs stay byte-identical.
        h = fleet.hedging
        payload["hedging"] = [
            h.check_interval,
            h.straggler_score,
            h.min_samples,
            h.ema_alpha,
            h.window,
            h.min_remaining_kernels,
            h.budget_fraction,
            h.max_hedges_per_app,
        ]
    # Like "hedging": every containment key is absent — not None — when
    # its feature is off, so pre-cascade journals stay byte-identical.
    if fleet.topology is not None:
        t = fleet.topology
        payload["topology"] = [t.rails, t.switches, t.racks, t.shuffle_seed]
    if fleet.storm is not None:
        s = fleet.storm
        payload["storm"] = [s.max_inflight_per_device, s.pace_interval]
    if fleet.retry_budget is not None:
        b = fleet.retry_budget
        payload["retry_budget"] = [b.rate, b.burst, b.shared]
    if fleet.brownout is not None:
        bo = fleet.brownout
        payload["brownout"] = [
            bo.window,
            bo.floor,
            bo.trip_windows,
            bo.recover_windows,
            bo.max_level,
            bo.width_factor,
            list(bo.shed_types),
            bo.per_device_rate,
        ]
    if fleet.retry_backoff is not None:
        rb = fleet.retry_backoff
        payload["retry_backoff"] = [
            rb.max_attempts,
            rb.base_delay,
            rb.backoff,
            rb.jitter,
            rb.mode,
        ]
    if fleet.shed_unfinishable:
        payload["shed_unfinishable"] = True
    if deadlines:
        payload["deadlines"] = sorted(
            [app_id, float(t)] for app_id, t in deadlines.items()
        )
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha1(blob).hexdigest()


class FleetHarness:
    """Executes one schedule on a fleet of devices, with failover."""

    def __init__(
        self,
        apps: Sequence[KernelApp],
        fleet: Optional[FleetConfig] = None,
        *,
        num_streams: int = 4,
        memory_sync: bool = False,
        spec: Optional[DeviceSpec] = None,
        copy_policy: str = "interleave",
        power_interval: float = 15e-3,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        journal_path=None,
        resume: bool = False,
        telemetry=None,
        tracing=None,
        deadlines: Optional[Dict[str, float]] = None,
    ) -> None:
        if not apps:
            raise ValueError("empty schedule")
        if resume and journal_path is None:
            raise ValueError("resume=True requires a journal_path")
        self.apps = list(apps)
        #: Absolute SLO deadlines per app id (may cover a subset).
        #: Drives queue priority under storm control, deadline shedding
        #: (``shed_unfinishable``), and the late-completion re-run model.
        self.deadlines: Dict[str, float] = dict(deadlines or {})
        known = {a.app_id for a in apps}
        for app_id in self.deadlines:
            if app_id not in known:
                raise ValueError(f"deadline for unknown app {app_id!r}")
        self.fleet = fleet if fleet is not None else FleetConfig()
        self.num_streams = num_streams
        self.memory_sync = memory_sync
        self.spec = spec
        self.copy_policy = copy_policy
        self.power_interval = power_interval
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed
        self.journal_path = journal_path
        self.resume = resume
        self.telemetry = telemetry
        #: Optional repro.telemetry.Tracing: per-app causal traces with
        #: migration-stall / checkpoint / hedge spans.  None = untraced.
        self.tracing = tracing

    def run(self) -> FleetResult:
        """Build the fleet, run the schedule to completion, measure."""
        from ..integrity.fencing import FencedJournal, GenerationFence
        from ..serving.journal import JournalMismatchError, RunJournal

        fleet = self.fleet
        env = Environment()
        tracer = self.tracing.tracer if self.tracing is not None else None
        if tracer is not None:
            env.attach_tracer(tracer)
        registry = DeviceRegistry(
            env,
            fleet,
            num_streams=self.num_streams,
            memory_sync=self.memory_sync,
            spec=self.spec,
            copy_policy=self.copy_policy,
            power_interval=self.power_interval,
            plan=self.plan,
        )
        store = CheckpointStore()

        journal = None
        recovered = 0
        if self.journal_path is not None:
            journal = RunJournal(self.journal_path)
            fingerprint = _fleet_fingerprint(
                self.apps,
                fleet,
                self.num_streams,
                self.memory_sync,
                self.copy_policy,
                registry.spec,
                self.power_interval,
                self.plan,
                self.seed,
                self.deadlines,
            )
            recovered = journal.begin(fingerprint, resume=self.resume)

        # All fleet journaling goes through the fence: checkpoint writes
        # present their bind-time token, coordinator/terminal records pass
        # tokenless (they are legitimate after a loss).
        fence = GenerationFence()
        fenced = FencedJournal(journal, fence) if journal is not None else None
        coordinator = FailoverCoordinator(
            env, registry, fleet, store, journal=fenced, fence=fence,
            deadlines=self.deadlines,
        )
        deadline_of = self.deadlines

        # Shared retry budget: one token bucket gating supervisor-style
        # fault retries, deadline re-runs *and* hedge launches.
        budget: Optional[RetryBudget] = None
        if fleet.retry_budget is not None:
            budget = RetryBudget(fleet.retry_budget, lambda: env.now)

        # Gray-failure mitigation is built only when configured: with
        # ``hedging=None`` no detector exists, no observation callbacks
        # fire, no scan process runs — results stay byte-identical.
        detector = None
        hedges: Optional[HedgeManager] = None
        if fleet.hedging is not None:
            from ..resilience.gray import StragglerDetector

            hcfg = fleet.hedging
            detector = StragglerDetector(
                fleet.num_devices,
                ema_alpha=hcfg.ema_alpha,
                window=hcfg.window,
                min_samples=hcfg.min_samples,
                straggler_score=hcfg.straggler_score,
            )
            hedges = HedgeManager(
                env,
                registry,
                coordinator,
                store,
                fleet,
                detector,
                total_kernels={
                    a.app_id: a.profile.kernel_launches for a in self.apps
                },
                journal=fenced,
                fence=fence,
                budget=budget,
            )

        # Metastability probe + brownout ladder: built only when
        # configured, like hedging — otherwise no process, no gates,
        # byte-identical results.
        probe: Optional[MetastabilityProbe] = None
        width_gates: Optional[Dict[int, ConcurrencyLimiter]] = None
        if fleet.brownout is not None:
            width_gates = {
                d.index: ConcurrencyLimiter(
                    env, self.num_streams, name=f"width-dev{d.index}"
                )
                for d in registry
            }

            def on_brownout(level: int, old: int) -> None:
                # Level >= 1: narrow per-device admission width so running
                # attempts stop time-sharing with the recovery backlog,
                # and stand the hedge scanner down (speculative duplicates
                # are the last thing an overloaded fleet needs).
                if level >= 1:
                    width = max(
                        1,
                        int(self.num_streams * fleet.brownout.width_factor),
                    )
                else:
                    width = self.num_streams
                for gate in width_gates.values():
                    gate.set_limit(width)
                if hedges is not None:
                    hedges.suspended = level >= 1

            probe = MetastabilityProbe(
                env,
                fleet.brownout,
                lambda: len(registry.healthy()),
                journal=fenced,
                on_level=on_brownout,
            )

        monitor = HealthMonitor(
            env,
            registry,
            interval=fleet.heartbeat_interval,
            detection_latency=fleet.detection_latency,
            detection_jitter=fleet.detection_jitter,
            seed=fleet.seed,
            on_lost=coordinator.device_detected_lost,
            detector=detector,
        )

        # The first planned harness crash kills the run at its arm time —
        # unless we are resuming past it.
        crash_at: Optional[float] = None
        crashes = self.plan.crash_times()
        if crashes and not self.resume:
            crash_at = crashes[0]

        records: List[AppRecord] = []
        spec = registry.spec

        telemetry = self.telemetry
        if telemetry is not None:
            from ..telemetry.probes import (
                instrument_environment,
                instrument_failover,
                instrument_fleet_device,
                instrument_health_monitor,
                instrument_hedging,
                instrument_integrity,
                instrument_records,
            )

            telemetry.attach(env)
            instrument_environment(telemetry, env)
            for fdev in registry:
                instrument_fleet_device(telemetry, fdev)
            instrument_health_monitor(telemetry, monitor)
            instrument_failover(telemetry, coordinator)
            instrument_records(telemetry, records)
            instrument_integrity(telemetry, None, fence=fence, journal=journal)
            if hedges is not None:
                instrument_hedging(telemetry, hedges, detector)
            if (
                probe is not None
                or coordinator.storm is not None
                or budget is not None
            ):
                from ..telemetry.probes import instrument_cascade

                instrument_cascade(
                    telemetry,
                    probe=probe,
                    storm=coordinator.storm,
                    budget=budget,
                )

        def bind(thread: FleetAppThread, fdev) -> None:
            # (Re-)binding takes a fresh fencing token; snapshots carry
            # its generation so stale post-failover writes are rejected.
            thread.bind(fdev)
            thread.fence_token = fence.token(fdev.index)
            thread.checkpoint.generation = thread.fence_token.generation

        # Per-app high-water mark of checkpointed kernels: the probe is
        # fed only *new* progress, and only while the app can still meet
        # its deadline — work re-executed for doomed attempts is retry
        # amplification, not goodput.
        progress_seen: Dict[str, int] = {}

        def note_progress(thread: FleetAppThread) -> None:
            if probe is None:
                return
            app_id = thread.app.app_id
            completed = thread.checkpoint.completed_kernels
            seen = progress_seen.get(app_id, 0)
            if completed > seen:
                deadline = deadline_of.get(app_id)
                if deadline is None or env.now <= deadline:
                    probe.note_progress(completed - seen)
                progress_seen[app_id] = completed

        def on_checkpoint(thread: FleetAppThread) -> None:
            app_id = thread.app.app_id
            note_progress(thread)
            if tracer is not None:
                ctx = getattr(thread, "trace_ctx", None)
                if ctx is not None:
                    tracer.instant(
                        ctx, "checkpoint", "checkpoint", env.now,
                        kernels=thread.checkpoint.completed_kernels,
                    )
            # A migrant that reached a phase boundary on its new device
            # is warmed up: its recovery slot stops gating the queue.
            coordinator.note_warmed(app_id)
            if fleet.checkpoint:
                snapshot = dataclasses.replace(thread.checkpoint)
                store.save(snapshot)
                if fenced is not None:
                    fenced.record(snapshot.as_entry(), token=thread.fence_token)
            if fleet.shed_unfinishable and unfinishable(
                env.now, deadline_of.get(app_id)
            ):
                # Deadline propagation: the attempt cannot produce useful
                # output anymore, so stop burning capacity on it.
                raise _ShedWork()

        def adopt_win(record: AppRecord, win: HedgeWin) -> None:
            # The replica's result becomes the app's result; its measured
            # events join the record so all executed work stays visible.
            record.outcome = "completed"
            record.complete_time = win.time
            record.device_index = win.device
            record.stream_index = win.stream
            record.hedge_wins += 1
            record.duplicate_kernels += win.duplicates
            record.kernels.extend(win.kernels)
            record.transfers.extend(win.transfers)

        def drive(thread: FleetAppThread, record: AppRecord):
            app_id = thread.app.app_id
            trace_ctx = getattr(thread, "trace_ctx", None)
            traced = tracer is not None and trace_ctx is not None
            backoff_rng = (
                app_rng(self.seed, app_id)
                if fleet.retry_backoff is not None
                else None
            )
            fault_failures = 0
            attempts = 0
            pending_reexec: Optional[int] = None

            def terminal(outcome: str) -> None:
                record.failed = outcome != "completed"
                record.outcome = outcome
                record.complete_time = env.now

            while True:
                acquire_from = env.now
                fdev = yield from coordinator.acquire_device(app_id)
                if traced and env.now > acquire_from:
                    # Parked waiting for a surviving device: the failover/
                    # re-placement stall the critical path should show.
                    tracer.record(
                        trace_ctx, "migration.stall", "migration-stall",
                        acquire_from, env.now, attempt=attempts + 1,
                    )
                if hedges is not None:
                    # A replica may have finished while this driver was
                    # parked mid-failover: adopt its win instead of
                    # re-running from the checkpoint.
                    win = hedges.claim_win(app_id)
                    if win is not None:
                        adopt_win(record, win)
                        break
                if fdev is None:
                    terminal("device-lost")
                    break
                deadline = deadline_of.get(app_id)
                if fleet.shed_unfinishable and unfinishable(env.now, deadline):
                    # Deadline propagation at admission: do not start
                    # (or restart) work that can no longer finish.
                    terminal("shed-deadline")
                    break
                if probe is not None and probe.shed_class(record.type_name):
                    # Level-2 brownout: low-priority classes are dropped
                    # at their next admission point.
                    terminal("shed-brownout")
                    break
                if pending_reexec is not None:
                    record.migrations += 1
                    record.reexecuted_kernels += pending_reexec
                    pending_reexec = None
                bind(thread, fdev)
                attempts += 1
                record.attempts = attempts
                gate = (
                    width_gates.get(fdev.index)
                    if width_gates is not None
                    else None
                )
                holding = False
                try:
                    if gate is not None:
                        gate_from = env.now
                        yield from gate.acquire()
                        holding = True
                        if traced and env.now > gate_from:
                            tracer.record_leaf(
                                trace_ctx, "brownout.gate",
                                "admission-limiter", gate_from, env.now,
                            )
                    yield from thread.run_attempt()
                except _ShedWork:
                    terminal("shed-deadline")
                    break
                except Interrupt as exc:
                    cause = exc.cause
                    if isinstance(cause, HedgeWin):
                        adopt_win(record, cause)
                        break
                    if not isinstance(cause, DeviceLost):
                        raise
                    pending_reexec = thread.note_device_lost(cause)
                    if not fleet.checkpoint:
                        pending_reexec += thread.restart_from_scratch()
                    continue
                except FaultError:
                    fault_failures += 1
                    record.faults_detected += 1
                    if fault_failures >= fleet.max_attempts:
                        terminal("failed")
                        break
                    if fleet.shed_unfinishable and unfinishable(
                        env.now, deadline
                    ):
                        terminal("shed-deadline")
                        break
                    if budget is not None and not budget.try_spend(
                        record.type_name, env.now
                    ):
                        # The attempt cap would allow a retry, but the
                        # shared budget is empty: shed, don't amplify.
                        record.retries_denied += 1
                        terminal("retry-budget")
                        break
                    record.retries += 1
                    thread.reset_attempt()
                    if not fleet.checkpoint:
                        thread.restart_from_scratch()
                    if backoff_rng is not None:
                        delay = fleet.retry_backoff.delay(
                            fault_failures, backoff_rng
                        )
                        if delay > 0:
                            backoff_from = env.now
                            yield env.timeout(delay)
                            if traced:
                                tracer.record(
                                    trace_ctx, "retry.backoff",
                                    "retry-backoff", backoff_from, env.now,
                                    attempt=attempts,
                                )
                    continue
                finally:
                    if holding:
                        gate.release()
                # The attempt finished cleanly — but did it finish in
                # time?  A late completion is worthless to its client.
                if deadline is not None and env.now > deadline:
                    if fleet.shed_unfinishable or attempts >= fleet.max_attempts:
                        terminal("deadline-missed")
                        break
                    if budget is not None and not budget.try_spend(
                        record.type_name, env.now
                    ):
                        record.retries_denied += 1
                        terminal("deadline-missed")
                        break
                    # Uncontained client behaviour: the response arrived
                    # too late, so the whole request is re-submitted from
                    # scratch — the deadline-driven retry storm that
                    # containment exists to break.
                    record.retries += 1
                    thread.reset_attempt()
                    record.reexecuted_kernels += thread.restart_from_scratch()
                    continue
                record.outcome = "completed"
                break
            coordinator.note_warmed(app_id)
            if hedges is not None:
                # Terminal either way: a still-racing replica stands down.
                hedges.primary_terminal(app_id)
            coordinator.note_done(app_id)
            if fenced is not None:
                # Tokenless on purpose: a "device-lost" terminal outcome
                # is legitimately written after the generation advanced.
                fenced.record(
                    {
                        "event": "app",
                        "app": app_id,
                        "outcome": record.outcome,
                        "device": record.device_index,
                        "migrations": record.migrations,
                        "reexec": record.reexecuted_kernels,
                        "complete": record.complete_time,
                    }
                )

        #: launch_index -> root SpanContext for every traced app.
        trace_ctxs: Dict[int, object] = {}

        def parent():
            threads: List[FleetAppThread] = []
            for launch_index, app in enumerate(self.apps):
                record = AppRecord(
                    app_id=app.app_id,
                    type_name=app.profile.name,
                    instance=app.instance,
                    stream_index=-1,
                    launch_index=launch_index,
                )
                if app.app_id in deadline_of:
                    record.slo_deadline = deadline_of[app.app_id]
                records.append(record)
                thread = FleetAppThread(
                    env, app, record,
                    checkpoint=_fresh_checkpoint(app.app_id),
                    on_checkpoint=on_checkpoint,
                )
                thread.detector = detector
                fdev = coordinator.register(thread)
                bind(thread, fdev)
                threads.append(thread)
                if tracer is not None:
                    thread.trace_ctx = tracer.start_trace(
                        record.app_id, env.now,
                        type=record.type_name, index=launch_index,
                    )
                    trace_ctxs[launch_index] = thread.trace_ctx
                prepare_from = env.now
                yield from thread.prepare()
                if tracer is not None and env.now > prepare_from:
                    tracer.record_leaf(
                        thread.trace_ctx, "host.prepare", "prepare",
                        prepare_from, env.now,
                    )

            registry.start()
            monitor.start()
            if hedges is not None:
                hedges.start()
            if coordinator.storm is not None:
                coordinator.storm.start()
            if probe is not None:
                probe.start()
            if telemetry is not None:
                telemetry.start()
            children = []
            for thread, record in zip(threads, records):
                yield env.timeout(spec.host.thread_spawn_cost)
                record.spawn_time = env.now
                proc = env.process(
                    drive(thread, record),
                    name=f"fleet-drive-{thread.app.app_id}",
                )
                coordinator.register_proc(thread.app.app_id, proc)
                children.append(proc)
            if children:
                yield AllOf(env, children)
            if hedges is not None:
                hedges.stop()
            if coordinator.storm is not None:
                coordinator.storm.stop()
            if probe is not None:
                probe.stop()
            monitor.stop()
            registry.stop()
            if telemetry is not None:
                telemetry.stop()
            for thread in threads:
                yield from thread.cleanup()
            if hedges is not None:
                yield from hedges.cleanup_replicas()

        def crash_body():
            yield env.timeout(crash_at)
            raise HarnessCrash(env.now)

        done = env.process(parent(), name="fleet-parent")
        if crash_at is not None:
            env.process(crash_body(), name="fleet-crash")
        try:
            env.run(until=done)
        except HarnessCrash as crash:
            if journal is not None:
                journal.mark_crash(crash.time)
                journal.close()
            raise
        env.run()  # settle same-time trailing events
        if telemetry is not None:
            telemetry.finalize()

        if journal is not None:
            if journal.pending:
                raise JournalMismatchError(
                    f"resumed run settled only "
                    f"{journal.verified}/{journal.recovered} journaled "
                    "entries; the journal belongs to a longer run"
                )
            journal.close()

        if tracer is not None:
            for record in records:
                ctx = trace_ctxs.get(record.launch_index)
                if ctx is not None:
                    tracer.end_trace(
                        ctx, record.complete_time, outcome=record.outcome
                    )
            if hedges is not None:
                self._trace_hedges(tracer, trace_ctxs, records, hedges)

        span = makespan(records)
        t0 = min(r.spawn_time for r in records)
        t1 = max(r.complete_time for r in records)
        summaries: List[DeviceSummary] = []
        total_energy = 0.0
        peak = 0.0
        for device in registry:
            energy = device.energy_between(t0, t1)
            total_energy += energy
            peak = max(peak, device.monitor.peak_power())
            summaries.append(
                DeviceSummary(
                    index=device.index,
                    state=device.state.value,
                    loss_time=device.loss_time,
                    detected_time=device.detected_time,
                    apps_completed=sum(
                        1
                        for r in records
                        if not r.failed and r.device_index == device.index
                    ),
                    energy=energy,
                    peak_power=device.monitor.peak_power(),
                    domain=(
                        registry.topology.label(device.index)
                        if registry.topology is not None
                        else None
                    ),
                )
            )
        for recovery in coordinator.recoveries:
            recovery["reexecuted_kernels"] = sum(
                r.reexecuted_kernels
                for r in records
                if r.app_id in recovery["apps"]
            )
        return FleetResult(
            fleet=fleet,
            records=records,
            makespan=span,
            total_time=env.now,
            energy=total_energy,
            average_power=total_energy / span if span > 0 else 0.0,
            peak_power=peak,
            devices=summaries,
            health_events=monitor.events,
            recoveries=coordinator.recoveries,
            checkpoints=store.snapshots,
            recovered_entries=recovered,
            resumed=self.resume,
            fence_advances=fence.advances,
            stale_writes_rejected=coordinator.stale_writes_rejected,
            hedges_launched=hedges.hedges_launched if hedges else 0,
            hedge_wins=hedges.hedge_wins if hedges else 0,
            duplicate_kernels=hedges.duplicate_kernels if hedges else 0,
            hedge_events=list(hedges.events) if hedges else [],
            storm_queued=(
                coordinator.storm.queued_total if coordinator.storm else 0
            ),
            storm_released=(
                coordinator.storm.released_total if coordinator.storm else 0
            ),
            storm_failed=(
                coordinator.storm.failed_total if coordinator.storm else 0
            ),
            storm_peak_depth=(
                coordinator.storm.peak_depth if coordinator.storm else 0
            ),
            retry_budget_granted=budget.granted_total if budget else 0,
            retry_budget_denied=budget.denied_total if budget else 0,
            metastable_windows=probe.metastable_windows if probe else 0,
            brownout_level=probe.level if probe else 0,
            brownout_events=list(probe.events) if probe else [],
            goodput_windows=list(probe.windows) if probe else [],
            journal_file=(
                str(self.journal_path)
                if self.journal_path is not None
                else None
            ),
            telemetry=telemetry,
        )

    @staticmethod
    def _trace_hedges(tracer, trace_ctxs, records, hedges) -> None:
        """Convert the hedge manager's event log into trace spans.

        Each ``hedge`` / ``hedge-done`` pair becomes one ``hedge`` span
        on the primary app's trace (launch -> win/cancel); a launch with
        no terminal event (crashed run) becomes an instant.
        """
        ctx_of = {
            r.app_id: trace_ctxs.get(r.launch_index) for r in records
        }
        open_hedges = {}
        for event in hedges.events:
            ctx = ctx_of.get(event["app"])
            if ctx is None:
                continue
            key = (event["app"], event["replica"])
            if event["event"] == "hedge":
                open_hedges[key] = event
            elif event["event"] == "hedge-done" and key in open_hedges:
                launch = open_hedges.pop(key)
                tracer.record(
                    ctx, "hedge.replica", "hedge",
                    launch["t"], event["t"],
                    replica=event["replica"],
                    winner=event["winner"],
                    duplicates=event["dup"],
                )
        for key, launch in open_hedges.items():
            ctx = ctx_of.get(launch["app"])
            if ctx is not None:
                tracer.instant(
                    ctx, "hedge.launch", "hedge", launch["t"],
                    replica=launch["replica"],
                )


def _fresh_checkpoint(app_id: str):
    from .checkpoint import AppCheckpoint

    return AppCheckpoint(app_id=app_id)


def run_fleet(apps: Sequence[KernelApp], **kwargs) -> FleetResult:
    """One-call convenience wrapper over :class:`FleetHarness`."""
    return FleetHarness(apps, **kwargs).run()
