"""Fleet configuration: how many devices, how failure is detected, how
apps migrate.

:class:`FleetConfig` is frozen and hashable like every other configuration
object in the repository, so it can ride inside
:class:`~repro.core.runner.RunConfig` and participate in cache keys.
Everything defaults to the *safe* single-device behaviour; the fleet layer
only changes results when a config with ``num_devices > 1`` (or a plan with
device faults) is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FleetConfig", "PLACEMENT_POLICIES"]

#: App->device placement policies (mirroring the stream-assignment ones).
PLACEMENT_POLICIES = ("round-robin", "least-loaded")


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one multi-device fleet run.

    Attributes
    ----------
    num_devices:
        Number of simulated GPUs in the registry.
    heartbeat_interval:
        Health-monitor polling period (seconds).  Every tick the monitor
        reads each device's heartbeat (alive flag + board power).
    detection_latency:
        Base delay between a device loss and the monitor *declaring* it
        lost (missed-heartbeat budget, seconds).
    detection_jitter:
        Amplitude of the seeded per-device jitter added to
        ``detection_latency`` (uniform in ``[0, detection_jitter)``),
        modelling monitoring-path nondeterminism reproducibly.
    failover:
        When ``False`` a lost device's apps simply fail
        (``outcome == "device-lost"``) — the no-failover baseline the
        benchmarks compare against.
    checkpoint:
        Take :class:`~repro.fleet.checkpoint.AppCheckpoint` snapshots at
        phase boundaries (and journal them when a journal is attached).
        With checkpointing off a migrated app restarts from scratch.
    max_attempts:
        Retry budget per app for *fault* failures (device losses do not
        consume attempts; they are not the app's fault).
    placement:
        Initial/failover app->device placement policy.
    seed:
        Seed for the detection-jitter randomness.
    """

    num_devices: int = 2
    heartbeat_interval: float = 1e-3
    detection_latency: float = 2e-3
    detection_jitter: float = 0.5e-3
    failover: bool = True
    checkpoint: bool = True
    max_attempts: int = 3
    placement: str = "round-robin"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.detection_latency < 0:
            raise ValueError("detection_latency must be >= 0")
        if self.detection_jitter < 0:
            raise ValueError("detection_jitter must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
