"""Fleet configuration: how many devices, how failure is detected, how
apps migrate.

:class:`FleetConfig` is frozen and hashable like every other configuration
object in the repository, so it can ride inside
:class:`~repro.core.runner.RunConfig` and participate in cache keys.
Everything defaults to the *safe* single-device behaviour; the fleet layer
only changes results when a config with ``num_devices > 1`` (or a plan with
device faults) is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..resilience.budget import RetryBudgetConfig
from ..resilience.metastable import BrownoutConfig
from ..resilience.retry import RetryPolicy
from .topology import TopologyConfig

__all__ = [
    "FleetConfig",
    "HedgeConfig",
    "StormControlConfig",
    "PLACEMENT_POLICIES",
]

#: App->device placement policies (mirroring the stream-assignment ones).
PLACEMENT_POLICIES = ("round-robin", "least-loaded")


@dataclass(frozen=True)
class HedgeConfig:
    """Parameters of gray-failure mitigation (straggler detection + hedging).

    Attached to :class:`FleetConfig` as ``hedging``; ``None`` (the
    default) keeps the whole gray path off — no detector, no hedge
    manager, byte-identical results.

    Attributes
    ----------
    check_interval:
        How often the hedge manager scans running apps for straggler
        placement (simulated seconds).
    straggler_score:
        Devices whose :class:`~repro.resilience.gray.HealthScore` falls
        strictly below this are stragglers (graded, not binary).
    min_samples:
        Observations a device must accumulate before it can be
        classified (passed to the detector).
    ema_alpha / window:
        Detector EMA blend weight and p95 window (see
        :class:`~repro.resilience.gray.StragglerDetector`).
    min_remaining_kernels:
        Never hedge an app with less remaining work than this — a
        speculative replica must have enough runway to win.
    budget_fraction:
        Per-batch duplicate-work budget: hedges stop launching once the
        *worst-case* duplicated kernels (committed + this hedge's
        remaining work) would exceed this fraction of the batch's total
        kernel count.
    max_hedges_per_app:
        Speculative replicas one app may receive over the whole run.
    """

    check_interval: float = 1e-3
    straggler_score: float = 0.5
    min_samples: int = 4
    ema_alpha: float = 0.3
    window: int = 32
    min_remaining_kernels: int = 2
    budget_fraction: float = 0.15
    max_hedges_per_app: int = 1

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if not 0.0 < self.straggler_score <= 1.0:
            raise ValueError("straggler_score must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_remaining_kernels < 1:
            raise ValueError("min_remaining_kernels must be >= 1")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        if self.max_hedges_per_app < 1:
            raise ValueError("max_hedges_per_app must be >= 1")


@dataclass(frozen=True)
class StormControlConfig:
    """Pacing parameters for failover after a correlated loss.

    Without storm control the coordinator re-admits every app of a lost
    device the instant the loss is *detected* — fine for one device, but
    a whole fault domain dying dumps a quarter of the fleet's work onto
    the survivors in a single simulated instant: the failover storm that
    seeds a metastable collapse.  With a :class:`StormControlConfig`
    attached (``FleetConfig.storm``) migrations instead pass through a
    paced queue with capacity-aware admission.

    Attributes
    ----------
    max_inflight_per_device:
        Migration slots per surviving device: how many *migrating* apps
        (re-admitted but not yet running a full attempt) one survivor
        absorbs at a time.
    pace_interval:
        Queue drain period (simulated seconds).  Each tick re-admits as
        many queued apps as open slots allow, oldest deadline first.
    """

    max_inflight_per_device: int = 2
    pace_interval: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.max_inflight_per_device < 1:
            raise ValueError("max_inflight_per_device must be >= 1")
        if self.pace_interval <= 0:
            raise ValueError("pace_interval must be positive")


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one multi-device fleet run.

    Attributes
    ----------
    num_devices:
        Number of simulated GPUs in the registry.
    heartbeat_interval:
        Health-monitor polling period (seconds).  Every tick the monitor
        reads each device's heartbeat (alive flag + board power).
    detection_latency:
        Base delay between a device loss and the monitor *declaring* it
        lost (missed-heartbeat budget, seconds).
    detection_jitter:
        Amplitude of the seeded per-device jitter added to
        ``detection_latency`` (uniform in ``[0, detection_jitter)``),
        modelling monitoring-path nondeterminism reproducibly.
    failover:
        When ``False`` a lost device's apps simply fail
        (``outcome == "device-lost"``) — the no-failover baseline the
        benchmarks compare against.
    checkpoint:
        Take :class:`~repro.fleet.checkpoint.AppCheckpoint` snapshots at
        phase boundaries (and journal them when a journal is attached).
        With checkpointing off a migrated app restarts from scratch.
    max_attempts:
        Retry budget per app for *fault* failures (device losses do not
        consume attempts; they are not the app's fault).
    placement:
        Initial/failover app->device placement policy.
    seed:
        Seed for the detection-jitter randomness.
    hedging:
        Gray-failure mitigation parameters (:class:`HedgeConfig`), or
        ``None`` to disable straggler detection and hedged execution
        entirely (the default; results stay byte-identical to a build
        without the gray path).
    topology:
        Fault-domain shape (:class:`~repro.fleet.topology.TopologyConfig`)
        attached to the registry, or ``None`` for the historical
        flat fleet.  Pure bookkeeping until a plan targets a domain.
    storm:
        Failover-storm pacing (:class:`StormControlConfig`), or ``None``
        (default) for the historical immediate mass-migration.
    retry_budget:
        Per-class retry token bucket
        (:class:`~repro.resilience.budget.RetryBudgetConfig`) shared by
        fleet fault retries, deadline re-runs and hedge launches, or
        ``None`` for unbudgeted retries.
    brownout:
        Metastability detection + brownout ladder
        (:class:`~repro.resilience.metastable.BrownoutConfig`), or
        ``None`` for no probe.
    retry_backoff:
        Backoff applied by the fleet driver between fault retries
        (:class:`~repro.resilience.retry.RetryPolicy`), or ``None``
        (default) to retry immediately as every PR before this one did.
    shed_unfinishable:
        When ``True`` the driver sheds work that can no longer meet its
        deadline (``outcome == "shed-deadline"``) instead of running or
        retrying it.  Only meaningful when the run supplies deadlines.

    Every one of the six knobs above defaults *off*; a config that sets
    none of them produces byte-identical journals and results to the
    previous release.
    """

    num_devices: int = 2
    heartbeat_interval: float = 1e-3
    detection_latency: float = 2e-3
    detection_jitter: float = 0.5e-3
    failover: bool = True
    checkpoint: bool = True
    max_attempts: int = 3
    placement: str = "round-robin"
    seed: int = 0
    hedging: Optional[HedgeConfig] = None
    topology: Optional[TopologyConfig] = None
    storm: Optional[StormControlConfig] = None
    retry_budget: Optional[RetryBudgetConfig] = None
    brownout: Optional[BrownoutConfig] = None
    retry_backoff: Optional[RetryPolicy] = None
    shed_unfinishable: bool = False

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.detection_latency < 0:
            raise ValueError("detection_latency must be >= 0")
        if self.detection_jitter < 0:
            raise ValueError("detection_jitter must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
