"""Fault-domain topology: which devices share a power rail, PCIe switch
and rack.

The paper's failure model (and every fleet PR before this one) treats
device losses as independent, but real deployments lose *domains*: a
power rail browns out and takes its whole tray of boards with it, a PCIe
switch wedges and every device behind it disappears from the bus at once.
:class:`FleetTopology` gives the registry that structure, deterministically:

* devices are partitioned into ``rails`` power-rail domains, ``switches``
  PCIe-switch domains and ``racks`` rack domains (contiguous balanced
  blocks by default);
* with a ``shuffle_seed`` the device order is first permuted by a seeded
  draw, modelling the cabling randomness of a real install while staying
  byte-reproducible — the same seed always yields the same topology;
* :meth:`FleetTopology.members` hands a domain's device set to
  :meth:`~repro.resilience.faults.FaultPlan.correlated`, which arms a
  blast-radius fault (loss, power dropout or gray degradation) across
  every member at once.

The topology is pure bookkeeping: attaching one to a fleet changes no
simulated behaviour until a plan actually targets a domain.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TopologyConfig", "FleetTopology", "DOMAIN_LEVELS"]

#: The domain hierarchy, innermost (smallest blast radius) first.
DOMAIN_LEVELS = ("rail", "switch", "rack")


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the fleet's fault-domain hierarchy.

    Attributes
    ----------
    rails:
        Power-rail domains (the smallest blast radius — a rail dropout
        takes out ``num_devices / rails`` devices at once).
    switches:
        PCIe-switch domains.
    racks:
        Rack domains (the largest blast radius).
    shuffle_seed:
        ``None`` assigns devices to domains in contiguous index blocks;
        an integer first permutes the device order with a seeded draw, so
        domain membership is scrambled but reproducible.
    """

    rails: int = 1
    switches: int = 1
    racks: int = 1
    shuffle_seed: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("rails", "switches", "racks"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


class FleetTopology:
    """Seeded device -> (rail, switch, rack) assignment for one fleet."""

    def __init__(self, num_devices: int, config: TopologyConfig) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        counts = {
            "rail": config.rails,
            "switch": config.switches,
            "rack": config.racks,
        }
        for level, count in counts.items():
            if count > num_devices:
                raise ValueError(
                    f"{count} {level} domains cannot partition "
                    f"{num_devices} devices"
                )
        self.num_devices = num_devices
        self.config = config
        order = list(range(num_devices))
        if config.shuffle_seed is not None:
            rng = np.random.default_rng(
                [config.shuffle_seed, zlib.crc32(b"fleet-topology")]
            )
            order = [int(i) for i in rng.permutation(num_devices)]
        #: level -> device index -> domain id.
        self._domain: Dict[str, List[int]] = {}
        #: level -> domain id -> member device indices (ascending).
        self._members: Dict[str, Dict[int, Tuple[int, ...]]] = {}
        for level, count in counts.items():
            assign = [0] * num_devices
            members: Dict[int, List[int]] = {d: [] for d in range(count)}
            for position, device in enumerate(order):
                # Balanced contiguous blocks over the (possibly shuffled)
                # position order: domain sizes differ by at most one.
                domain = position * count // num_devices
                assign[device] = domain
                members[domain].append(device)
            self._domain[level] = assign
            self._members[level] = {
                d: tuple(sorted(devs)) for d, devs in members.items()
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return (
            f"<FleetTopology {self.num_devices} devices, "
            f"{cfg.rails} rails / {cfg.switches} switches / "
            f"{cfg.racks} racks>"
        )

    def domains(self, level: str) -> range:
        """Domain ids at ``level`` (``"rail"``/``"switch"``/``"rack"``)."""
        self._check_level(level)
        return range(len(self._members[level]))

    def domain_of(self, level: str, device: int) -> int:
        """The ``level`` domain that ``device`` belongs to."""
        self._check_level(level)
        return self._domain[level][device]

    def members(self, level: str, domain: int) -> Tuple[int, ...]:
        """Device indices inside one domain, ascending."""
        self._check_level(level)
        try:
            return self._members[level][domain]
        except KeyError:
            raise ValueError(
                f"no {level} domain {domain} "
                f"(have {len(self._members[level])})"
            ) from None

    def labels(self, device: int) -> Dict[str, int]:
        """``{"rail": r, "switch": s, "rack": k}`` for one device."""
        return {
            level: self._domain[level][device] for level in DOMAIN_LEVELS
        }

    def label(self, device: int) -> str:
        """Compact ``rail<r>/sw<s>/rack<k>`` tag for tables and journals."""
        lab = self.labels(device)
        return f"rail{lab['rail']}/sw{lab['switch']}/rack{lab['rack']}"

    @staticmethod
    def _check_level(level: str) -> None:
        if level not in DOMAIN_LEVELS:
            raise ValueError(
                f"unknown domain level {level!r}; "
                f"expected one of {DOMAIN_LEVELS}"
            )
