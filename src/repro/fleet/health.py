"""Health monitoring: heartbeats, seeded detection latency, classification.

The monitor is the fleet's *observability* path, deliberately separate from
ground truth: the registry knows the instant a device dies, but the system
only reacts when the monitor's missed-heartbeat budget runs out.  Every
``heartbeat_interval`` the monitor polls each device's heartbeat (liveness
flag + board power, the same signals a real fleet scrapes from NVML/DCGM)
and classifies it:

* **healthy** — alive, no throttle window open, not a straggler;
* **degraded** — alive but inside a planned ``DEVICE_THROTTLE`` window,
  *or* classified a straggler by the attached
  :class:`~repro.resilience.gray.StragglerDetector` (graded health score
  under threshold) — the gray-failure path heartbeats alone can't see;
* **lost** — heartbeats have been missing for at least
  ``detection_latency + jitter``; the coordinator is notified *once*, at
  the declaring tick, and failover begins.

The per-device jitter is drawn from a generator seeded with
``(seed, crc32("fleet-health"), device_index)`` so detection timing is
reproducible run-to-run and independent of everything else in the
simulation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from .registry import DeviceRegistry, DeviceState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.gray import HealthScore, StragglerDetector
    from ..sim.engine import Environment

__all__ = ["HealthEvent", "HealthMonitor"]


@dataclass(frozen=True)
class HealthEvent:
    """One observed state transition."""

    time: float
    device: int
    old_state: str
    new_state: str
    detail: str = ""


class HealthMonitor:
    """Polls device heartbeats and declares losses after a seeded delay."""

    def __init__(
        self,
        env: "Environment",
        registry: DeviceRegistry,
        *,
        interval: float = 1e-3,
        detection_latency: float = 2e-3,
        detection_jitter: float = 0.5e-3,
        seed: int = 0,
        on_lost: Optional[Callable[[int, float], None]] = None,
        detector: Optional["StragglerDetector"] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.env = env
        self.registry = registry
        self.interval = interval
        self.on_lost = on_lost
        #: Optional straggler detector; when attached, its graded score
        #: feeds the degraded/healthy classification alongside the
        #: plan-known throttle windows.  ``None`` keeps the monitor's
        #: pre-gray behaviour bit-for-bit.
        self.detector = detector
        self.events: List[HealthEvent] = []
        self.heartbeats_read: int = 0
        self.missed_heartbeats: Dict[int, int] = {}
        #: Per-device detection delay: base latency + seeded jitter.
        self.detect_delay: Dict[int, float] = {}
        for device in registry:
            rng = np.random.default_rng(
                [seed, zlib.crc32(b"fleet-health"), device.index]
            )
            jitter = (
                detection_jitter * float(rng.random())
                if detection_jitter > 0
                else 0.0
            )
            self.detect_delay[device.index] = detection_latency + jitter
        #: Last classification the monitor *observed* per device.
        self._observed: Dict[int, DeviceState] = {
            d.index: DeviceState.HEALTHY for d in registry
        }
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin polling (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._poll_loop(), name="fleet-health-monitor")

    def stop(self) -> None:
        """Stop polling after the next tick."""
        self._running = False

    def observed_state(self, index: int) -> DeviceState:
        """The monitor's current belief about one device."""
        return self._observed[index]

    def scores(self) -> Dict[int, "HealthScore"]:
        """Graded per-device health scores (empty with no detector)."""
        if self.detector is None:
            return {}
        return self.detector.scores()

    # -- polling -----------------------------------------------------------

    def _poll_loop(self):
        while self._running:
            yield self.env.timeout(self.interval)
            if not self._running:
                return
            now = self.env.now
            for device in self.registry:
                seen = self._observed[device.index]
                if seen is DeviceState.LOST:
                    continue  # terminal; nothing more to observe
                beat = device.heartbeat(now)
                self.heartbeats_read += 1
                if not beat["alive"]:
                    self.missed_heartbeats[device.index] = (
                        self.missed_heartbeats.get(device.index, 0) + 1
                    )
                    deadline = (
                        device.loss_time + self.detect_delay[device.index]
                    )
                    if now >= deadline:
                        self._transition(
                            device.index,
                            seen,
                            DeviceState.LOST,
                            f"no heartbeat since t={device.loss_time:.6g}s",
                        )
                        device.detected_time = now
                        if self.on_lost is not None:
                            self.on_lost(device.index, now)
                    continue
                throttled = device.throttled_at(now)
                straggling = (
                    self.detector is not None
                    and self.detector.is_straggler(device.index)
                )
                wanted = (
                    DeviceState.DEGRADED
                    if throttled or straggling
                    else DeviceState.HEALTHY
                )
                if wanted is not seen:
                    if wanted is DeviceState.DEGRADED:
                        detail = (
                            "throttle window"
                            if throttled
                            else self.detector.score(device.index).describe()
                        )
                    else:
                        detail = "degradation cleared"
                    self._transition(device.index, seen, wanted, detail)
                    # Observed degradation is also the registry's public
                    # state (the registry owns only the lost/alive truth).
                    device.state = wanted

    def _transition(
        self, index: int, old: DeviceState, new: DeviceState, detail: str
    ) -> None:
        self._observed[index] = new
        self.events.append(
            HealthEvent(
                time=self.env.now,
                device=index,
                old_state=old.value,
                new_state=new.value,
                detail=detail,
            )
        )
