"""Multi-device fleet layer: registry, health, checkpointed failover.

Runs the paper's Hyper-Q workloads across a *fleet* of simulated devices
and keeps them running through device loss:

* :mod:`~repro.fleet.registry` — N :class:`FleetDevice` instances (GPU +
  streams + synchronizer + power monitor + per-device fault injector) and
  their ground-truth lifecycle (``DEVICE_LOSS`` faults).
* :mod:`~repro.fleet.health` — heartbeat polling, seeded detection
  latency, healthy/degraded/lost classification.
* :mod:`~repro.fleet.checkpoint` — kernel-granularity
  :class:`AppCheckpoint` snapshots taken at phase boundaries.
* :mod:`~repro.fleet.coordinator` — drains a lost device and migrates its
  checkpointed apps onto healthy devices via the launch-order placement
  policies.
* :mod:`~repro.fleet.thread` / :mod:`~repro.fleet.harness` — the
  checkpointed app thread and the multi-device harness (with crash-safe
  journaling and deterministic resume).
* :mod:`~repro.fleet.hedging` — gray-failure mitigation: the
  :class:`HedgeManager` races speculative replicas (forked from the
  latest checkpoint) against apps stuck on straggler devices, under a
  per-batch duplicate-work budget, with fenced journaled decisions.
* :mod:`~repro.fleet.topology` — seeded fault-domain structure (power
  rail / PCIe switch / rack) for correlated blast-radius injection.
* :mod:`~repro.fleet.storm` — failover-storm control: the paced,
  capacity-aware :class:`MigrationQueue` replacing immediate mass
  migration after a correlated loss.

The whole layer is opt-in: nothing here is imported by the single-device
paper pipeline, so fleet-off runs stay byte-identical.
"""

from .checkpoint import AppCheckpoint, CheckpointStore
from .config import FleetConfig, HedgeConfig, StormControlConfig
from .coordinator import FailoverCoordinator, RecoveryEvent
from .harness import DeviceSummary, FleetHarness, FleetResult, run_fleet
from .health import HealthEvent, HealthMonitor
from .hedging import Hedge, HedgeCancelled, HedgeManager, HedgeWin
from .registry import DeviceRegistry, DeviceState, FleetDevice
from .storm import MigrationQueue
from .thread import FleetAppThread
from .topology import DOMAIN_LEVELS, FleetTopology, TopologyConfig

__all__ = [
    "AppCheckpoint",
    "CheckpointStore",
    "FleetConfig",
    "HedgeConfig",
    "StormControlConfig",
    "TopologyConfig",
    "FleetTopology",
    "DOMAIN_LEVELS",
    "MigrationQueue",
    "Hedge",
    "HedgeCancelled",
    "HedgeManager",
    "HedgeWin",
    "FailoverCoordinator",
    "RecoveryEvent",
    "DeviceSummary",
    "FleetHarness",
    "FleetResult",
    "run_fleet",
    "HealthEvent",
    "HealthMonitor",
    "DeviceRegistry",
    "DeviceState",
    "FleetDevice",
    "FleetAppThread",
]
