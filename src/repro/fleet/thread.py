"""The fleet-aware application thread: checkpointed, migratable execution.

:class:`FleetAppThread` plays the role :class:`~repro.framework.app_thread.
AppThread` plays in the single-device harness, with three additions:

* **completion tracking** — every enqueued command carries its in-phase
  sequence number and a completion callback; because a device stream is
  FIFO, callbacks extend a *contiguous completed prefix* in the app's
  :class:`~repro.fleet.checkpoint.AppCheckpoint` at kernel granularity.
  Completions arriving after the device was lost (phantom retirements of
  an abandoned device) are ignored.
* **phase-boundary snapshots** — after each phase the thread synchronizes
  the stream, surfaces any command fault, harvests metrics and durably
  snapshots the checkpoint (journaled by the harness when a journal is
  attached).
* **re-binding** — an attempt may start on a different device than the
  previous one: device memory is re-allocated there and the checkpoint's
  cumulative HtoD payload is re-uploaded in one burst before execution
  resumes from the checkpointed phase/command indices.  Only commands
  that *started* before the loss and never completed are re-executed —
  stream FIFO order bounds that to at most one in-flight kernel per
  migration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..framework.app_thread import AppContext
from ..framework.kernel import (
    HostComputePhase,
    KernelApp,
    KernelPhase,
    SyncPhase,
    TransferPhase,
)
from ..framework.metrics import AppRecord, KernelEvent, TransferEvent
from ..gpu.commands import CopyDirection
from ..sim.events import AllOf
from .checkpoint import AppCheckpoint
from .registry import FleetDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment

__all__ = ["FleetAppThread"]

#: Buffer name of the migration re-upload transfer.
RESTORE_BUFFER = "checkpoint-restore"


class FleetAppThread:
    """One application's host thread in a multi-device fleet."""

    def __init__(
        self,
        env: "Environment",
        app: KernelApp,
        record: AppRecord,
        checkpoint: AppCheckpoint,
        on_checkpoint: Optional[Callable[["FleetAppThread"], None]] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.record = record
        self.checkpoint = checkpoint
        self.on_checkpoint = on_checkpoint
        self.fdev: Optional[FleetDevice] = None
        self.stream = None
        #: Bind-time fencing token (set by the harness; see
        #: :mod:`repro.integrity.fencing`).  Checkpoint writes present it
        #: so post-failover stale writes are rejected, not interleaved.
        self.fence_token = None
        #: Device index the app's device allocations currently live on;
        #: ``None`` forces (re-)allocation at the next attempt.
        self.bound_device: Optional[int] = None
        #: Optional :class:`~repro.resilience.gray.StragglerDetector`
        #: fed a latency-stretch observation per completed command (set
        #: by the harness when gray-failure mitigation is enabled).
        self.detector = None
        # Bound per-device observers (see StragglerDetector.kernel_
        # observer), created lazily per binding and dropped on re-bind.
        self._kernel_observe = None
        self._dma_observe = None
        self.ctx = AppContext(
            env=env,
            device=None,
            stream=None,
            host_spec=None,
            app_id=app.app_id,
        )

    # -- binding -----------------------------------------------------------

    def bind(self, fdev: FleetDevice) -> None:
        """Point the thread at a (possibly new) fleet device."""
        self.fdev = fdev
        self.ctx.device = fdev.gpu
        self.ctx.host_spec = fdev.gpu.spec.host
        self._kernel_observe = None
        self._dma_observe = None

    # -- parent-thread phases ----------------------------------------------

    def prepare(self):
        """Host + initial device allocation (parent thread, up front)."""
        yield from self.app.allocate_host_memory(self.ctx)
        yield from self.app.allocate_device_memory(self.ctx)
        self.bound_device = self.fdev.index
        yield from self.app.initialize_host_memory(self.ctx)

    def cleanup(self):
        """Free memory after the run (parent thread).

        Device buffers on a lost device are unreachable — ``cudaFree``
        against a fallen device would just error — so they are dropped
        without device bookkeeping.
        """
        ctx = self.ctx
        if self.bound_device is None or (
            self.fdev is not None and self.fdev.lost
        ):
            ctx.device_allocations.clear()
        else:
            yield from self.app.free_device_memory(ctx)
        yield from self.app.free_host_memory(ctx)

    # -- the attempt body --------------------------------------------------

    def run_attempt(self):
        """Run (or resume) the GPU section on the currently bound device.

        Raises :class:`~repro.sim.errors.FaultError` when a command of
        this attempt failed, or lets the coordinator's
        ``Interrupt(DeviceLost)`` propagate when the device dies
        mid-attempt.
        """
        env = self.env
        app = self.app
        ctx = self.ctx
        record = self.record
        ckpt = self.checkpoint
        fdev = self.fdev

        stream = fdev.manager.acquire(app.app_id)
        self.stream = stream
        ctx.stream = stream.device_stream
        record.stream_index = stream.index
        record.device_index = fdev.index
        ckpt.device_index = fdev.index
        ckpt.stream_index = stream.index

        lock_request = yield from stream.occupy(app.app_id)
        if record.gpu_start == 0.0:
            record.gpu_start = env.now
        try:
            yield from self._ensure_device_state()
            phases = app.profile.phases
            while ckpt.phase_index < len(phases):
                phase = phases[ckpt.phase_index]
                yield from self._run_phase(phase)
                # Phase boundary: quiesce, surface faults, snapshot.
                yield ctx.stream.synchronize_event()
                self._check_faults()
                self._harvest_counted()
                ckpt.phase_index += 1
                ckpt.copy_index = 0
                ckpt.kernel_index = 0
                ckpt.time = env.now
                if self.on_checkpoint is not None:
                    self.on_checkpoint(self)
            # Final cudaStreamSynchronize (mirrors AppThread.run).
            yield ctx.stream.synchronize_event()
            self._check_faults()
            self._harvest_counted()
            record.complete_time = env.now
        finally:
            # A lost device's stream is abandoned, not vacated: every app
            # holding or waiting on it is being migrated off the device.
            if not fdev.lost:
                stream.vacate(app.app_id, lock_request)

    # -- failure bookkeeping ----------------------------------------------

    def note_device_lost(self, cause) -> int:
        """Account the loss and return the re-executed-kernel count.

        A kernel is *re-executed* iff it started on the lost device at or
        before the loss instant and never entered the completed prefix;
        FIFO streams make that at most one per migration.  Uncounted
        commands are dropped (their phantom completions are ignored) and
        the device binding is cleared so the next attempt re-allocates
        and restores.
        """
        loss_time = getattr(cause, "time", self.env.now)
        reexec = 0
        for cmd in self.ctx.kernel_commands:
            if (
                cmd.started.triggered
                and cmd.started.value <= loss_time
                and not getattr(cmd, "_fleet_counted", False)
            ):
                reexec += 1
        self._harvest_counted()
        self._clear_commands()
        self.bound_device = None
        return reexec

    def reset_attempt(self) -> None:
        """Drop one failed attempt's uncompleted commands (same device).

        The checkpointed completed prefix survives: the retry resumes
        from ``(phase_index, copy_index, kernel_index)``, not from
        scratch.
        """
        self._harvest_counted()
        self._clear_commands()

    def restart_from_scratch(self) -> int:
        """Forget all checkpointed progress (checkpointing disabled).

        Returns the number of completed kernels wiped so the driver can
        account the whole prefix as re-executed work.
        """
        self._clear_commands()
        ckpt = self.checkpoint
        wiped = ckpt.completed_kernels
        ckpt.phase_index = 0
        ckpt.copy_index = 0
        ckpt.kernel_index = 0
        ckpt.completed_copies = 0
        ckpt.completed_kernels = 0
        ckpt.restore_bytes = 0
        ckpt.time = 0.0
        self.record.transfers.clear()
        self.record.kernels.clear()
        return wiped

    def _clear_commands(self) -> None:
        ctx = self.ctx
        ctx.memcpy_commands.clear()
        ctx.kernel_commands.clear()
        ctx._new_transfers.clear()

    # -- device state ------------------------------------------------------

    def _ensure_device_state(self):
        """(Re-)allocate device memory and restore checkpointed state.

        No-op when the app is already bound to this device.  After a
        migration the checkpoint's cumulative completed HtoD payload is
        re-uploaded in one burst (the serialized restore stream), so the
        recovery cost is visible in the same transfer metrics as regular
        work.
        """
        ctx = self.ctx
        ckpt = self.checkpoint
        if self.bound_device == self.fdev.index:
            return
        ctx.device_allocations.clear()
        yield from self.app.allocate_device_memory(ctx)
        self.bound_device = self.fdev.index
        if ckpt.restore_bytes > 0:
            yield ctx.env.timeout(ctx.host_spec.api_call_overhead)
            cmd = ctx.stream.enqueue_memcpy(
                CopyDirection.HTOD,
                ckpt.restore_bytes,
                buffer=RESTORE_BUFFER,
                app_id=self.app.app_id,
            )
            self._watch_restore(cmd)
            ctx.note_transfer(cmd)
            ctx.drain_new_transfers()
            yield ctx.stream.synchronize_event()
            self._check_faults()

    # -- phase execution ---------------------------------------------------

    def _run_phase(self, phase):
        ctx = self.ctx
        env = self.env
        ckpt = self.checkpoint
        host = ctx.host_spec
        if isinstance(phase, TransferPhase):
            yield from self._run_transfer_phase(phase)
        elif isinstance(phase, KernelPhase):
            for seq, descriptor in enumerate(
                phase.descriptors[ckpt.kernel_index :],
                start=ckpt.kernel_index,
            ):
                yield env.timeout(
                    host.api_call_overhead + host.kernel_launch_overhead
                )
                cmd = ctx.stream.enqueue_kernel(
                    descriptor, app_id=self.app.app_id
                )
                self._watch_kernel(cmd, seq)
                ctx.note_kernel(cmd)
        elif isinstance(phase, SyncPhase):
            yield ctx.stream.synchronize_event()
        elif isinstance(phase, HostComputePhase):
            yield env.timeout(phase.duration)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown phase {phase!r}")

    def _run_transfer_phase(self, phase: TransferPhase):
        """One transfer phase, resumable, with the paper's optional mutex."""
        ctx = self.ctx
        ckpt = self.checkpoint
        buffers = phase.buffers[ckpt.copy_index :]
        if not buffers:
            return
        use_mutex = (
            self.fdev.synchronizer.enabled
            and phase.direction is CopyDirection.HTOD
            and phase.synchronized
        )
        if use_mutex:
            token = yield from self.fdev.synchronizer.acquire(self.app.app_id)
            try:
                yield from self._enqueue_copies(phase, buffers)
                pending = [c.done for c in ctx.drain_new_transfers()]
                if pending:
                    yield AllOf(self.env, pending)
            finally:
                self.fdev.synchronizer.release(self.app.app_id, token)
        else:
            yield from self._enqueue_copies(phase, buffers)
            ctx.drain_new_transfers()

    def _enqueue_copies(self, phase: TransferPhase, buffers):
        ctx = self.ctx
        start = self.checkpoint.copy_index
        for seq, buf in enumerate(buffers, start=start):
            yield ctx.env.timeout(ctx.host_spec.api_call_overhead)
            cmd = ctx.stream.enqueue_memcpy(
                phase.direction, buf.nbytes, buffer=buf.name,
                app_id=self.app.app_id,
            )
            self._watch_copy(cmd, seq, phase.direction)
            ctx.note_transfer(cmd)

    # -- completion tracking -----------------------------------------------

    def _watch_kernel(self, cmd, seq: int) -> None:
        cmd._fleet_seq = seq
        fdev = self.fdev
        ckpt = self.checkpoint
        # The observation hook runs once per completed kernel — bind a
        # per-device observer and the block duration now so the callback
        # does no repeated attribute chasing.
        observe = self._kernel_observe
        if observe is None and self.detector is not None:
            observe = self._kernel_observe = self.detector.kernel_observer(
                fdev.index
            )
        block_duration = cmd.descriptor.block_duration

        def note(
            _event,
            cmd=cmd,
            fdev=fdev,
            ckpt=ckpt,
            observe=observe,
            block_duration=block_duration,
        ):
            # Phantom completion on an abandoned device, a failed launch,
            # or an out-of-prefix completion (a failed command ahead of
            # this one broke the contiguous prefix): not progress.
            if fdev.lost or not cmd.done.ok:
                return
            if cmd._fleet_seq != ckpt.kernel_index:
                return
            ckpt.kernel_index += 1
            ckpt.completed_kernels += 1
            cmd._fleet_counted = True
            if observe is not None:
                # Latency stretch: wall time over the kernel's ideal
                # time at spec clocks (one block_duration per wave).
                ideal = (cmd.waves or 1) * block_duration
                if ideal > 0:
                    # _event is cmd.done itself; the prefix check above
                    # proves both events triggered, so read the raw
                    # slots instead of the guarded properties.
                    observe((_event._value - cmd.started._value) / ideal)

        cmd.done.callbacks.append(note)

    def _watch_copy(self, cmd, seq: int, direction: CopyDirection) -> None:
        cmd._fleet_seq = seq
        fdev = self.fdev
        ckpt = self.checkpoint
        observe = self._dma_observe
        if observe is None and self.detector is not None:
            observe = self._dma_observe = self.detector.dma_observer(
                fdev.index
            )
        # The ideal wire time depends only on direction and payload, both
        # fixed at enqueue: compute it once here, not per completion.
        wire = 0.0
        if observe is not None:
            spec = fdev.gpu.spec
            wire = (
                spec.dma_htod
                if direction is CopyDirection.HTOD
                else spec.dma_dtoh
            ).transfer_time(cmd.nbytes)

        def note(
            _event,
            cmd=cmd,
            fdev=fdev,
            ckpt=ckpt,
            direction=direction,
            observe=observe,
            wire=wire,
        ):
            if fdev.lost or not cmd.done.ok:
                return
            if cmd._fleet_seq != ckpt.copy_index:
                return
            ckpt.copy_index += 1
            ckpt.completed_copies += 1
            if direction is CopyDirection.HTOD:
                ckpt.restore_bytes += cmd.nbytes
            cmd._fleet_counted = True
            if observe is not None and wire > 0:
                observe((_event._value - cmd.started._value) / wire)

        cmd.done.callbacks.append(note)

    def _watch_restore(self, cmd) -> None:
        """The migration re-upload: harvested, but not profile progress."""
        fdev = self.fdev

        def note(_event, cmd=cmd, fdev=fdev):
            if fdev.lost or not cmd.done.ok:
                return
            cmd._fleet_counted = True

        cmd.done.callbacks.append(note)

    # -- fault surfacing / measurement -------------------------------------

    def _check_faults(self) -> None:
        """Raise the first recorded command failure of this attempt."""
        for cmd in self.ctx.kernel_commands:
            if cmd.done.triggered and not cmd.done.ok:
                raise cmd.done.value
        for cmd in self.ctx.memcpy_commands:
            if cmd.done.triggered and not cmd.done.ok:
                raise cmd.done.value

    def _harvest_counted(self) -> None:
        """Move counted (completed-prefix) commands into metric events."""
        record = self.record
        ctx = self.ctx
        keep_copies = []
        for cmd in ctx.memcpy_commands:
            if not getattr(cmd, "_fleet_counted", False):
                keep_copies.append(cmd)
                continue
            record.transfers.append(
                TransferEvent(
                    direction=cmd.direction,
                    nbytes=cmd.nbytes,
                    buffer=cmd.buffer,
                    enqueued=cmd.enqueue_time,
                    started=cmd.started.value,
                    completed=cmd.done.value,
                )
            )
        ctx.memcpy_commands[:] = keep_copies
        keep_kernels = []
        for cmd in ctx.kernel_commands:
            if not getattr(cmd, "_fleet_counted", False):
                keep_kernels.append(cmd)
                continue
            record.kernels.append(
                KernelEvent(
                    name=cmd.descriptor.name,
                    num_blocks=cmd.descriptor.num_blocks,
                    enqueued=cmd.enqueue_time,
                    started=cmd.started.value,
                    completed=cmd.done.value,
                    waves=cmd.waves,
                )
            )
        ctx.kernel_commands[:] = keep_kernels
