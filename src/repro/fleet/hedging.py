"""Deterministic hedged execution against gray-degraded devices.

A gray-failed device keeps answering heartbeats while running slow, so
the loss/failover machinery never fires — apps placed on it simply crawl.
The :class:`HedgeManager` closes that gap with *speculative replicas*
(the tail-at-scale "hedged request" idea applied to whole applications):

* every ``check_interval`` it scans the running apps in launch order; an
  app whose device the :class:`~repro.resilience.gray.StragglerDetector`
  classifies a straggler, and whose remaining work clears
  ``min_remaining_kernels``, is a hedge candidate;
* a candidate forks a **replica** from its latest durable
  :class:`~repro.fleet.checkpoint.AppCheckpoint`: a second
  :class:`~repro.fleet.thread.FleetAppThread` over the *same*
  :class:`~repro.framework.kernel.KernelApp`, bound to the
  healthiest non-straggler device, re-allocating device memory there and
  re-uploading the checkpoint's HtoD payload exactly like a failover
  migration;
* primary and replica race; the first to finish interrupts the other
  (cancel-on-first-complete).  A replica win is delivered to the primary
  driver as ``Interrupt(HedgeWin)``; a primary win cancels the replica
  with ``Interrupt(HedgeCancelled)``;
* duplicate work is bounded by a per-batch budget: a hedge only launches
  while the *worst case* duplicated kernels (already realized + the
  candidate's full remaining work) stay within ``budget_fraction`` of
  the batch's total kernel count;
* every decision is journaled through the run's fenced journal — the
  ``hedge`` record carries the replica's bind-time fencing token (so a
  hedge onto a device that is then lost cannot write stale checkpoints),
  the ``hedge-done`` record is tokenless (legitimate after any loss).

Everything is a deterministic function of simulation state: scans happen
on the simulated clock, candidates are visited in launch order, targets
break ties by lowest index, and replica retry jitter comes from
:func:`~repro.resilience.retry.replica_rng` — a stream disjoint from the
primaries' ``app_rng`` draws, so enabling hedging never perturbs any
other seeded draw and replay (resume) is byte-identical.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional

from ..framework.metrics import AppRecord
from ..resilience.retry import RetryPolicy, replica_rng
from ..sim.errors import DeviceLost, FaultError, Interrupt
from .checkpoint import AppCheckpoint
from .thread import FleetAppThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.gray import StragglerDetector
    from ..sim.engine import Environment
    from .checkpoint import CheckpointStore
    from .config import FleetConfig, HedgeConfig
    from .coordinator import FailoverCoordinator
    from .registry import DeviceRegistry

__all__ = ["HedgeWin", "HedgeCancelled", "Hedge", "HedgeManager"]


class HedgeWin:
    """Interrupt cause: the app's speculative replica finished first.

    Carries everything the primary driver needs to adopt the replica's
    result: terminal timestamp, winning device/stream, the realized
    duplicate-kernel count, and the replica's harvested metric events
    (merged into the app's record so the run's transfer/kernel accounting
    reflects all work that actually executed).
    """

    def __init__(
        self,
        app_id: str,
        time: float,
        device: int,
        stream: int,
        duplicates: int,
        kernels: list,
        transfers: list,
    ) -> None:
        self.app_id = app_id
        self.time = time
        self.device = device
        self.stream = stream
        self.duplicates = duplicates
        self.kernels = kernels
        self.transfers = transfers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HedgeWin {self.app_id} on dev{self.device} "
            f"at t={self.time:.6g}s>"
        )


class HedgeCancelled:
    """Interrupt cause: the primary finished first; the replica stands down."""

    def __init__(self, app_id: str, time: float) -> None:
        self.app_id = app_id
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HedgeCancelled {self.app_id} at t={self.time:.6g}s>"


@dataclasses.dataclass
class Hedge:
    """One speculative replica's lifecycle record."""

    app_id: str
    replica_idx: int          # 1-based, per app
    source: int               # straggler device the primary was on
    target: int               # device the replica was placed on
    launched: float           # simulation time of the hedge decision
    fork_kernels: int         # checkpointed completed kernels at fork
    remaining: int            # kernels left at fork (worst-case duplicates)
    thread: FleetAppThread
    proc: object = None
    done: bool = False
    winner: str = ""          # "replica" | "primary" | "abandoned"
    duplicates: int = 0       # realized duplicate kernels at settlement


class HedgeManager:
    """Scans for straggler-placed apps and races replicas against them."""

    def __init__(
        self,
        env: "Environment",
        registry: "DeviceRegistry",
        coordinator: "FailoverCoordinator",
        store: "CheckpointStore",
        fleet: "FleetConfig",
        detector: "StragglerDetector",
        *,
        total_kernels: Dict[str, int],
        journal=None,
        fence=None,
        budget=None,
    ) -> None:
        if fleet.hedging is None:
            raise ValueError("fleet config has no hedging section")
        self.env = env
        self.registry = registry
        self.coordinator = coordinator
        self.store = store
        self.fleet = fleet
        self.config: "HedgeConfig" = fleet.hedging
        self.detector = detector
        self.journal = journal
        self.fence = fence
        #: app_id -> total profile kernel launches (the work denominator).
        self.total_kernels = dict(total_kernels)
        self.batch_kernels = sum(self.total_kernels.values())
        #: Hedges currently racing, by app id.
        self.active: Dict[str, Hedge] = {}
        #: Every hedge ever launched, in decision order.
        self.all_hedges: List[Hedge] = []
        #: Journal-shaped decision log (kept even without a journal).
        self.events: List[dict] = []
        #: Replica wins the primary driver has not adopted yet (the
        #: primary was parked mid-failover when its replica finished).
        self._unclaimed: Dict[str, HedgeWin] = {}
        self.hedges_launched = 0
        self.hedge_wins = 0
        self.duplicate_kernels = 0
        #: Candidates skipped because the duplicate-work budget was spent.
        self.budget_denials = 0
        #: Candidates skipped because no healthy non-straggler target existed.
        self.no_target_denials = 0
        #: Shared per-class retry budget
        #: (:class:`~repro.resilience.budget.RetryBudget`) or ``None``.
        #: A hedge is duplicate work exactly like a retry, so launches
        #: spend from the same bucket supervisor retries do.
        self.retry_budget = budget
        #: Candidates skipped because the shared retry budget was empty.
        self.retry_budget_denials = 0
        #: Brownout suspension: at ladder level >= 1 the probe stands the
        #: scanner down — speculative duplicates are the last thing an
        #: overloaded fleet needs.
        self.suspended = False
        self._hedges_per_app: Dict[str, int] = {}
        #: Worst-case duplicated kernels committed so far: realized
        #: duplicates of settled hedges + full remaining work of active
        #: ones (an active replica may duplicate everything it re-runs).
        self._committed = 0
        self._running = False
        # Chain the registry's ground-truth loss hook so replicas on a
        # lost device are interrupted exactly like primaries are.  The
        # coordinator installed its own hook first (construction order).
        self._chained_down = registry.on_down
        registry.on_down = self._device_down

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic straggler scan (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._poll_loop(), name="hedge-manager")

    def stop(self) -> None:
        """Stop scanning after the next tick."""
        self._running = False

    @property
    def budget_kernels(self) -> int:
        """The batch's duplicate-work allowance, in kernels."""
        return int(self.config.budget_fraction * self.batch_kernels)

    # -- the scan ----------------------------------------------------------

    def _poll_loop(self):
        while self._running:
            yield self.env.timeout(self.config.check_interval)
            if not self._running:
                return
            self._scan()

    def _scan(self) -> None:
        if self.suspended:
            return
        now = self.env.now
        # Launch order (dict insertion order) keeps the scan deterministic.
        for app_id, thread in self.coordinator.threads.items():
            if self.coordinator.status.get(app_id) != "running":
                continue
            if app_id in self.active:
                continue
            if (
                self._hedges_per_app.get(app_id, 0)
                >= self.config.max_hedges_per_app
            ):
                continue
            fdev = thread.fdev
            if fdev is None or fdev.lost:
                continue
            if not self.detector.is_straggler(fdev.index):
                continue
            ckpt = self.store.get(app_id)
            completed = ckpt.completed_kernels if ckpt is not None else 0
            remaining = self.total_kernels.get(app_id, 0) - completed
            if remaining < self.config.min_remaining_kernels:
                continue
            if self._committed + remaining > self.budget_kernels:
                self.budget_denials += 1
                continue
            target = self._pick_target(fdev.index)
            if target is None:
                self.no_target_denials += 1
                continue
            if self.retry_budget is not None and not self.retry_budget.try_spend(
                thread.record.type_name, now
            ):
                self.retry_budget_denials += 1
                continue
            self._launch(app_id, thread, ckpt, fdev.index, target,
                         remaining, now)

    def _pick_target(self, source: int) -> Optional[int]:
        """Healthiest non-straggler device != source; lowest index wins ties."""
        best_score = None
        best_index = None
        for device in self.registry:
            if device.lost or device.index == source:
                continue
            if self.detector.is_straggler(device.index):
                continue
            score = self.detector.score(device.index).score
            if best_score is None or score > best_score + 1e-12:
                best_score = score
                best_index = device.index
        return best_index

    # -- launching ---------------------------------------------------------

    def _launch(
        self,
        app_id: str,
        primary: FleetAppThread,
        ckpt: Optional[AppCheckpoint],
        source: int,
        target: int,
        remaining: int,
        now: float,
    ) -> None:
        replica_idx = self._hedges_per_app.get(app_id, 0) + 1
        self._hedges_per_app[app_id] = replica_idx
        self.hedges_launched += 1
        self._committed += remaining
        primary.record.hedges += 1

        fork = (
            dataclasses.replace(ckpt)
            if ckpt is not None
            else AppCheckpoint(app_id=app_id)
        )
        # The replica gets its own record (never added to the run's
        # records list): run_attempt needs somewhere to write, and on a
        # win its harvested events are merged into the primary's record.
        shadow = AppRecord(
            app_id=app_id,
            type_name=primary.record.type_name,
            instance=primary.record.instance,
            stream_index=-1,
            launch_index=primary.record.launch_index,
        )
        rthread = FleetAppThread(
            self.env,
            primary.app,
            shadow,
            checkpoint=fork,
            on_checkpoint=self._replica_checkpoint,
        )
        rthread.detector = self.detector
        fdev = self.registry.devices[target]
        rthread.bind(fdev)
        token = self.fence.token(target) if self.fence is not None else None
        rthread.fence_token = token
        if token is not None:
            fork.generation = token.generation

        hedge = Hedge(
            app_id=app_id,
            replica_idx=replica_idx,
            source=source,
            target=target,
            launched=now,
            fork_kernels=fork.completed_kernels,
            remaining=remaining,
            thread=rthread,
        )
        self.active[app_id] = hedge
        self.all_hedges.append(hedge)

        entry = {
            "event": "hedge",
            "app": app_id,
            "replica": replica_idx,
            "from": source,
            "to": target,
            "kernels": fork.completed_kernels,
            "remaining": remaining,
            "t": now,
        }
        self.events.append(dict(entry))
        if self.journal is not None:
            self.journal.record(entry, token=token)

        hedge.proc = self.env.process(
            self._replica_body(hedge),
            name=f"hedge-{app_id}-r{replica_idx}",
        )

    # -- the replica driver ------------------------------------------------

    def _replica_body(self, hedge: Hedge):
        """Run the replica to completion, retrying faults, until cancelled."""
        rthread = hedge.thread
        policy = RetryPolicy(max_attempts=self.fleet.max_attempts)
        rng = replica_rng(self.fleet.seed, hedge.app_id, hedge.replica_idx)
        attempt = 0
        try:
            while True:
                attempt += 1
                try:
                    yield from rthread.run_attempt()
                    break
                except FaultError:
                    if not policy.allows_retry(attempt):
                        self._settle(hedge, "abandoned")
                        return
                    rthread.reset_attempt()
                    yield self.env.timeout(policy.delay(attempt, rng))
        except Interrupt as exc:
            cause = exc.cause
            winner = (
                "primary" if isinstance(cause, HedgeCancelled) else "abandoned"
            )
            self._settle(hedge, winner)
            return
        if hedge.done:
            return
        self._win(hedge)

    def _replica_checkpoint(self, rthread: FleetAppThread) -> None:
        """Journal a replica phase-boundary snapshot (fenced, not stored).

        The checkpoint *store* keeps the primary's lineage only — a
        replica that loses must not have moved the app's durable restart
        point — but the snapshot still goes to the journal under the
        replica's bind-time token, so replay sees the same write order
        and a replica on a since-lost device is fenced off.
        """
        if self.journal is None:
            return
        snapshot = dataclasses.replace(rthread.checkpoint)
        self.journal.record(snapshot.as_entry(), token=rthread.fence_token)

    # -- settlement --------------------------------------------------------

    def _win(self, hedge: Hedge) -> None:
        """The replica finished first: interrupt (or park a win for) the
        primary and account realized duplicates."""
        primary = self.coordinator.threads[hedge.app_id]
        duplicates = max(
            0, primary.checkpoint.completed_kernels - hedge.fork_kernels
        )
        self._close(hedge, "replica", duplicates)
        self.hedge_wins += 1

        rthread = hedge.thread
        win = HedgeWin(
            app_id=hedge.app_id,
            time=self.env.now,
            device=hedge.target,
            stream=rthread.record.stream_index,
            duplicates=duplicates,
            kernels=list(rthread.record.kernels),
            transfers=list(rthread.record.transfers),
        )
        proc = self.coordinator.procs.get(hedge.app_id)
        if (
            proc is not None
            and proc.is_alive
            and self.coordinator.status.get(hedge.app_id) == "running"
        ):
            proc.interrupt(win)
        else:
            # Primary is parked mid-failover; its driver adopts the win
            # via claim_win when it next wakes.
            self._unclaimed[hedge.app_id] = win

    def _settle(self, hedge: Hedge, winner: str) -> None:
        """The replica lost (cancelled, device lost, or out of retries)."""
        if hedge.done:
            return
        duplicates = max(
            0, hedge.thread.checkpoint.completed_kernels - hedge.fork_kernels
        )
        self._close(hedge, winner, duplicates)
        # On a primary win the wasted work is the replica's; attribute it
        # to the app's record (the win path accounts via HedgeWin).
        primary = self.coordinator.threads.get(hedge.app_id)
        if primary is not None:
            primary.record.duplicate_kernels += duplicates

    def _close(self, hedge: Hedge, winner: str, duplicates: int) -> None:
        hedge.done = True
        hedge.winner = winner
        hedge.duplicates = duplicates
        self.active.pop(hedge.app_id, None)
        # Worst-case commitment becomes the realized duplicate count.
        self._committed += duplicates - hedge.remaining
        self.duplicate_kernels += duplicates
        entry = {
            "event": "hedge-done",
            "app": hedge.app_id,
            "replica": hedge.replica_idx,
            "winner": winner,
            "dup": duplicates,
            "t": self.env.now,
        }
        self.events.append(dict(entry))
        if self.journal is not None:
            # Tokenless on purpose: the outcome record is legitimate even
            # after the replica's (or primary's) device generation moved.
            self.journal.record(entry)

    # -- primary-side hooks ------------------------------------------------

    def claim_win(self, app_id: str) -> Optional[HedgeWin]:
        """A parked primary driver collects a replica win it missed."""
        return self._unclaimed.pop(app_id, None)

    def primary_terminal(self, app_id: str) -> None:
        """The primary reached a terminal state: cancel its replica."""
        hedge = self.active.get(app_id)
        if hedge is None:
            return
        proc = hedge.proc
        self._settle(hedge, "primary")
        if proc is not None and proc.is_alive:
            proc.interrupt(HedgeCancelled(app_id, self.env.now))

    def _device_down(self, index: int, now: float) -> None:
        """Ground-truth loss: interrupt replicas racing on the device."""
        if self._chained_down is not None:
            self._chained_down(index, now)
        for hedge in list(self.active.values()):
            if hedge.target != index:
                continue
            if hedge.proc is not None and hedge.proc.is_alive:
                hedge.proc.interrupt(DeviceLost(index, now))

    # -- teardown ----------------------------------------------------------

    def cleanup_replicas(self):
        """Free every replica's device memory (parent thread, end of run)."""
        for hedge in self.all_hedges:
            rthread = hedge.thread
            if (
                rthread.bound_device is not None
                and rthread.fdev is not None
                and not rthread.fdev.lost
            ):
                yield from rthread.app.free_device_memory(rthread.ctx)
            else:
                rthread.ctx.device_allocations.clear()
