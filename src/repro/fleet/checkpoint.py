"""Kernel-granularity application checkpoints.

An :class:`AppCheckpoint` records how far one application's GPU section has
*provably* progressed: the index of the next phase, the completed-command
prefix inside the current phase, and the cumulative HtoD payload whose
device-side effect must be re-uploaded if the app migrates to a fresh
device.  Progress counters advance from command *completion* callbacks
(kernel granularity), while :attr:`time` stamps the last durable snapshot —
taken at phase boundaries, after a ``cudaStreamSynchronize`` proved every
command of the phase landed.

Because a device stream executes one kernel at a time (FIFO), the gap
between the checkpoint and the loss instant is at most the one in-flight
kernel — which bounds re-executed work to one kernel per migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["AppCheckpoint", "CheckpointStore"]


@dataclass
class AppCheckpoint:
    """Restartable progress of one application's GPU section.

    Attributes
    ----------
    app_id:
        The application instance this checkpoint belongs to.
    device_index:
        Fleet device the app is (or was last) bound to.
    stream_index:
        Framework stream on that device (``-1`` before first binding).
    phase_index:
        Index of the next profile phase to run.
    copy_index / kernel_index:
        Completed-command prefix *within* the current phase — commands
        before these indices are never re-issued on restore.
    completed_copies / completed_kernels:
        Cumulative completed commands over the whole GPU section.
    restore_bytes:
        Total completed HtoD payload; a migration re-uploads this much in
        one burst to rebuild device-memory state on the new device.
    time:
        Simulated time of the last durable (phase-boundary) snapshot.
    generation:
        Fencing generation of :attr:`device_index` at bind time (see
        :mod:`repro.integrity.fencing`).  A snapshot stamped with a
        superseded generation is a post-failover stale write and is
        rejected by the fenced fleet journal.
    """

    app_id: str
    device_index: int = 0
    stream_index: int = -1
    phase_index: int = 0
    copy_index: int = 0
    kernel_index: int = 0
    completed_copies: int = 0
    completed_kernels: int = 0
    restore_bytes: int = 0
    time: float = 0.0
    generation: int = 0

    def as_entry(self) -> Dict[str, object]:
        """Flat dict for journaling (stable key order via the journal)."""
        return {
            "event": "checkpoint",
            "app": self.app_id,
            "device": self.device_index,
            "gen": self.generation,
            "phase": self.phase_index,
            "copies": self.completed_copies,
            "kernels": self.completed_kernels,
            "restore_bytes": self.restore_bytes,
            "t": self.time,
        }


class CheckpointStore:
    """In-memory checkpoint registry for one fleet run."""

    def __init__(self) -> None:
        self._by_app: Dict[str, AppCheckpoint] = {}
        #: Durable snapshots taken (phase boundaries), for accounting.
        self.snapshots: int = 0

    def __len__(self) -> int:
        return len(self._by_app)

    def get(self, app_id: str) -> Optional[AppCheckpoint]:
        """Latest checkpoint for ``app_id``, or ``None``."""
        return self._by_app.get(app_id)

    def save(self, checkpoint: AppCheckpoint) -> None:
        """Record a durable snapshot."""
        self._by_app[checkpoint.app_id] = checkpoint
        self.snapshots += 1
