"""The fleet's device registry: N simulated GPUs with health state.

Each :class:`FleetDevice` bundles one :class:`~repro.gpu.device.GPUDevice`
with its own stream pool, transfer synchronizer, power monitor and fault
injector (fed the per-device slice of the run's fault plan).  The registry
owns ground-truth liveness: a ``DEVICE_LOSS`` spec spawns a tiny process
that marks the device lost at the planned instant and notifies the failover
coordinator — *detection* (and therefore migration) happens later, when the
health monitor's missed-heartbeat budget runs out.

A lost device is never torn down mid-run: commands already on its queues
may keep retiring in the simulation, but their completions are ignored by
the checkpoint layer, its power integral is cut off at the loss instant,
and nothing new is placed on it.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..framework.power_monitor import PowerMonitor
from ..framework.stream_manager import StreamManager
from ..framework.sync import make_synchronizer
from ..gpu.device import GPUDevice
from ..gpu.specs import DeviceSpec, tesla_k20
from ..resilience.faults import GRAY_KINDS, FaultInjector, FaultPlan
from .config import FleetConfig
from .topology import FleetTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment

__all__ = ["DeviceState", "FleetDevice", "DeviceRegistry"]


class DeviceState(str, Enum):
    """Health classification of one fleet device."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"   # throttle window open; still usable
    LOST = "lost"           # off the bus; nothing placed on it

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FleetDevice:
    """One registry slot: a GPU plus its per-device serving machinery."""

    def __init__(
        self,
        env: "Environment",
        index: int,
        spec: DeviceSpec,
        num_streams: int,
        memory_sync: bool,
        copy_policy: str,
        power_interval: float,
        plan: FaultPlan,
        trace=None,
    ) -> None:
        self.env = env
        self.index = index
        self.injector: Optional[FaultInjector] = None
        if not plan.empty:
            self.injector = FaultInjector(env, plan, trace=trace)
        self.gpu = GPUDevice(
            env,
            spec=spec,
            trace=trace,
            copy_policy=copy_policy,
            injector=self.injector,
        )
        self.manager = StreamManager(env, self.gpu, num_streams)
        self.synchronizer = make_synchronizer(env, memory_sync)
        self.monitor = PowerMonitor(
            env, self.gpu, interval=power_interval, injector=self.injector
        )
        self.state = DeviceState.HEALTHY
        self.loss_time: Optional[float] = None
        self.detected_time: Optional[float] = None
        #: Throttle windows from the plan, for health classification:
        #: ``(start, end, factor)`` — known schedule, observed degradation.
        self.throttle_windows: List[Tuple[float, float, float]] = [
            (f.time, f.time + f.duration, f.factor)
            for f in plan
            if f.kind.value == "device_throttle"
        ]
        #: Gray-degradation windows from the plan (``(start, end,
        #: factor)``).  Ground truth for tests and benchmarks only: the
        #: health monitor deliberately does *not* read these — a gray
        #: failure is exactly the degradation the plan knows about but
        #: the heartbeat path cannot see, so classification must come
        #: from the straggler detector's observed latency stretch.
        self.gray_windows: List[Tuple[float, float, float]] = [
            (f.time, f.time + f.duration, f.factor)
            for f in plan
            if f.kind in GRAY_KINDS
        ]

    def __repr__(self) -> str:
        return f"<FleetDevice {self.index} {self.state.value}>"

    @property
    def lost(self) -> bool:
        """Ground-truth liveness (set at the loss instant, not detection)."""
        return self.state is DeviceState.LOST

    def heartbeat(self, now: float) -> dict:
        """One health-monitor reading: liveness + board power."""
        return {
            "time": now,
            "device": self.index,
            "alive": not self.lost,
            "power": 0.0 if self.lost else self.gpu.power.current_power,
        }

    def throttled_at(self, now: float) -> bool:
        """Whether a planned throttle window is open at ``now``."""
        return any(t0 <= now < t1 for t0, t1, _ in self.throttle_windows)

    def energy_between(self, t0: float, t1: float) -> float:
        """Exact energy over ``[t0, t1]``, cut off at the loss instant."""
        if self.loss_time is not None:
            t1 = min(t1, self.loss_time)
        if t1 <= t0:
            return 0.0
        return self.gpu.power.energy(t1) - self.gpu.power.energy(t0)


class DeviceRegistry:
    """Owns the fleet's devices and their ground-truth lifecycle."""

    def __init__(
        self,
        env: "Environment",
        fleet: FleetConfig,
        *,
        num_streams: int,
        memory_sync: bool = False,
        spec: Optional[DeviceSpec] = None,
        copy_policy: str = "interleave",
        power_interval: float = 15e-3,
        plan: Optional[FaultPlan] = None,
        trace=None,
    ) -> None:
        self.env = env
        self.fleet = fleet
        self.plan = plan if plan is not None else FaultPlan()
        spec = spec or tesla_k20()
        self.spec = spec
        #: Fault-domain structure (rail/switch/rack), or ``None`` for the
        #: historical flat fleet.  Pure bookkeeping: build-time only.
        self.topology: Optional[FleetTopology] = (
            FleetTopology(fleet.num_devices, fleet.topology)
            if fleet.topology is not None
            else None
        )
        self.devices: List[FleetDevice] = [
            FleetDevice(
                env,
                index,
                spec,
                num_streams,
                memory_sync,
                copy_policy,
                power_interval,
                self.plan.for_device(index),
                trace=trace,
            )
            for index in range(fleet.num_devices)
        ]
        #: Called as ``on_down(index, now)`` the instant a device is lost
        #: (ground truth) — wired to the failover coordinator.
        self.on_down: Optional[Callable[[int, float], None]] = None

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def healthy(self) -> List[FleetDevice]:
        """Devices apps may be placed on (degraded counts as usable)."""
        return [d for d in self.devices if not d.lost]

    @property
    def lost_devices(self) -> List[FleetDevice]:
        """Devices that have fallen off the bus."""
        return [d for d in self.devices if d.lost]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start power monitors and schedule the planned device losses."""
        for device in self.devices:
            device.monitor.start()
        for spec in self.plan.loss_specs():
            index = spec.effective_device % len(self.devices)
            self.env.process(
                self._loss_body(index, spec.time),
                name=f"device-loss-{index}",
            )

    def stop(self) -> None:
        """Stop every (still-running) power monitor."""
        for device in self.devices:
            device.monitor.stop()

    def mark_lost(self, index: int) -> None:
        """Ground truth: the device just fell off the bus."""
        device = self.devices[index]
        if device.lost:
            return
        device.state = DeviceState.LOST
        device.loss_time = self.env.now
        device.monitor.stop()
        if self.on_down is not None:
            self.on_down(index, self.env.now)

    def _loss_body(self, index: int, at: float):
        # Fault times are absolute simulation time, like every other
        # FaultKind; a loss planned before start() fires immediately.
        delay = at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.mark_lost(index)
