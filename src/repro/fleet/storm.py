"""Failover-storm control: the paced migration queue.

When one device dies, migrating its apps immediately is right.  When a
whole fault domain dies, the historical immediate path dumps a quarter of
the fleet's work onto the survivors in a single simulated instant — every
migrant re-allocates buffers, replays its checkpoint restore burst and
re-executes lost kernels *at the same time*, on devices that are already
running their own load.  Goodput collapses, deadlines slip, deadline
misses turn into re-runs, and the system can stay collapsed long after
the loss itself: the failover storm is the ignition source of metastable
failure.

:class:`MigrationQueue` replaces the mass migration with paced,
capacity-aware admission:

* detected-lost apps are *queued* (journaled as ``migration-queued``),
  prioritised by deadline, then by checkpoint staleness (least
  checkpointed progress first — those apps lose the most per second of
  delay), then by app id for determinism;
* each surviving device exposes ``max_inflight_per_device`` *recovery
  slots*; a queued app is released only into a free slot, and the slot
  is held until the migrant reaches its next checkpoint boundary (state
  restored, one phase re-run — warmed up) or terminates;
* freed slots are refilled on the pacer tick (``pace_interval``), not
  instantly, so recovery load ramps instead of stepping.

The queue owns no placement policy of its own: the coordinator passes a
``candidates`` callable (healthy devices + live load) and a ``release``
callback that applies the assignment, journals the ``failover`` event and
wakes the parked driver — exactly the code path immediate migration used.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .config import StormControlConfig

__all__ = ["MigrationQueue"]

#: Sort placeholder for apps without a deadline (migrate after all
#: deadline-bearing work).
_NO_DEADLINE = float("inf")


class _Entry:
    __slots__ = ("app_id", "from_device", "deadline", "kernels", "enqueued")

    def __init__(self, app_id, from_device, deadline, kernels, enqueued):
        self.app_id = app_id
        self.from_device = from_device
        self.deadline = deadline
        self.kernels = kernels
        self.enqueued = enqueued

    @property
    def priority(self) -> Tuple[float, int, str]:
        deadline = _NO_DEADLINE if self.deadline is None else self.deadline
        return (deadline, self.kernels, self.app_id)


class MigrationQueue:
    """Capacity-aware, deadline-prioritised failover pacing.

    Parameters
    ----------
    env:
        Simulation environment (the queue owns the pacer process).
    config:
        :class:`~repro.fleet.config.StormControlConfig`.
    candidates:
        Zero-argument callable returning ``[(device_index, live_load)]``
        for every healthy device — the admission universe.
    release:
        ``release(app_id, target)`` applies the migration (assignment,
        ``failover`` journal entry, waiter wake-up).  ``target`` is
        ``None`` only when no healthy device remains: the app fails.
    journal:
        Optional fenced journal for ``migration-queued`` decisions
        (recorded tokenless — queueing is legitimate in any generation).
    """

    def __init__(
        self,
        env,
        config: StormControlConfig,
        *,
        candidates: Callable[[], List[Tuple[int, int]]],
        release: Callable[[str, Optional[int]], None],
        journal=None,
    ) -> None:
        self.env = env
        self.config = config
        self.candidates = candidates
        self.release = release
        self.journal = journal
        self._queue: List[_Entry] = []
        #: Recovery slots in use, per surviving device.
        self._inflight: Dict[int, int] = {}
        #: app -> device whose recovery slot it holds.
        self._slot_of: Dict[str, int] = {}
        self.queued_total = 0
        self.released_total = 0
        self.failed_total = 0
        self.peak_depth = 0
        #: Sum of simulated seconds spent queued (for mean-wait stats).
        self.total_wait = 0.0
        self._running = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MigrationQueue depth={len(self._queue)} "
            f"released={self.released_total}>"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin the pacer (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._pace_loop(), name="migration-pacer")

    def stop(self) -> None:
        """Stop pacing after the next tick."""
        self._running = False

    def _pace_loop(self):
        while self._running:
            yield self.env.timeout(self.config.pace_interval)
            if not self._running:
                return
            self.drain()

    @property
    def depth(self) -> int:
        """Apps currently queued (not yet released)."""
        return len(self._queue)

    # -- enqueue / slot accounting ----------------------------------------

    def enqueue(
        self,
        app_id: str,
        *,
        from_device: int,
        deadline: Optional[float],
        checkpoint_kernels: int,
    ) -> None:
        """Queue one detected-lost app for paced re-admission.

        An app can be enqueued twice — its first failover target may die
        before it warms up — so any recovery slot it still holds from the
        previous migration is freed first.
        """
        self.free_slot(app_id)
        entry = _Entry(
            app_id, from_device, deadline, checkpoint_kernels, self.env.now
        )
        self._queue.append(entry)
        self.queued_total += 1
        self.peak_depth = max(self.peak_depth, len(self._queue))
        if self.journal is not None:
            self.journal.record(
                {
                    "event": "migration-queued",
                    "app": app_id,
                    "from": from_device,
                    "deadline": (
                        -1.0 if deadline is None else float(deadline)
                    ),
                    "kernels": checkpoint_kernels,
                    "depth": len(self._queue),
                    "t": self.env.now,
                }
            )

    def free_slot(self, app_id: str) -> None:
        """Release the recovery slot ``app_id`` holds, if any.

        Called when a migrant reaches its first post-migration checkpoint
        boundary or terminates (and defensively on re-enqueue).  The
        freed slot is refilled on the next pacer tick, not immediately —
        that delay *is* the pacing.
        """
        device = self._slot_of.pop(app_id, None)
        if device is not None:
            self._inflight[device] = max(0, self._inflight.get(device, 0) - 1)

    def note_device_lost(self, index: int) -> None:
        """A device died: its recovery slots no longer gate anything."""
        self._inflight.pop(index, None)
        for app_id, device in list(self._slot_of.items()):
            if device == index:
                del self._slot_of[app_id]

    # -- release -----------------------------------------------------------

    def _pick_target(self) -> Optional[int]:
        best = None
        best_key = None
        for index, load in self.candidates():
            used = self._inflight.get(index, 0)
            if used >= self.config.max_inflight_per_device:
                continue
            key = (used, load, index)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def drain(self) -> int:
        """Release queued apps into free recovery slots; return the count.

        Runs at detection time (the first, capacity-capped wave) and on
        every pacer tick.  With no healthy device left the whole queue is
        failed out (``release(app, None)``) — losses are permanent in
        this model, so there is nothing to wait for.
        """
        released = 0
        if self._queue and not self.candidates():
            for entry in sorted(self._queue, key=lambda e: e.priority):
                self.total_wait += self.env.now - entry.enqueued
                self.failed_total += 1
                self.release(entry.app_id, None)
            self._queue.clear()
            return 0
        while self._queue:
            target = self._pick_target()
            if target is None:
                break
            self._queue.sort(key=lambda e: e.priority)
            entry = self._queue.pop(0)
            self._inflight[target] = self._inflight.get(target, 0) + 1
            self._slot_of[entry.app_id] = target
            self.total_wait += self.env.now - entry.enqueued
            self.released_total += 1
            self.release(entry.app_id, target)
            released += 1
        return released
