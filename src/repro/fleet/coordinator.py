"""The failover coordinator: drain a lost device, migrate its apps.

Two moments matter for every device loss, and the coordinator keeps them
deliberately separate:

* **loss instant** (ground truth, from the registry): every *running*
  driver bound to the device is interrupted with
  ``Interrupt(DeviceLost)`` — the simulation analogue of CUDA calls
  suddenly returning ``cudaErrorDeviceUnavailable``.  The interrupted
  drivers park and wait; nothing is reassigned yet, because the system
  has not *observed* the failure.
* **detection instant** (from the health monitor, after the seeded
  missed-heartbeat budget): the loss is journaled, every unfinished app
  assigned to the dead device is re-placed onto a healthy device via the
  configured placement policy, each failover is journaled, and the parked
  drivers are released to resume from their checkpoints.

With ``failover=False`` (the baseline the benchmarks compare against) the
detection step marks the apps failed instead of re-placing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..integrity.fencing import GenerationFence
from ..sim.events import Event
from .checkpoint import CheckpointStore
from .config import FleetConfig
from .registry import DeviceRegistry, FleetDevice
from .storm import MigrationQueue
from .thread import FleetAppThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment

__all__ = ["FailoverCoordinator", "RecoveryEvent"]


class RecoveryEvent(dict):
    """One device loss's recovery accounting (a dict for easy reporting).

    Keys: ``device``, ``lost`` (instant), ``detected`` (instant),
    ``resumed`` (last migrated app back on a device), ``apps`` (migrated
    app ids), ``failed_apps`` (apps that could not be re-placed),
    ``reexecuted_kernels``.
    """


class FailoverCoordinator:
    """Tracks app->device assignments and reacts to device losses."""

    def __init__(
        self,
        env: "Environment",
        registry: DeviceRegistry,
        fleet: FleetConfig,
        store: CheckpointStore,
        journal=None,
        fence: Optional[GenerationFence] = None,
        deadlines: Optional[Dict[str, float]] = None,
    ) -> None:
        self.env = env
        self.registry = registry
        self.fleet = fleet
        self.store = store
        self.journal = journal
        #: Per-device generation counters; advanced at every detected
        #: loss so checkpoint writes from the superseded binding are
        #: fenced off (see :mod:`repro.integrity.fencing`).
        self.fence = fence if fence is not None else GenerationFence()
        #: Absolute SLO deadlines per app (queue priority; may be empty).
        self.deadlines: Dict[str, float] = dict(deadlines or {})
        self.assignment: Dict[str, Optional[int]] = {}
        self.threads: Dict[str, FleetAppThread] = {}
        self.procs: Dict[str, object] = {}
        self.status: Dict[str, str] = {}   # pending|running|waiting|done
        self._waiters: Dict[str, Event] = {}
        self.recoveries: List[RecoveryEvent] = []
        #: Migrated apps that have not yet landed on their new device.
        self._pending_resume: Dict[str, RecoveryEvent] = {}
        #: Queued migrations: app -> (from device, loss RecoveryEvent).
        self._queued: Dict[str, tuple] = {}
        #: Paced migration queue; ``None`` keeps the historical
        #: immediate mass-migration path byte-identical.
        self.storm: Optional[MigrationQueue] = None
        if fleet.storm is not None and fleet.failover:
            self.storm = MigrationQueue(
                env,
                fleet.storm,
                candidates=self._storm_candidates,
                release=self._storm_release,
                journal=journal,
            )
        self._rr_cursor = 0
        registry.on_down = self.device_down

    # -- placement ---------------------------------------------------------

    def _live_counts(self) -> Dict[int, int]:
        counts = {d.index: 0 for d in self.registry}
        for app_id, index in self.assignment.items():
            if index is not None and self.status.get(app_id) != "done":
                counts[index] += 1
        return counts

    def _pick_device(self) -> Optional[int]:
        healthy = self.registry.healthy()
        if not healthy:
            return None
        if self.fleet.placement == "least-loaded":
            counts = self._live_counts()
            return min(healthy, key=lambda d: (counts[d.index], d.index)).index
        # round-robin over the full index space, skipping lost devices
        for _ in range(len(self.registry)):
            index = self._rr_cursor % len(self.registry)
            self._rr_cursor += 1
            if not self.registry.devices[index].lost:
                return index
        return healthy[0].index  # pragma: no cover - unreachable

    # -- registration ------------------------------------------------------

    def register(self, thread: FleetAppThread) -> FleetDevice:
        """Place a new app on a device (parent thread, launch order)."""
        app_id = thread.app.app_id
        index = self._pick_device()
        if index is None:
            raise RuntimeError("no healthy device to place on")
        self.assignment[app_id] = index
        self.threads[app_id] = thread
        self.status[app_id] = "pending"
        return self.registry.devices[index]

    def register_proc(self, app_id: str, proc) -> None:
        """Attach the driver process (spawned after registration)."""
        self.procs[app_id] = proc

    def note_done(self, app_id: str) -> None:
        """The app reached a terminal state (completed or failed)."""
        self.status[app_id] = "done"

    # -- driver-facing protocol --------------------------------------------

    def acquire_device(self, app_id: str):
        """Yield until the app's assigned device is usable; return it.

        Returns ``None`` when the app cannot run anywhere (no healthy
        device remained, or failover is disabled) — the driver records
        the app as failed.
        """
        while True:
            index = self.assignment[app_id]
            if index is None:
                self.status[app_id] = "done"
                return None
            device = self.registry.devices[index]
            if not device.lost:
                self.status[app_id] = "running"
                self.resumed(app_id, index)
                return device
            # Assigned device is dead: park until the health monitor
            # declares it and the coordinator re-places us.
            self.status[app_id] = "waiting"
            event = Event(self.env)
            self._waiters[app_id] = event
            yield event

    def resumed(self, app_id: str, device_index: int) -> None:
        """A migrated app is back on a device (recovery-time metric)."""
        recovery = self._pending_resume.pop(app_id, None)
        if recovery is not None:
            recovery["resumed"] = max(recovery["resumed"], self.env.now)

    def note_warmed(self, app_id: str) -> None:
        """A migrant checkpointed (or terminated) on its new device.

        Frees the recovery slot it held in the paced migration queue;
        a no-op without storm control or for non-migrating apps.
        """
        if self.storm is not None:
            self.storm.free_slot(app_id)

    @property
    def stale_writes_rejected(self) -> int:
        """Journal writes fenced off for carrying a superseded token."""
        return self.fence.rejected

    # -- storm-control callbacks -------------------------------------------

    def _storm_candidates(self) -> List[tuple]:
        """Healthy ``(device, live load)`` pairs for paced admission."""
        counts = self._live_counts()
        return [(d.index, counts[d.index]) for d in self.registry.healthy()]

    def _storm_release(self, app_id: str, target: Optional[int]) -> None:
        """Apply one paced migration (the queue's release callback).

        Mirrors the immediate path's bookkeeping: assignment update,
        recovery accounting, ``failover`` journal entry, waiter wake-up —
        just at queue-drain time instead of detection time.
        """
        now = self.env.now
        from_device, recovery = self._queued.pop(app_id, (None, None))
        self.assignment[app_id] = target
        checkpoint = self.store.get(app_id)
        if recovery is not None:
            if target is None:
                recovery["failed_apps"].append(app_id)
            else:
                recovery["apps"].append(app_id)
                self._pending_resume[app_id] = recovery
        if self.journal is not None:
            self.journal.record(
                {
                    "event": "failover",
                    "app": app_id,
                    "from": -1 if from_device is None else from_device,
                    "to": -1 if target is None else target,
                    "t": now,
                    "phase": (
                        checkpoint.phase_index if checkpoint is not None else 0
                    ),
                    "kernels": (
                        checkpoint.completed_kernels
                        if checkpoint is not None
                        else 0
                    ),
                }
            )
        waiter = self._waiters.pop(app_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(target)

    # -- loss handling -----------------------------------------------------

    def device_down(self, index: int, now: float) -> None:
        """Ground truth: interrupt every running driver on the device."""
        from ..sim.errors import DeviceLost

        for app_id, assigned in self.assignment.items():
            if assigned != index or self.status.get(app_id) != "running":
                continue
            proc = self.procs.get(app_id)
            if proc is not None and proc.is_alive:
                proc.interrupt(DeviceLost(index, now))

    def device_detected_lost(self, index: int, now: float) -> None:
        """Observed: journal the loss and migrate (or fail) its apps."""
        device = self.registry.devices[index]
        # Fence first: from this instant, every token issued against the
        # device before the loss is superseded, so no in-flight checkpoint
        # of the old binding can land after the migrated replica's writes.
        self.fence.advance(index)
        if self.journal is not None:
            self.journal.record(
                {
                    "event": "device-lost",
                    "device": index,
                    "lost": device.loss_time,
                    "detected": now,
                }
            )
        recovery = RecoveryEvent(
            device=index,
            lost=device.loss_time,
            detected=now,
            resumed=now,
            apps=[],
            failed_apps=[],
            reexecuted_kernels=0,
        )
        if self.storm is not None:
            # Paced path: the dead device's recovery slots stop gating
            # admission, and its apps join the queue instead of storming
            # the survivors.  One capacity-capped wave drains now; the
            # rest follow on pacer ticks as slots free up.
            self.storm.note_device_lost(index)
            for app_id, assigned in self.assignment.items():
                if assigned != index or self.status.get(app_id) == "done":
                    continue
                checkpoint = self.store.get(app_id)
                self._queued[app_id] = (index, recovery)
                self.storm.enqueue(
                    app_id,
                    from_device=index,
                    deadline=self.deadlines.get(app_id),
                    checkpoint_kernels=(
                        checkpoint.completed_kernels
                        if checkpoint is not None
                        else 0
                    ),
                )
            self.recoveries.append(recovery)
            self.storm.drain()
            return
        for app_id, assigned in self.assignment.items():
            if assigned != index or self.status.get(app_id) == "done":
                continue
            target = self._pick_device() if self.fleet.failover else None
            self.assignment[app_id] = target
            checkpoint = self.store.get(app_id)
            if target is None:
                recovery["failed_apps"].append(app_id)
            else:
                recovery["apps"].append(app_id)
                self._pending_resume[app_id] = recovery
            if self.journal is not None:
                self.journal.record(
                    {
                        "event": "failover",
                        "app": app_id,
                        "from": index,
                        "to": -1 if target is None else target,
                        "t": now,
                        "phase": (
                            checkpoint.phase_index
                            if checkpoint is not None
                            else 0
                        ),
                        "kernels": (
                            checkpoint.completed_kernels
                            if checkpoint is not None
                            else 0
                        ),
                    }
                )
            waiter = self._waiters.pop(app_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(target)
        self.recoveries.append(recovery)
