"""The discrete-event :class:`Environment` — clock, heap and run loop.

This module is the root of the simulation substrate used by the GPU model.
It implements a classic event-calendar design: a binary heap of
``(time, priority, sequence, event)`` tuples, popped in order, with a strict
non-decreasing clock.  Determinism matters for reproducing the paper's
figures, so ties are broken by a monotonically increasing sequence number —
two events scheduled for the same time and priority are always processed in
scheduling order.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from .errors import EventError, ScheduleError, SimulationError, StopSimulation
from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Environment", "Infinity"]

#: Convenience alias used as the default run horizon.
Infinity: float = float("inf")


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds by convention
        throughout this repository; the GPU model uses seconds everywhere
        and converts to ms/us only for reporting).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._events_processed: int = 0
        # Optional resilience hook (see repro.resilience.faults).  None in
        # every ordinary run; the step loop only pays one attribute check.
        self._fault_injector: Optional[Any] = None
        # Optional strided integrity probe (see repro.integrity.invariants).
        # Unset in every ordinary run; the step loop pays one integer
        # truthiness check and nothing else.  The strided dispatch lives
        # *inline* here rather than in a per-event callback because a
        # Python call per event pop costs percents of wall time on
        # event-dense workloads; an integer countdown costs a fraction
        # of that.
        self._probe: Optional[Any] = None
        self._probe_stride: int = 0
        self._probe_countdown: int = 0
        # Optional causal tracer (see repro.telemetry.tracing).  Purely
        # passive: the step loop never consults it — instrumented layers
        # reach it through :attr:`tracer` with one attribute check, so an
        # untraced run is byte-identical to one that never heard of it.
        self._tracer: Optional[Any] = None

    # -- introspection ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if the engine is inside one."""
        return self._active_process

    @property
    def queue_size(self) -> int:
        """Number of events pending in the calendar (diagnostics only)."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events popped from the calendar (diagnostics only)."""
        return self._events_processed

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else Infinity

    @property
    def fault_injector(self) -> Optional[Any]:
        """The attached fault injector, if any (see :mod:`repro.resilience`)."""
        return self._fault_injector

    def attach_fault_injector(self, injector: Any) -> None:
        """Install a fault injector on the event loop.

        The injector's ``on_step(now)`` is invoked at every event pop so
        time-scheduled faults arm exactly when the simulated clock reaches
        them.  Pass ``None`` to detach.  With no injector attached the run
        loop behaviour (and therefore every result) is byte-identical to an
        environment that never heard of fault injection.
        """
        if injector is not None and not hasattr(injector, "on_step"):
            raise TypeError(f"{injector!r} has no on_step(now) hook")
        self._fault_injector = injector

    @property
    def probe(self) -> Optional[Any]:
        """The installed strided probe, if any (see :mod:`repro.integrity`)."""
        return self._probe

    def set_probe(self, probe: Any, stride: int) -> None:
        """Install a strided probe: ``probe(now)`` fires every ``stride``-th
        event pop.

        Used by the integrity subsystem's invariant checker.  The probe
        runs after the fault injector (so it observes post-fault state)
        and before event callbacks.  One slot only — a second install
        without :meth:`clear_probe` is a wiring bug and raises.  With no
        probe installed the run loop is byte-identical to one that never
        heard of probes.
        """
        if not callable(probe):
            raise TypeError(f"{probe!r} is not callable")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride!r}")
        if self._probe is not None:
            raise RuntimeError("a probe is already installed on this environment")
        self._probe = probe
        self._probe_stride = stride
        self._probe_countdown = stride

    def clear_probe(self) -> None:
        """Detach the strided probe (no-op if none installed)."""
        self._probe = None
        self._probe_stride = 0
        self._probe_countdown = 0

    @property
    def tracer(self) -> Optional[Any]:
        """The attached causal tracer, if any (see :mod:`repro.telemetry`)."""
        return self._tracer

    def attach_tracer(self, tracer: Any) -> None:
        """Attach a causal tracer so instrumented layers can reach it.

        The event loop itself never calls the tracer — spans are
        record-complete and written by the waiting layer — so attaching
        one cannot perturb the calendar.  Pass ``None`` to detach.
        """
        if tracer is not None and not hasattr(tracer, "record"):
            raise TypeError(f"{tracer!r} has no record(...) method")
        self._tracer = tracer

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Insert ``event`` into the calendar ``delay`` units from now."""
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def step(self) -> None:
        """Process the single next event in the calendar.

        Raises
        ------
        EventError
            If the calendar is empty.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EventError("no scheduled events left") from None
        self._events_processed += 1

        if self._fault_injector is not None:
            self._fault_injector.on_step(self._now)
        if self._probe_countdown:
            self._probe_countdown -= 1
            if not self._probe_countdown:
                self._probe_countdown = self._probe_stride
                self._probe(self._now)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise EventError(f"{event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # A failed event that nobody handled: surface the error rather
            # than silently dropping it.
            exc = event._value
            raise exc

    def run(self, until: "Event | float | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar is exhausted.
            * a number — run until the clock reaches that time.
            * an :class:`Event` — run until that event is processed and
              return its value.

        Returns
        -------
        The value of the ``until`` event if one was given, else ``None``.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed.
                    if stop._ok:
                        return stop._value
                    raise stop._value
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ScheduleError(
                        f"until={at!r} is in the past (now={self._now!r})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Schedule with the lowest possible priority value so the
                # horizon fires before same-time model events.
                heapq.heappush(self._queue, (at, -1, next(self._eid), stop))
                stop.callbacks.append(self._stop_callback)

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop_exc:
            return stop_exc.value

        if stop is not None and isinstance(until, Event):
            raise SimulationError(
                f"simulation ended with {until!r} still pending"
            )
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # Propagate failures of the until-event to the caller of run().
        event.defuse()
        raise event._value
