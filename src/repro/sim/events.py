"""Event primitives for the :mod:`repro.sim` discrete-event engine.

An :class:`Event` is the unit of synchronization: processes yield events and
are resumed when the event *triggers*.  Events carry a value (delivered to
every waiter) or an exception (thrown into every waiter).  The design follows
SimPy closely so that readers familiar with SimPy can follow the GPU model
built on top, but the implementation here is self-contained — the repository
has no third-party simulation dependency.

Trigger/processing model
------------------------
An event goes through three states:

``pending``
    Created but not yet triggered; ``event.triggered`` is ``False``.
``triggered``
    ``succeed``/``fail`` was called (or the engine scheduled it); the event
    sits in the environment's queue with a timestamp.
``processed``
    The environment popped it and ran its callbacks; waiting processes have
    been resumed.

Callbacks are plain callables ``cb(event)`` stored in :attr:`Event.callbacks`;
after processing the list is replaced by ``None`` so late registrations are
detected as errors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import EventError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]

#: Sentinel used as the value of events that have not been triggered yet.
PENDING: Any = object()

#: Scheduling priority for events that must run before same-time events.
URGENT: int = 0
#: Default scheduling priority.
NORMAL: int = 1


class Event:
    """A single occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event lives in.  All timing and callback
        processing is delegated to it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with the event once it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run and waiters were resumed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise EventError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise EventError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -----------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so that factory helpers can do
        ``return Event(env).succeed(v)``.
        """
        if self.triggered:
            raise EventError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Every process waiting on the event will have ``exception`` thrown
        into it.  If nothing ever waits, the engine re-raises it at the end
        of the step to avoid silently losing errors (unless
        :meth:`defused` was set).
        """
        if self.triggered:
            raise EventError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Used as a chaining callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine won't re-raise it."""
        self._defused = True

    @property
    def defused(self) -> bool:
        """Whether a failure of this event has been marked as handled."""
        return self._defused

    # -- composition ----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    Timeouts are triggered at construction time; they cannot fail and cannot
    be re-triggered.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            from .errors import ScheduleError

            raise ScheduleError(f"negative delay {delay!r}")
        super().__init__(env)
        self._delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self._delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay!r} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of events to values produced by a :class:`Condition`.

    Behaves like a read-only dict keyed by the original event objects but
    preserves the order in which events were passed to the condition, which
    makes unpacking results of ``AllOf`` deterministic.
    """

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.todict())

    def __len__(self) -> int:
        return len(self.todict())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def keys(self):
        return self.todict().keys()

    def values(self):
        return self.todict().values()

    def items(self):
        return self.todict().items()

    def todict(self) -> dict:
        """Return a plain dict of the collected events' values."""
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events.

    ``evaluate`` is a callable ``(events, triggered_count) -> bool`` deciding
    when the condition is satisfied.  Nested conditions flatten their values
    into a single :class:`ConditionValue`.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Immediately check already-processed events, subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            # An empty condition is trivially satisfied.
            self.succeed(ConditionValue([]))

    def _build_value(self) -> ConditionValue:
        """Collect all (transitively) *processed* sub-events.

        Triggered-but-unprocessed events (e.g. a later timeout that already
        knows its value) are excluded: the condition's value reflects what
        has actually happened by the time it fires.
        """
        flat: List[Event] = []

        def collect(events: List[Event]) -> None:
            for e in events:
                if isinstance(e, Condition):
                    collect(e._events)
                elif e.callbacks is None and e._value is not PENDING:
                    flat.append(e)

        collect(self._events)
        return ConditionValue(flat)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._build_value())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: every sub-event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: at least one sub-event has triggered."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition satisfied when *all* of ``events`` have succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition satisfied when *any* of ``events`` has succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
