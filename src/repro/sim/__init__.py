"""Self-contained discrete-event simulation substrate.

This package provides the event engine the GPU model is built on: an
:class:`Environment` with a deterministic event calendar, generator-based
:class:`Process` coroutines, FIFO :class:`Resource`/:class:`Mutex`/
:class:`Store` primitives, and a :class:`TraceRecorder` that plays the role
of the NVIDIA Visual Profiler for the reproduced timelines.

The API intentionally mirrors SimPy (``env.process``, ``env.timeout``,
``yield event``) so the model code reads like standard DES Python, but the
implementation is local — no third-party simulation dependency.
"""

from .engine import Environment, Infinity
from .errors import (
    DeadlineExceeded,
    EventError,
    FaultError,
    Interrupt,
    ScheduleError,
    SimulationError,
    StopSimulation,
)
from .events import NORMAL, URGENT, AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Process
from .resources import Mutex, Request, Resource, Store
from .trace import Instant, Span, SpanHandle, TraceRecorder

__all__ = [
    "Environment",
    "Infinity",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Request",
    "Mutex",
    "Store",
    "TraceRecorder",
    "Span",
    "SpanHandle",
    "Instant",
    "SimulationError",
    "EventError",
    "ScheduleError",
    "FaultError",
    "DeadlineExceeded",
    "StopSimulation",
    "Interrupt",
    "URGENT",
    "NORMAL",
]
