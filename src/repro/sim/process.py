"""Process coroutines for the :mod:`repro.sim` engine.

A :class:`Process` wraps a Python generator.  The generator *yields* events;
whenever a yielded event is processed the generator is resumed with the
event's value (or the event's exception is thrown into it).  A process is
itself an :class:`~repro.sim.events.Event` that triggers with the
generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import NORMAL, PENDING, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = ["Process", "Initialize", "Interruption", "ProcessGenerator"]

#: Type alias for the generator signature accepted by :class:`Process`.
ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Private event that starts a freshly created process.

    Scheduled URGENT so that a process body begins executing at the simulated
    time of its creation, before any same-time timeouts fire.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Immediate event that throws :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        self.process = process
        self.callbacks.append(self._interrupt)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # Process already finished; the interrupt is moot.
        # Unsubscribe the process from whatever it was waiting for, then
        # resume it with the Interrupt exception.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """Execution of a generator coroutine inside an environment.

    Processes trigger (as events) when their generator returns; the trigger
    value is the generator's return value.  If the generator raises, the
    process fails with that exception, which propagates to any process
    waiting on it (or aborts the simulation if unhandled).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (``None`` while
        #: the process is running or finished).
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw an :class:`Interrupt` into this process.

        The interrupt is delivered at the current simulated time with URGENT
        priority.  Interrupting a terminated process raises
        :class:`SimulationError`.
        """
        Interruption(self, cause)

    # -- engine integration ----------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event.defuse()
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                # Generator finished normally.
                self._target = None
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env.schedule(self, priority=NORMAL)
                return
            except BaseException as exc:
                # Generator died with an exception -> fail the process event.
                self._target = None
                env._active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self, priority=NORMAL)
                return

            if not isinstance(next_event, Event):
                self._target = None
                env._active_process = None
                msg = (
                    f"process {self.name!r} yielded a non-event: "
                    f"{next_event!r}"
                )
                self._ok = False
                self._value = SimulationError(msg)
                env.schedule(self, priority=NORMAL)
                return

            if next_event.callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event was already processed: loop and resume immediately with
            # its (possibly failed) value.
            event = next_event

        env._active_process = None
