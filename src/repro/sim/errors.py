"""Exception types used by the :mod:`repro.sim` discrete-event engine.

The engine deliberately keeps its exception hierarchy small: everything a
user can mishandle derives from :class:`SimulationError`, while
:class:`Interrupt` is the *control-flow* exception delivered into a process
coroutine when another process interrupts it (mirroring SimPy semantics).
The resilience subsystem adds two members to the hierarchy:
:class:`FaultError` (an injected or detected hardware-level fault) and
:class:`DeadlineExceeded` (a watchdog deadline violation, usually delivered
as the *cause* of an :class:`Interrupt`).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "SimulationError",
    "EventError",
    "ScheduleError",
    "FaultError",
    "DeadlineExceeded",
    "DeviceLost",
    "HarnessCrash",
    "StopSimulation",
    "Interrupt",
]


class SimulationError(Exception):
    """Base class for all errors raised by the simulation engine."""


class EventError(SimulationError):
    """An event was used in an illegal state.

    Raised for example when ``succeed``/``fail`` is called on an event that
    has already been triggered, or when a value is read from an event that
    has not been processed yet.
    """


class ScheduleError(SimulationError):
    """An attempt was made to schedule work at an invalid time.

    The engine enforces a non-decreasing clock: scheduling an event with a
    negative delay is a programming error and raises this exception
    immediately rather than corrupting the event heap.
    """


class FaultError(SimulationError):
    """An injected (or detected) fault hit a simulated component.

    Raised into application code when a fault injector fails a command
    (e.g. a transient kernel-launch failure) or when the framework detects
    that previously enqueued asynchronous work completed with a fault.

    Parameters
    ----------
    message:
        Human-readable description.
    kind:
        Short fault-class tag (e.g. ``"launch_fail"``); ``None`` for
        detected-but-unclassified faults.
    target:
        The application id the fault hit, if known.
    """

    def __init__(
        self,
        message: str,
        kind: Optional[str] = None,
        target: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.target = target


class DeadlineExceeded(SimulationError):
    """An application exceeded its watchdog deadline.

    Delivered as the *cause* of an :class:`Interrupt` when the harness
    watchdog cancels an application thread that has run longer than the
    configured multiple of its serial-baseline runtime.

    Parameters
    ----------
    app_id:
        The cancelled application instance.
    deadline:
        The deadline that was exceeded (seconds of wall time).
    elapsed:
        How long the attempt had been running when cancelled.
    """

    def __init__(
        self, app_id: str, deadline: float, elapsed: float
    ) -> None:
        super().__init__(
            f"{app_id} exceeded deadline {deadline:.6g}s "
            f"(elapsed {elapsed:.6g}s)"
        )
        self.app_id = app_id
        self.deadline = deadline
        self.elapsed = elapsed


class DeviceLost(SimulationError):
    """A whole simulated device fell off the bus mid-run.

    Delivered as the *cause* of an :class:`Interrupt` to every application
    thread bound to the device when a
    :class:`~repro.resilience.faults.FaultKind.DEVICE_LOSS` fault fires;
    the fleet layer's failover coordinator migrates the interrupted apps
    onto healthy devices from their last checkpoint.

    Parameters
    ----------
    device:
        Index of the lost fleet device.
    time:
        Simulated timestamp at which the device was lost.
    """

    def __init__(self, device: int, time: float) -> None:
        super().__init__(f"device {device} lost at t={time:.6g}s")
        self.device = device
        self.time = time


class HarnessCrash(SimulationError):
    """The serving harness process died mid-run (simulated).

    Raised out of :meth:`Environment.run` when a
    :class:`~repro.resilience.faults.FaultKind.HARNESS_CRASH` fault fires:
    the run is abandoned exactly as if the host process had been killed.
    Anything the run journaled before the crash survives on disk; a
    restarted run resumes from that journal (see ``repro.serving``).

    Parameters
    ----------
    time:
        Simulated timestamp at which the harness died.
    """

    def __init__(self, time: float) -> None:
        super().__init__(f"harness crashed at t={time:.6g}s")
        self.time = time


class StopSimulation(Exception):
    """Internal control-flow exception that stops :meth:`Environment.run`.

    Raised by the environment itself when the ``until`` event triggers.  It
    intentionally derives from :class:`Exception` (not
    :class:`SimulationError`) because it is not an error condition.
    """

    def __init__(self, value: object) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Delivered into a process when :meth:`Process.interrupt` is called.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  Available
        as :attr:`cause` inside the interrupted process.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
