"""Exception types used by the :mod:`repro.sim` discrete-event engine.

The engine deliberately keeps its exception hierarchy small: everything a
user can mishandle derives from :class:`SimulationError`, while
:class:`Interrupt` is the *control-flow* exception delivered into a process
coroutine when another process interrupts it (mirroring SimPy semantics).
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "EventError",
    "ScheduleError",
    "StopSimulation",
    "Interrupt",
]


class SimulationError(Exception):
    """Base class for all errors raised by the simulation engine."""


class EventError(SimulationError):
    """An event was used in an illegal state.

    Raised for example when ``succeed``/``fail`` is called on an event that
    has already been triggered, or when a value is read from an event that
    has not been processed yet.
    """


class ScheduleError(SimulationError):
    """An attempt was made to schedule work at an invalid time.

    The engine enforces a non-decreasing clock: scheduling an event with a
    negative delay is a programming error and raises this exception
    immediately rather than corrupting the event heap.
    """


class StopSimulation(Exception):
    """Internal control-flow exception that stops :meth:`Environment.run`.

    Raised by the environment itself when the ``until`` event triggers.  It
    intentionally derives from :class:`Exception` (not
    :class:`SimulationError`) because it is not an error condition.
    """

    def __init__(self, value: object) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Delivered into a process when :meth:`Process.interrupt` is called.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  Available
        as :attr:`cause` inside the interrupted process.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
