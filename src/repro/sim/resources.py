"""Shared-resource primitives built on the event engine.

Three primitives cover everything the GPU model needs:

:class:`Resource`
    A counted semaphore with a strict FIFO wait queue.  Used for DMA
    engines (capacity 1 per direction) and host-side worker pools.
:class:`Mutex`
    A capacity-1 :class:`Resource` with a generator-friendly
    ``hold()`` protocol.  This is the paper's host-side transfer
    synchronization object (Section III-B).
:class:`Store`
    An unbounded FIFO of Python objects with blocking ``get``.  Used for
    command queues between streams and device engines.

All wait queues are strictly FIFO: the engine is deterministic, and queue
fairness is asserted by property-based tests.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, List, Optional

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = ["Request", "Resource", "Mutex", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Triggers (with the request itself as value) once the resource grants
    the slot.  Must be paired with :meth:`Resource.release`.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an ungranted request from the resource's wait queue."""
        self.resource._cancel(self)


class Resource:
    """Counted resource with FIFO granting.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of slots that may be held concurrently.  Must be >= 1.
    name:
        Optional label used in diagnostics and traces.
    """

    def __init__(
        self, env: "Environment", capacity: int = 1, name: str = ""
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()
        # Statistics for contention analysis.
        self.total_requests: int = 0
        self.peak_queue_length: int = 0

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name!r} {len(self._users)}/{self.capacity} "
            f"({len(self._waiters)} waiting)>"
        )

    # -- introspection ---------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def holds(self, request: Request) -> bool:
        """Whether ``request`` currently holds a slot (granted, unreleased).

        Interrupt-safe cleanup paths use this to decide between
        :meth:`release` (slot was granted, possibly before the grant event
        was even processed) and :meth:`Request.cancel` (still queued).
        """
        return request in self._users

    # -- protocol --------------------------------------------------------

    def request(self) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self)
        self.total_requests += 1
        if len(self._users) < self.capacity and not self._waiters:
            self._users.append(req)
            req.succeed(req)
        else:
            self._waiters.append(req)
            self.peak_queue_length = max(
                self.peak_queue_length, len(self._waiters)
            )
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError(
                f"release of {request!r} that does not hold {self!r}"
            ) from None
        if self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            raise SimulationError("cannot cancel an already granted request")
        try:
            self._waiters.remove(request)
        except ValueError:
            raise SimulationError(
                f"{request!r} is not queued on {self!r}"
            ) from None


class Mutex(Resource):
    """Mutual-exclusion lock (capacity-1 resource) with ``hold()`` sugar.

    The paper's memory-transfer synchronization wraps each application's
    HtoD phase in a mutex; model code does::

        with_lock = yield from mutex.hold()   # acquire
        try:
            ...                               # critical section (may yield)
        finally:
            mutex.unlock(with_lock)

    ``hold`` is a sub-generator so it composes with process coroutines.
    """

    def __init__(self, env: "Environment", name: str = "mutex") -> None:
        super().__init__(env, capacity=1, name=name)

    def hold(self) -> Generator[Event, Any, Request]:
        """Acquire the mutex from inside a process (``yield from``)."""
        req = self.request()
        yield req
        return req

    def unlock(self, request: Request) -> None:
        """Release the mutex acquired through :meth:`hold`."""
        self.release(request)

    @property
    def locked(self) -> bool:
        """Whether the mutex is currently held."""
        return bool(self._users)


class StorePut(Event):
    """Completed immediately; exists for symmetry and tracing hooks."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`; value is the item."""

    __slots__ = ()


class Store:
    """Unbounded FIFO buffer of arbitrary items with blocking ``get``.

    ``put`` never blocks (the device-side hardware queues in this model are
    deep enough that CUDA's queue-full stalls never occur for the paper's
    workloads; the command *ordering*, not queue depth, is what matters).
    """

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self.total_puts: int = 0

    def __repr__(self) -> str:
        return f"<Store {self.name!r} depth={len(self._items)}>"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> StorePut:
        """Append ``item``; wakes the oldest blocked getter if any."""
        self.total_puts += 1
        evt = StorePut(self, item)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
        evt.succeed(item)
        return evt

    def get(self) -> StoreGet:
        """Return an event that triggers with the next item."""
        evt = StoreGet(self.env)
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def peek(self) -> Optional[Any]:
        """Oldest buffered item without removing it, or ``None``."""
        return self._items[0] if self._items else None
