"""Structured trace recording — the simulator's "Visual Profiler".

The paper's Figures 1, 2 and 5 are NVIDIA Visual Profiler timelines.  The
simulator records the same information as *spans* (an activity with a start
and an end on a named track, e.g. ``Stream 35 / HtoD memcpy``) and
*instants* (point events such as a kernel launch submission).  The
:mod:`repro.analysis.timeline` module renders these traces as ASCII charts
and CSV rows.

Spans are deliberately plain dataclasses; everything downstream (metrics,
timeline rendering, tests) works on these rows rather than reaching into
the simulator's internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Instant", "TraceRecorder", "SpanHandle"]


@dataclass(frozen=True)
class Span:
    """A completed activity on a timeline track.

    Attributes
    ----------
    track:
        Row label, e.g. ``"stream-3"`` or ``"dma-htod"``.
    category:
        Activity class: ``"memcpy_htod"``, ``"memcpy_dtoh"``, ``"kernel"``,
        ``"alloc"``, ``"mutex"`` ... used for filtering and colouring.
    name:
        Human-readable label, e.g. the kernel name ``"Fan2"``.
    start, end:
        Simulated times in seconds.
    meta:
        Free-form details (bytes moved, thread-block counts, app id ...).
    """

    track: str
    category: str
    name: str
    start: float
    end: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """Whether two spans overlap in time (open intervals)."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Instant:
    """A point event on a timeline track."""

    track: str
    category: str
    name: str
    time: float
    meta: Dict[str, Any] = field(default_factory=dict)


class SpanHandle:
    """An open span returned by :meth:`TraceRecorder.begin`.

    Call :meth:`close` (usually from the same simulated process) to commit
    the completed :class:`Span` to the recorder.
    """

    __slots__ = ("_recorder", "track", "category", "name", "start", "meta")

    def __init__(
        self,
        recorder: "TraceRecorder",
        track: str,
        category: str,
        name: str,
        start: float,
        meta: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.track = track
        self.category = category
        self.name = name
        self.start = start
        self.meta = meta

    def close(self, end: float, **extra: Any) -> Span:
        """Finish the span at time ``end`` and record it."""
        meta = dict(self.meta)
        meta.update(extra)
        span = Span(
            track=self.track,
            category=self.category,
            name=self.name,
            start=self.start,
            end=end,
            meta=meta,
        )
        self._recorder.add_span(span)
        return span


class TraceRecorder:
    """Accumulates spans and instants for one simulation run.

    The recorder is optional everywhere in the GPU model: components accept
    ``trace=None`` and skip recording, so production-sized sweeps can run
    without the memory overhead.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self.instants: List[Instant] = []

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording -------------------------------------------------------

    def add_span(self, span: Span) -> None:
        """Append a completed span (no-op when disabled)."""
        if self.enabled:
            self.spans.append(span)

    def begin(
        self,
        track: str,
        category: str,
        name: str,
        start: float,
        **meta: Any,
    ) -> SpanHandle:
        """Open a span; commit it later with :meth:`SpanHandle.close`."""
        return SpanHandle(self, track, category, name, start, meta)

    def record(
        self,
        track: str,
        category: str,
        name: str,
        start: float,
        end: float,
        **meta: Any,
    ) -> Optional[Span]:
        """Record a completed span in one call."""
        if not self.enabled:
            return None
        span = Span(track, category, name, start, end, dict(meta))
        self.spans.append(span)
        return span

    def mark(
        self, track: str, category: str, name: str, time: float, **meta: Any
    ) -> None:
        """Record an instant."""
        if self.enabled:
            self.instants.append(Instant(track, category, name, time, dict(meta)))

    # -- queries ---------------------------------------------------------

    def filter(
        self,
        category: Optional[str] = None,
        track: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[Span], bool]] = None,
    ) -> List[Span]:
        """Spans matching all given criteria, in recording order."""
        out = []
        for s in self.spans:
            if category is not None and s.category != category:
                continue
            if track is not None and s.track != track:
                continue
            if name is not None and s.name != name:
                continue
            if predicate is not None and not predicate(s):
                continue
            out.append(s)
        return out

    def tracks(self) -> List[str]:
        """Distinct track names in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        for i in self.instants:
            seen.setdefault(i.track, None)
        return list(seen)

    def extent(self) -> Tuple[float, float]:
        """(min start, max end) over all spans; (0, 0) when empty."""
        if not self.spans:
            return (0.0, 0.0)
        return (
            min(s.start for s in self.spans),
            max(s.end for s in self.spans),
        )

    def iter_sorted(self) -> Iterator[Span]:
        """Spans ordered by start time (stable)."""
        return iter(sorted(self.spans, key=lambda s: (s.start, s.end)))

    def max_concurrency(self, category: str) -> int:
        """Peak number of simultaneously open spans of ``category``.

        Used by tests to assert that kernels really overlapped (Figure 5)
        or that copies never did (single DMA engine invariant).
        """
        points: List[Tuple[float, int]] = []
        for s in self.spans:
            if s.category != category or s.duration <= 0:
                continue
            points.append((s.start, 1))
            points.append((s.end, -1))
        # Process ends before starts at identical times: back-to-back spans
        # do not count as overlapping.
        points.sort(key=lambda p: (p[0], p[1]))
        level = peak = 0
        for _, delta in points:
            level += delta
            peak = max(peak, level)
        return peak

    def total_busy_time(self, category: str) -> float:
        """Union length of all spans of ``category`` (merged intervals)."""
        ivals = sorted(
            (s.start, s.end)
            for s in self.spans
            if s.category == category and s.duration > 0
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for a, b in ivals:
            if cur_start is None:
                cur_start, cur_end = a, b
            elif a <= cur_end:
                cur_end = max(cur_end, b)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = a, b
        if cur_start is not None:
            total += cur_end - cur_start
        return total
