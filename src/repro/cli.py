"""Command-line interface: ``python -m repro <experiment>``.

Runs any of the paper's experiments and prints (and optionally saves) the
resulting tables and timelines.  Examples::

    python -m repro list
    python -m repro fig4 --scale small --na 8 16
    python -m repro fig6 --pair gaussian needle
    python -m repro timeline --pair gaussian needle --apps 8 --sync
    python -m repro headline --scale small --out results/

The ``--scale`` flag selects the problem-size profile (``paper`` is the
Table III default; ``small``/``tiny`` run in seconds).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.tables import format_table, write_csv
from .analysis.timeline import render_timeline
from .apps.registry import all_pairs, list_apps

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-hyperq",
        description=(
            "Reproduction of 'Effective Utilization of CUDA Hyper-Q for "
            "Improved Power and Performance Efficiency' on a simulated "
            "Tesla K20."
        ),
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=("paper", "small", "tiny"),
        help="problem-size profile (default: REPRO_SCALE env or 'paper')",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for CSV output"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and experiment names")

    p = sub.add_parser("fig3", help="Figure 3: the five launch orders")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=4)

    p = sub.add_parser("fig4", help="Figure 4: concurrency speedup vs serial")
    p.add_argument("--na", type=int, nargs="+", default=[4, 8, 16, 32])
    p.add_argument("--pair", nargs=2, default=None, metavar=("X", "Y"))

    sub.add_parser("fig5", help="Figure 5: LEFTOVER oversubscription snapshot")

    p = sub.add_parser("fig6", help="Figure 6: effective transfer latency")
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--na", type=int, nargs="+", default=[8, 16, 32])

    p = sub.add_parser("fig7", help="Figure 7: ordering effect (default memory)")
    p.add_argument("--apps", type=int, default=32)

    p = sub.add_parser("fig8", help="Figure 8: ordering effect (memory sync)")
    p.add_argument("--apps", type=int, default=32)

    p = sub.add_parser("fig9", help="Figure 9: power serial/half/full")
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=32)

    p = sub.add_parser("fig10", help="Figure 10: power default vs sync")
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=32)

    p = sub.add_parser("timeline", help="Figures 1/2: render copy timelines")
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=8)
    p.add_argument("--sync", action="store_true", help="enable the transfer mutex")
    p.add_argument("--width", type=int, default=100)

    sub.add_parser("table3", help="Table III: launch geometry")

    p = sub.add_parser("headline", help="the abstract's aggregate numbers")
    p.add_argument("--apps", type=int, default=32)

    p = sub.add_parser("homog", help="homogeneous self-concurrency scaling")
    p.add_argument("--apps", nargs="+", default=None, metavar="APP")
    p.add_argument("--na", type=int, nargs="+", default=[4, 8, 16])

    p = sub.add_parser(
        "autotune",
        help="search launch orders beyond the five named policies",
    )
    p.add_argument("--pair", nargs=2, default=["nn", "srad"])
    p.add_argument("--apps", type=int, default=16)
    p.add_argument("--objective", default="makespan",
                   choices=("makespan", "energy", "edp"))
    p.add_argument("--restarts", type=int, default=2)
    p.add_argument("--swaps", type=int, default=15)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "streaming",
        help="online dispatch of a Poisson job stream (future-work demo)",
    )
    p.add_argument("--rate", type=float, default=12000.0)
    p.add_argument("--duration", type=float, default=0.006)
    p.add_argument("--streams", type=int, default=16)
    p.add_argument("--power-cap", type=float, default=70.0)

    p = sub.add_parser(
        "serve",
        help="overload-resilient serving: bounded admission, SLO shedding, "
        "breakers, crash-safe journal",
    )
    p.add_argument("--rate", type=float, default=12000.0,
                   help="mean arrivals per second")
    p.add_argument("--duration", type=float, default=0.006,
                   help="arrival-trace length (simulated seconds)")
    p.add_argument("--streams", type=int, default=16)
    p.add_argument("--cap", type=int, default=4,
                   help="concurrency cap (0 = greedy/unbounded)")
    p.add_argument("--qdepth", type=int, default=8,
                   help="admission queue depth (0 = unbounded)")
    p.add_argument("--qpolicy", default="shed-oldest",
                   choices=("block", "reject", "shed-oldest"),
                   help="backpressure policy when the queue is full")
    p.add_argument("--slo", type=float, default=4.0,
                   help="SLO deadline as a multiple of the serial-baseline "
                   "runtime (0 disables SLOs)")
    p.add_argument("--slo-jitter", type=float, default=0.1,
                   help="relative per-job deadline jitter")
    p.add_argument("--no-shed", action="store_true",
                   help="keep jobs whose deadline is already unreachable")
    p.add_argument("--breaker", type=int, default=0,
                   help="consecutive faults that open an app type's circuit "
                   "breaker (0 disables breakers)")
    p.add_argument("--breaker-cooldown", type=float, default=None,
                   help="seconds an open breaker waits before its half-open "
                   "probe (default: duration/10)")
    p.add_argument("--launch-fails", type=float, default=0.0,
                   help="expected transient launch failures over the run")
    p.add_argument("--crash-at", type=float, default=None,
                   help="kill the harness at this simulated time "
                   "(exercise the journal)")
    p.add_argument("--journal", type=Path, default=None,
                   help="crash-safe JSONL outcome journal path")
    p.add_argument("--resume", action="store_true",
                   help="resume a crashed run from --journal")
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser(
        "schedule",
        help="adaptive batch scheduling: online ordering, sync and width",
    )
    p.add_argument("--policy", default="bandit",
                   help="scheduling policy (see repro.scheduling.POLICY_NAMES)")
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=8,
                   help="instances per batch (split across the pair)")
    p.add_argument("--batches", type=int, default=12,
                   help="number of admitted batches to serve")
    p.add_argument("--width", type=int, default=None,
                   help="stream-width cap per batch (default: batch size)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epsilon", type=float, default=0.1,
                   help="bandit exploration probability")
    p.add_argument("--journal", type=Path, default=None,
                   help="crash-safe decision journal path")
    p.add_argument("--resume", action="store_true",
                   help="resume a crashed run from --journal")
    p.add_argument("--crash-after", type=int, default=None, metavar="N",
                   help="kill the run after N batches (exercise the journal)")

    p = sub.add_parser(
        "resilience",
        help="fault-injection study: clean vs faulted run of one cell",
    )
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=8)
    p.add_argument("--streams", type=int, default=None,
                   help="NS (default: one stream per app)")
    p.add_argument("--seed", type=int, default=42,
                   help="seed for the fault plan and retry jitter")
    p.add_argument("--hangs", type=float, default=1.0,
                   help="expected kernel hangs over the run")
    p.add_argument("--launch-fails", type=float, default=1.0,
                   help="expected transient launch failures")
    p.add_argument("--dma-stalls", type=float, default=1.0,
                   help="expected DMA engine stalls")
    p.add_argument("--dropouts", type=float, default=1.0,
                   help="expected power-sensor dropouts")
    p.add_argument("--hang-factor", type=float, default=20.0,
                   help="slowdown multiplier of a hung kernel")
    p.add_argument("--deadline-factor", type=float, default=4.0,
                   help="watchdog deadline as a multiple of serial runtime")
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument("--degrade-threshold", type=int, default=2,
                   help="faults per concurrency-halving step (0 disables)")

    p = sub.add_parser(
        "fleet",
        help="multi-device fleet: health-checked failover and checkpointed "
        "app migration",
    )
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=8)
    p.add_argument("--devices", type=int, default=4)
    p.add_argument("--streams", type=int, default=2,
                   help="streams per device")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--lose", type=int, default=None, metavar="DEV",
                   help="device index to lose mid-run")
    p.add_argument("--lose-at", type=float, default=None, metavar="T",
                   help="absolute simulated time of the loss (default: "
                   "mid-run, measured from a clean baseline)")
    p.add_argument("--throttle", type=int, default=None, metavar="DEV",
                   help="device index to thermally throttle")
    p.add_argument("--throttle-at", type=float, default=0.0, metavar="T",
                   help="throttle window start (absolute simulated time)")
    p.add_argument("--throttle-factor", type=float, default=4.0,
                   help="slowdown multiplier inside the throttle window")
    p.add_argument("--throttle-for", type=float, default=2e-3, metavar="S",
                   help="throttle window length (simulated seconds)")
    p.add_argument("--gray", type=int, default=None, metavar="DEV",
                   help="device index to gray-degrade: it keeps "
                   "heartbeating but runs slow")
    p.add_argument("--gray-kind", default="smx_slowdown",
                   choices=["smx_slowdown", "dma_stretch", "clock_jitter"],
                   help="degradation flavor (default: smx_slowdown)")
    p.add_argument("--gray-at", type=float, default=0.0, metavar="T",
                   help="degradation window start (absolute simulated time)")
    p.add_argument("--gray-for", type=float, default=1.0, metavar="S",
                   help="degradation window length (simulated seconds)")
    p.add_argument("--gray-factor", type=float, default=4.0,
                   help="latency stretch inside the gray window")
    p.add_argument("--domains", type=int, default=None, metavar="RAILS",
                   help="attach a fault-domain topology with this many "
                   "power rails (devices split into contiguous blocks)")
    p.add_argument("--blast", nargs=2, default=None,
                   metavar=("LEVEL", "INDEX"),
                   help="correlated loss of one whole fault domain, e.g. "
                   "'--blast rail 0' (requires --domains)")
    p.add_argument("--blast-at", type=float, default=None, metavar="T",
                   help="absolute simulated time of the blast (default: "
                   "mid-run, measured from a clean baseline)")
    p.add_argument("--blast-skew", type=float, default=0.0, metavar="S",
                   help="stagger the domain members' failures uniformly "
                   "over [0, S) seconds (rails collapse, not step)")
    p.add_argument("--storm-control", action="store_true",
                   help="pace failover through the capacity-aware "
                   "migration queue instead of migrating all at once")
    p.add_argument("--storm-inflight", type=int, default=None,
                   help="recovery slots per surviving device "
                   "(default: StormControlConfig)")
    p.add_argument("--storm-pace", type=float, default=None,
                   help="migration queue drain period in simulated "
                   "seconds (default: StormControlConfig)")
    p.add_argument("--hedge", action="store_true",
                   help="enable straggler detection and hedged execution")
    p.add_argument("--hedge-budget", type=float, default=None,
                   help="duplicate-work budget as a fraction of the "
                   "batch's kernels (default: HedgeConfig)")
    p.add_argument("--hedge-interval", type=float, default=None,
                   help="straggler scan interval in simulated seconds "
                   "(default: HedgeConfig)")
    p.add_argument("--heartbeat", type=float, default=None,
                   help="health heartbeat interval (default: FleetConfig)")
    p.add_argument("--detect-latency", type=float, default=None,
                   help="loss detection latency (default: FleetConfig)")
    p.add_argument("--no-failover", action="store_true",
                   help="let apps on a lost device fail instead of migrating")
    p.add_argument("--no-checkpoint", action="store_true",
                   help="migrate from scratch instead of the last checkpoint")
    p.add_argument("--crash-at", type=float, default=None,
                   help="kill the harness at this simulated time "
                   "(exercise the journal)")
    p.add_argument("--journal", type=Path, default=None,
                   help="crash-safe JSONL checkpoint/failover journal path")
    p.add_argument("--resume", action="store_true",
                   help="resume a crashed run from --journal")

    p = sub.add_parser(
        "telemetry",
        help="run one cell with live telemetry: metrics table, sparklines, "
        "optional Prometheus/JSONL dumps",
    )
    p.add_argument("--pair", nargs=2, default=["gaussian", "needle"])
    p.add_argument("--apps", type=int, default=8)
    p.add_argument("--streams", type=int, default=None,
                   help="NS (default: one stream per app)")
    p.add_argument("--sync", action="store_true",
                   help="enable the transfer mutex (Figure 8 memory mode)")
    p.add_argument("--interval", type=float, default=None,
                   help="sample interval in simulated seconds (default: the "
                   "15 ms sensor rate; use ~makespan/100 for dense lines)")
    p.add_argument("--filter", default=None, metavar="SUBSTR",
                   help="only show series whose key contains SUBSTR")
    p.add_argument("--width", type=int, default=40,
                   help="sparkline width in columns")
    p.add_argument("--prom", type=Path, default=None, metavar="FILE",
                   help="write Prometheus text exposition here")
    p.add_argument("--jsonl", type=Path, default=None, metavar="FILE",
                   help="write JSONL metric snapshots here")

    p = sub.add_parser(
        "trace",
        help="causal tracing: per-app critical paths, SLO burn-rate "
        "alerts, Chrome/OTLP span export",
    )
    p.add_argument("--rate", type=float, default=12000.0,
                   help="mean arrivals per second")
    p.add_argument("--duration", type=float, default=0.006,
                   help="arrival-trace length (simulated seconds)")
    p.add_argument("--streams", type=int, default=16)
    p.add_argument("--cap", type=int, default=4,
                   help="concurrency cap (0 = greedy/unbounded)")
    p.add_argument("--slo", type=float, default=4.0,
                   help="SLO deadline as a multiple of the serial-baseline "
                   "runtime (0 disables SLOs)")
    p.add_argument("--slo-jitter", type=float, default=0.1,
                   help="relative per-job deadline jitter")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--top", type=int, default=5,
                   help="how many slowest traces to break down")
    p.add_argument("--burn-budget", type=float, default=0.05,
                   help="SLO error budget for the burn-rate monitor "
                   "(fraction of requests allowed to miss)")
    p.add_argument("--chrome", type=Path, default=None, metavar="FILE",
                   help="write a Chrome/Perfetto trace with the causal "
                   "spans merged in")
    p.add_argument("--otlp", type=Path, default=None, metavar="FILE",
                   help="write OTLP-shaped JSONL spans here")
    p.add_argument("--alerts", type=Path, default=None, metavar="FILE",
                   help="journal burn-rate alert records here (fenced, "
                   "crash-safe)")

    p = sub.add_parser(
        "traffic",
        help="multi-tenant traffic scenarios: open-loop serving, trace "
        "record/replay, per-policy SLO-goodput leaderboards",
    )
    p.add_argument("--scenario", default="steady",
                   help="canonical scenario: steady, burst, diurnal or "
                   "overload")
    p.add_argument("--requests", type=int, default=2000,
                   help="arrivals to stream through the scenario")
    p.add_argument("--policy", default="reject",
                   help="queue policy (block/reject/shed-oldest) or "
                   "'greedy' (unbounded admission)")
    p.add_argument("--cap", type=int, default=None,
                   help="concurrency cap (default: the scenario's)")
    p.add_argument("--qdepth", type=int, default=64,
                   help="admission queue depth")
    p.add_argument("--streams", type=int, default=16)
    p.add_argument("--seed", type=int, default=None,
                   help="override the scenario's seed")
    p.add_argument("--record", type=Path, default=None, metavar="FILE",
                   help="record the arrival trace to FILE (checksummed, "
                   "with a FILE.cursor sidecar for crash-resume) and exit")
    p.add_argument("--replay", type=Path, default=None, metavar="FILE",
                   help="serve from a recorded trace instead of generating "
                   "inline (fingerprint-checked)")
    p.add_argument("--journal", type=Path, default=None,
                   help="crash-safe serving outcome journal path")
    p.add_argument("--resume", action="store_true",
                   help="resume a crashed run (serving journal or trace "
                   "recording)")
    p.add_argument("--batched", action="store_true",
                   help="score batch-scheduler policies on the scenario "
                   "instead (SLO-goodput leaderboard)")
    p.add_argument("--policies", nargs="+",
                   default=["bandit", "naive-fifo", "reverse-fifo"],
                   help="with --batched: scheduler policies to sweep")
    p.add_argument("--batch-size", type=int, default=8,
                   help="with --batched: admission batch size")

    p = sub.add_parser(
        "verify",
        help="scan (and optionally repair) crash-safe journals offline",
    )
    p.add_argument("paths", type=Path, nargs="+", metavar="JOURNAL",
                   help="journal/checkpoint files to check")
    p.add_argument("--repair", action="store_true",
                   help="truncate each file to its valid prefix, "
                   "quarantining the corrupt suffix to a sidecar")
    p.add_argument("--no-quarantine", action="store_true",
                   help="with --repair, discard the corrupt suffix instead "
                   "of writing the .quarantine sidecar")

    p = sub.add_parser(
        "report",
        help="assemble EXPERIMENTS-style markdown from results/ CSVs",
    )
    p.add_argument(
        "--results", type=Path, default=Path("results"),
        help="directory with the benchmark CSVs",
    )
    p.add_argument(
        "--write", type=Path, default=None,
        help="write the report to this file instead of stdout",
    )

    return parser


def _emit(rows: List[dict], title: str, out: Optional[Path], name: str) -> None:
    print(format_table(rows, title=title))
    if out is not None:
        path = write_csv(rows, out / f"{name}.csv")
        print(f"(wrote {path})")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    scale = args.scale
    out = args.out

    if args.command == "list":
        print("applications:", ", ".join(list_apps()))
        print("pairs:", ", ".join(f"{x}+{y}" for x, y in all_pairs()))
        print(
            "experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 "
            "timeline table3 headline homog autotune streaming serve "
            "schedule resilience fleet telemetry trace traffic verify report"
        )
        return 0

    if args.command == "verify":
        # Offline integrity pass: no experiment stack needed, just the
        # record layer.  Exit 0 only if every file is (or was repaired to)
        # a clean valid prefix.
        from .integrity.record import (
            UnknownJournalFormat,
            recover_file,
            scan_file,
        )

        bad = 0
        for path in args.paths:
            try:
                if args.repair:
                    _, _, report = recover_file(
                        path, quarantine=not args.no_quarantine
                    )
                else:
                    _, _, report, _ = scan_file(path)
            except FileNotFoundError:
                print(f"{path}: no such file")
                bad += 1
                continue
            except UnknownJournalFormat as exc:
                print(f"{path}: {exc}")
                bad += 1
                continue
            print(report.describe())
            if not report.clean and not args.repair:
                bad += 1
        return 1 if bad else 0

    # Import lazily: experiment modules pull in the whole stack.
    from .core import experiments as ex

    if args.command == "fig3":
        orders = ex.fig3_orders(m=args.m, n=args.n)
        for name, signature in orders.items():
            print(f"{name:>22}: {' '.join(signature)}")
        return 0

    if args.command == "fig4":
        pairs = [tuple(args.pair)] if args.pair else None
        result = ex.fig4_concurrency(pairs=pairs, na_values=args.na, scale=scale)
        rows = [
            {
                "pair": f"{r.pair[0]}+{r.pair[1]}",
                "NA": r.num_apps,
                "scenario": r.scenario,
                "NS": r.num_streams,
                "serial_ms": r.serial_makespan * 1e3,
                "concurrent_ms": r.makespan * 1e3,
                "improvement_pct": r.improvement_pct,
            }
            for r in result.rows
        ]
        _emit(rows, "Figure 4 — concurrency speedup vs serial", out, "fig4")
        for scenario in ("half", "full"):
            mx, avg = result.stats(scenario)
            print(f"{scenario}: max {mx:.1f}%  avg {avg:.1f}%")
        return 0

    if args.command == "fig5":
        result = ex.fig5_oversubscription()
        _emit(result.rows(), "Figure 5 — LEFTOVER oversubscription", out, "fig5")
        print(
            f"requested {result.total_requested_blocks} thread blocks vs "
            f"ceiling {result.device_block_ceiling}; "
            f"max kernel concurrency {result.max_kernel_concurrency}; "
            f"makespan {result.makespan * 1e6:.0f} us "
            f"(serialized {result.serialized_makespan * 1e6:.0f} us)"
        )
        return 0

    if args.command == "fig6":
        result = ex.fig6_effective_latency(
            pair=tuple(args.pair), na_values=args.na, scale=scale
        )
        rows = [
            {
                "NA": r.num_apps,
                "expected_ms": r.expected_ms,
                "default_ms": r.default_ms,
                "default_x": r.default_ratio,
                "sync_ms": r.sync_ms,
                "sync_x": r.sync_ratio,
            }
            for r in result.rows
        ]
        _emit(rows, "Figure 6 — effective HtoD transfer latency", out, "fig6")
        return 0

    if args.command in ("fig7", "fig8"):
        from .scheduling.orders import ordering_rows

        fn = ex.fig7_ordering_default if args.command == "fig7" else ex.fig8_ordering_sync
        result = fn(num_apps=args.apps, scale=scale)
        rows = ordering_rows(result)
        label = "default memory" if args.command == "fig7" else "memory sync"
        _emit(rows, f"Figure {args.command[3:]} — ordering effect ({label})", out, args.command)
        mx, avg = result.stats()
        print(f"ordering spread: max {mx:.1f}%  avg {avg:.1f}%")
        return 0

    if args.command == "fig9":
        result = ex.fig9_power_concurrency(
            pair=tuple(args.pair), num_apps=args.apps, scale=scale
        )
        rows = [
            {
                "scenario": s.label,
                "NS": s.num_streams,
                "makespan_ms": s.makespan * 1e3,
                "energy_J": s.energy,
                "avg_power_W": s.average_power,
                "peak_power_W": s.peak_power,
            }
            for s in result.scenarios
        ]
        _emit(rows, "Figure 9 — power under increasing concurrency", out, "fig9")
        pair, best = result.best_energy_improvement
        print(
            f"energy reduction (full vs serial): avg "
            f"{result.average_energy_improvement:.1f}%, best {best:.1f}% "
            f"({pair[0]}+{pair[1]})"
        )
        return 0

    if args.command == "fig10":
        result = ex.fig10_power_sync(
            pair=tuple(args.pair), num_apps=args.apps, scale=scale
        )
        rows = [
            {
                "scenario": s.label,
                "makespan_ms": s.makespan * 1e3,
                "energy_J": s.energy,
                "avg_power_W": s.average_power,
                "peak_power_W": s.peak_power,
            }
            for s in result.scenarios
        ]
        _emit(rows, "Figure 10 — power: default vs memory sync", out, "fig10")
        pair, best = result.best_energy_improvement
        print(
            f"power delta (sync vs default): {result.power_delta_pct:+.1f}%; "
            f"energy reduction vs serial: avg "
            f"{result.average_energy_improvement:.1f}%, best {best:.1f}% "
            f"({pair[0]}+{pair[1]})"
        )
        return 0

    if args.command == "timeline":
        from .core.runner import quick_run

        run = quick_run(
            pair=tuple(args.pair),
            num_apps=args.apps,
            num_streams=args.apps,
            memory_sync=args.sync,
            scale=scale,
            record_trace=True,
        )
        label = "Figure 2 (memory sync)" if args.sync else "Figure 1 (default)"
        print(render_timeline(run.harness.trace, width=args.width, title=label))
        print(run.summary())
        from .analysis.profile_summary import kernel_summary, transfer_summary

        print()
        print(format_table(
            kernel_summary(run.harness.trace), title="Kernel summary"
        ))
        print()
        print(format_table(
            transfer_summary(run.harness.trace), title="Transfer summary"
        ))
        return 0

    if args.command == "table3":
        rows = ex.table3_geometry(scale=scale)
        _emit(rows, "Table III — kernel launch geometry", out, "table3")
        return 0

    if args.command == "headline":
        result = ex.headline_numbers(num_apps=args.apps, scale=scale)
        _emit(result.rows(), "Headline numbers (paper vs measured)", out, "headline")
        return 0

    if args.command == "homog":
        result = ex.homogeneous_scaling(
            apps=args.apps, na_values=args.na, scale=scale
        )
        rows = [
            {
                "app": r.app,
                "NA": r.num_apps,
                "serial_ms": r.serial_makespan * 1e3,
                "concurrent_ms": r.concurrent_makespan * 1e3,
                "improvement_pct": r.improvement_pct,
            }
            for r in result.rows
        ]
        _emit(rows, "Homogeneous self-concurrency scaling", out, "homog")
        app, best = result.best_improvement()
        print(f"best: {best:.1f}% ({app})")
        return 0

    if args.command == "autotune":
        from .core.autotune import OrderSearch
        from .core.workload import Workload
        from .framework.scheduler import schedule_signature

        workload = Workload.heterogeneous_pair(*args.pair, args.apps, scale=scale)
        search = OrderSearch(
            workload,
            num_streams=args.apps,
            objective=args.objective,
            seed=args.seed,
        )
        result = search.search(restarts=args.restarts, swaps_per_climb=args.swaps)
        rows = [
            {"seed_policy": name, args.objective: value}
            for name, value in sorted(result.seed_values.items(), key=lambda kv: kv[1])
        ]
        _emit(rows, f"Seed policies ({args.objective})", out, "autotune_seeds")
        print(
            f"\nbest after search: {result.best_value:.6g} "
            f"({result.evaluations} harness runs)"
        )
        print(
            f"vs best named policy : {result.improvement_over_best_seed_pct:+.2f}%"
        )
        print(
            f"vs worst named policy: {result.improvement_over_worst_seed_pct:+.2f}%"
        )
        signature = schedule_signature(workload.types, result.best_schedule)
        print("best schedule:", " ".join(signature))
        return 0

    if args.command == "resilience":
        from .core.runner import ExperimentRunner, RunConfig
        from .core.workload import Workload
        from .resilience import FaultPlan, ResilienceConfig, RetryPolicy

        streams = args.streams if args.streams is not None else args.apps
        workload = Workload.heterogeneous_pair(*args.pair, args.apps, scale=scale)
        runner = ExperimentRunner()
        clean = runner.run(
            RunConfig(workload=workload, num_streams=streams, seed=args.seed)
        )
        # Faults are planned over the clean run's horizon so the requested
        # expected counts are scale-independent.
        horizon = clean.harness.makespan
        plan = FaultPlan.generate(
            args.seed,
            horizon,
            kernel_hang_rate=args.hangs / horizon,
            launch_fail_rate=args.launch_fails / horizon,
            dma_stall_rate=args.dma_stalls / horizon,
            power_dropout_rate=args.dropouts / horizon,
            targets=tuple(args.pair),
            hang_factor=args.hang_factor,
            stall_duration=horizon * 0.1,
            dropout_duration=horizon * 0.1,
        )
        resil = ResilienceConfig(
            plan=plan,
            retry=RetryPolicy(
                max_attempts=args.max_attempts, base_delay=horizon * 0.01
            ),
            deadline_factor=args.deadline_factor,
            degradation_threshold=args.degrade_threshold,
            seed=args.seed,
        )
        faulted = runner.run(
            RunConfig(
                workload=workload,
                num_streams=streams,
                seed=args.seed,
                resilience=resil,
            )
        )
        rows = []
        for label, run in (("clean", clean), ("faulted", faulted)):
            summary = run.harness.resilience
            rows.append(
                {
                    "scenario": label,
                    "makespan_ms": run.makespan * 1e3,
                    "energy_J": run.energy,
                    "avg_power_W": run.average_power,
                    "completed": sum(
                        1 for r in run.harness.records if not r.failed
                    ),
                    "failed": sum(1 for r in run.harness.records if r.failed),
                    "retries": summary.retries if summary is not None else 0,
                }
            )
        _emit(
            rows,
            f"Resilience — {args.pair[0]}+{args.pair[1]} NA={args.apps} "
            f"NS={streams} ({len(plan)} planned faults)",
            out,
            "resilience",
        )
        summary = faulted.harness.resilience
        _emit(
            [{"metric": k, "value": v} for k, v in summary.rows()],
            "Resilience summary (faulted run)",
            out,
            "resilience_summary",
        )
        return 0

    if args.command == "fleet":
        import numpy as np

        from .core.workload import Workload
        from .fleet import (
            FleetConfig,
            FleetHarness,
            HedgeConfig,
            StormControlConfig,
            TopologyConfig,
        )
        from .fleet.topology import FleetTopology
        from .framework.scheduler import SchedulingOrder
        from .resilience.faults import FaultKind, FaultPlan, FaultSpec
        from .sim.errors import HarnessCrash

        workload = Workload.heterogeneous_pair(*args.pair, args.apps, scale=scale)

        def instantiate():
            rng = np.random.default_rng(args.seed)
            schedule = workload.schedule(SchedulingOrder.NAIVE_FIFO, rng=rng)
            return workload.instantiate(schedule)

        fleet_kwargs = dict(
            num_devices=args.devices,
            failover=not args.no_failover,
            checkpoint=not args.no_checkpoint,
            seed=args.seed,
        )
        if args.heartbeat is not None:
            fleet_kwargs["heartbeat_interval"] = args.heartbeat
        if args.detect_latency is not None:
            fleet_kwargs["detection_latency"] = args.detect_latency
        if args.hedge:
            hedge_kwargs = {}
            if args.hedge_budget is not None:
                hedge_kwargs["budget_fraction"] = args.hedge_budget
            if args.hedge_interval is not None:
                hedge_kwargs["check_interval"] = args.hedge_interval
            fleet_kwargs["hedging"] = HedgeConfig(**hedge_kwargs)
        topology = None
        if args.domains is not None:
            fleet_kwargs["topology"] = TopologyConfig(rails=args.domains)
            topology = FleetTopology(args.devices, fleet_kwargs["topology"])
        if args.storm_control:
            storm_kwargs = {}
            if args.storm_inflight is not None:
                storm_kwargs["max_inflight_per_device"] = args.storm_inflight
            if args.storm_pace is not None:
                storm_kwargs["pace_interval"] = args.storm_pace
            fleet_kwargs["storm"] = StormControlConfig(**storm_kwargs)
        fleet = FleetConfig(**fleet_kwargs)

        blast_members = ()
        if args.blast is not None:
            if topology is None:
                print("--blast requires --domains", file=sys.stderr)
                return 2
            level, index = args.blast[0], int(args.blast[1])
            blast_members = topology.members(level, index)

        def _mid_run(devices):
            # Measure a clean baseline to place the loss mid-run on the
            # target device(s) (fault times are absolute simulated
            # seconds, and the interesting window depends on the
            # schedule).
            baseline = FleetHarness(
                instantiate(), fleet,
                num_streams=args.streams, seed=args.seed,
            ).run()
            spans = [
                r for r in baseline.records if r.device_index in devices
            ]
            if spans:
                target = max(spans, key=lambda r: r.complete_time - r.gpu_start)
                return (target.gpu_start + target.complete_time) / 2
            return baseline.makespan / 2

        lose_at = args.lose_at
        if args.lose is not None and lose_at is None:
            lose_at = _mid_run({args.lose % args.devices})

        faults = []
        if blast_members:
            blast_at = args.blast_at
            if blast_at is None:
                blast_at = _mid_run(set(blast_members))
            faults.extend(
                FaultPlan.correlated(
                    blast_members,
                    kind=FaultKind.DEVICE_LOSS,
                    time=blast_at,
                    skew=args.blast_skew,
                    seed=args.seed,
                ).faults
            )
        if args.lose is not None:
            faults.append(
                FaultSpec(
                    kind=FaultKind.DEVICE_LOSS, time=lose_at, device=args.lose
                )
            )
        if args.throttle is not None:
            faults.append(
                FaultSpec(
                    kind=FaultKind.DEVICE_THROTTLE,
                    time=args.throttle_at,
                    device=args.throttle,
                    factor=args.throttle_factor,
                    duration=args.throttle_for,
                )
            )
        if args.crash_at is not None:
            faults.append(
                FaultSpec(kind=FaultKind.HARNESS_CRASH, time=args.crash_at)
            )
        if args.gray is not None:
            # FaultPlan.gray validates the kind and builds the window;
            # fold its specs into the combined plan.
            faults.extend(
                FaultPlan.gray(
                    args.gray,
                    kind=args.gray_kind,
                    start=args.gray_at,
                    duration=args.gray_for,
                    factor=args.gray_factor,
                ).faults
            )

        try:
            result = FleetHarness(
                instantiate(),
                fleet,
                num_streams=args.streams,
                plan=FaultPlan(faults) if faults else None,
                seed=args.seed,
                journal_path=args.journal,
                resume=args.resume,
            ).run()
        except HarnessCrash as crash:
            print(f"harness crashed mid-run: {crash}")
            if args.journal is not None:
                print(
                    f"journal preserved at {args.journal}; rerun with "
                    "--resume to recover deterministically"
                )
            return 3

        rows = [
            {
                "device": d.index,
                **({"domain": d.domain} if d.domain is not None else {}),
                "state": d.state,
                "lost_at_ms": (
                    d.loss_time * 1e3 if d.loss_time is not None else ""
                ),
                "detected_ms": (
                    d.detected_time * 1e3
                    if d.detected_time is not None else ""
                ),
                "apps_completed": d.apps_completed,
                "goodput_per_s": d.goodput(result.makespan),
                "energy_J": d.energy,
                "peak_power_W": d.peak_power,
            }
            for d in result.devices
        ]
        _emit(
            rows,
            f"Fleet — {args.pair[0]}+{args.pair[1]} NA={args.apps} on "
            f"{args.devices} devices x {args.streams} streams",
            out,
            "fleet",
        )
        if result.recoveries:
            _emit(
                [
                    {
                        "device": r["device"],
                        **(
                            {"domain": topology.label(r["device"])}
                            if topology is not None
                            else {}
                        ),
                        "lost_ms": r["lost"] * 1e3,
                        "detected_ms": r["detected"] * 1e3,
                        "resumed_ms": r["resumed"] * 1e3,
                        "apps_migrated": len(r["apps"]),
                        "reexecuted_kernels": r["reexecuted_kernels"],
                    }
                    for r in result.recoveries
                ],
                "Recovery timeline",
                out,
                "fleet_recoveries",
            )
        if result.storm_queued:
            print(
                f"storm control: {result.storm_queued} migrations queued "
                f"({result.storm_peak_depth} peak depth), "
                f"{result.storm_released} paced onto survivors, "
                f"{result.storm_failed} failed with no target"
            )
        if result.hedges_launched:
            _emit(
                [
                    {
                        "app": e["app"],
                        "from_dev": e["from"],
                        "to_dev": e["to"],
                        "fork_kernels": e["kernels"],
                        "remaining": e["remaining"],
                        "launched_ms": e["t"] * 1e3,
                    }
                    for e in result.hedge_events
                    if e["event"] == "hedge"
                ],
                "Hedged executions",
                out,
                "fleet_hedges",
            )
            print(
                f"hedging: {result.hedges_launched} launched, "
                f"{result.hedge_wins} replica wins, "
                f"{result.duplicate_kernels} duplicate kernels"
            )
        if result.resumed:
            print(
                f"resumed from journal: {result.recovered_entries} entries "
                "verified against the replay"
            )
        print(result.summary())
        return 0

    if args.command == "telemetry":
        from .core.runner import quick_run
        from .telemetry import (
            DEFAULT_SAMPLE_INTERVAL,
            Telemetry,
            generate_latest,
            metrics_table,
            write_jsonl,
        )

        streams = args.streams if args.streams is not None else args.apps
        interval = (
            args.interval if args.interval is not None
            else DEFAULT_SAMPLE_INTERVAL
        )
        telemetry = Telemetry(interval=interval)
        run = quick_run(
            pair=tuple(args.pair),
            num_apps=args.apps,
            num_streams=streams,
            memory_sync=args.sync,
            scale=scale,
            telemetry=telemetry,
        )
        rows = metrics_table(
            telemetry.snapshots, pattern=args.filter, width=args.width
        )
        _emit(
            rows,
            f"Telemetry — {args.pair[0]}+{args.pair[1]} NA={args.apps} "
            f"NS={streams} ({len(telemetry.snapshots)} samples)",
            out,
            "telemetry",
        )
        print(run.summary())
        if args.prom is not None:
            args.prom.parent.mkdir(parents=True, exist_ok=True)
            args.prom.write_text(generate_latest(telemetry.registry))
            print(f"(wrote {args.prom})")
        if args.jsonl is not None:
            args.jsonl.parent.mkdir(parents=True, exist_ok=True)
            write_jsonl(telemetry.snapshots, args.jsonl)
            print(f"(wrote {args.jsonl})")
        return 0

    if args.command == "trace":
        from .analysis import (
            aggregate_critical_paths,
            extract_critical_paths,
            to_chrome_trace,
            top_slowest,
        )
        from .core.streaming import (
            ConcurrencyCapDispatcher,
            GreedyDispatcher,
            poisson_arrivals,
        )
        from .serving import ServingConfig, run_serving
        from .sim.trace import TraceRecorder
        from .telemetry import (
            BurnRateConfig,
            Tracing,
            spans_to_chrome_events,
            write_otlp_jsonl,
        )

        arrivals = poisson_arrivals(
            rate=args.rate,
            duration=args.duration,
            type_mix=[("nn", 2), ("needle", 1)],
            seed=args.seed,
        )
        config = ServingConfig(
            slo_factor=args.slo,
            slo_jitter=args.slo_jitter,
            seed=args.seed,
        )
        dispatcher = (
            ConcurrencyCapDispatcher(args.cap) if args.cap > 0
            else GreedyDispatcher()
        )
        tracing = Tracing(
            seed=args.seed,
            burn=BurnRateConfig(budget=args.burn_budget),
            alert_journal=args.alerts,
        )
        result = run_serving(
            arrivals,
            dispatcher,
            config,
            num_streams=args.streams,
            scale=scale,
            tracing=tracing,
        )
        paths = extract_critical_paths(tracing.tracer)
        rows = [
            {
                "category": r["category"],
                "seconds_ms": r["seconds"] * 1e3,
                "share_pct": r["share"] * 100.0,
            }
            for r in aggregate_critical_paths(paths)
        ]
        _emit(
            rows,
            f"Fleet critical path ({len(paths)} traces, "
            f"{len(tracing.spans)} spans)",
            out,
            "trace_aggregate",
        )
        missed = [p for p in paths if p.outcome != "completed"]
        if missed and len(missed) < len(paths):
            rows = [
                {
                    "category": r["category"],
                    "seconds_ms": r["seconds"] * 1e3,
                    "share_pct": r["share"] * 100.0,
                }
                for r in aggregate_critical_paths(
                    paths, predicate=lambda p: p.outcome != "completed"
                )
            ]
            _emit(
                rows,
                f"Critical path of degraded traces ({len(missed)} "
                "shed/failed/missed)",
                out,
                "trace_degraded",
            )
        rows = []
        for p in top_slowest(paths, args.top):
            dominant = p.dominant
            rows.append(
                {
                    "app": p.app,
                    "outcome": p.outcome,
                    "sojourn_ms": p.sojourn * 1e3,
                    "dominant": dominant,
                    "dominant_pct": p.share(dominant) * 100.0,
                }
            )
        _emit(rows, f"Top {args.top} slowest traces", out, "trace_slowest")
        if tracing.alerts:
            fired = sum(
                1 for a in tracing.alerts if a["event"] == "alert"
            )
            print(
                f"burn-rate alerts: {fired} fired, "
                f"{len(tracing.alerts) - fired} resolved"
            )
            if args.alerts is not None:
                print(f"(alert journal at {args.alerts})")
        print(result.summary())
        if args.chrome is not None:
            args.chrome.parent.mkdir(parents=True, exist_ok=True)
            payload = to_chrome_trace(
                TraceRecorder(),
                span_events=spans_to_chrome_events(tracing.spans),
            )
            import json as _json

            args.chrome.write_text(_json.dumps(payload))
            print(f"(wrote {args.chrome})")
        if args.otlp is not None:
            args.otlp.parent.mkdir(parents=True, exist_ok=True)
            write_otlp_jsonl(args.otlp, tracing.spans)
            print(f"(wrote {args.otlp})")
        return 0

    if args.command == "report":
        from .analysis.report import build_report

        report = build_report(args.results)
        if args.write is not None:
            args.write.write_text(report)
            print(f"wrote {args.write}")
        else:
            print(report)
        return 0

    if args.command == "streaming":
        from .core.streaming import (
            ConcurrencyCapDispatcher,
            GreedyDispatcher,
            PowerCapDispatcher,
            poisson_arrivals,
            run_streaming,
        )

        arrivals = poisson_arrivals(
            rate=args.rate,
            duration=args.duration,
            type_mix=[("nn", 2), ("needle", 1)],
            seed=7,
        )
        rows = []
        for dispatcher in (
            GreedyDispatcher(),
            ConcurrencyCapDispatcher(1),
            PowerCapDispatcher(args.power_cap),
        ):
            result = run_streaming(
                arrivals, dispatcher, num_streams=args.streams, scale=scale
            )
            rows.append(
                {
                    "policy": result.dispatcher,
                    "jobs": result.jobs,
                    "mean_sojourn_ms": result.mean_sojourn * 1e3,
                    "p95_sojourn_ms": result.p95_sojourn * 1e3,
                    "jobs_per_s": result.throughput,
                    "avg_power_W": result.average_power,
                    "energy_J": result.energy,
                }
            )
        _emit(rows, f"Streaming dispatch ({len(arrivals)} arrivals)", out, "streaming")
        return 0

    if args.command == "serve":
        from .core.streaming import (
            ConcurrencyCapDispatcher,
            GreedyDispatcher,
            poisson_arrivals,
        )
        from .resilience import FaultPlan
        from .resilience.faults import FaultKind, FaultSpec
        from .serving import BreakerConfig, ServingConfig, run_serving
        from .sim.errors import HarnessCrash

        arrivals = poisson_arrivals(
            rate=args.rate,
            duration=args.duration,
            type_mix=[("nn", 2), ("needle", 1)],
            seed=args.seed,
        )
        faults = []
        if args.launch_fails > 0:
            faults.extend(
                FaultPlan.generate(
                    args.seed,
                    args.duration,
                    launch_fail_rate=args.launch_fails / args.duration,
                    targets=("nn", "needle"),
                ).faults
            )
        if args.crash_at is not None:
            faults.append(
                FaultSpec(kind=FaultKind.HARNESS_CRASH, time=args.crash_at)
            )
        breaker = None
        if args.breaker > 0:
            breaker = BreakerConfig(
                threshold=args.breaker,
                cooldown=args.breaker_cooldown or args.duration / 10,
            )
        config = ServingConfig(
            queue_depth=args.qdepth,
            queue_policy=args.qpolicy,
            slo_factor=args.slo,
            slo_jitter=args.slo_jitter,
            shed_unreachable=not args.no_shed,
            breaker=breaker,
            plan=FaultPlan(faults) if faults else None,
            seed=args.seed,
        )
        dispatcher = (
            ConcurrencyCapDispatcher(args.cap) if args.cap > 0
            else GreedyDispatcher()
        )
        try:
            result = run_serving(
                arrivals,
                dispatcher,
                config,
                num_streams=args.streams,
                scale=scale,
                journal_path=args.journal,
                resume=args.resume,
            )
        except HarnessCrash as crash:
            print(f"harness crashed mid-run: {crash}")
            if args.journal is not None:
                print(
                    f"journal preserved at {args.journal}; rerun with "
                    "--resume to recover deterministically"
                )
            return 3
        rows = [
            {
                "policy": result.dispatcher,
                "arrivals": result.jobs,
                "completed": result.completed,
                "in_slo": result.deadline_met,
                "shed": result.shed,
                "failed": result.failed,
                "goodput_per_s": result.goodput,
                "throughput_per_s": result.throughput,
                "p99_sojourn_ms": result.p99_sojourn * 1e3,
                "avg_power_W": result.average_power,
            }
        ]
        _emit(rows, f"Serving ({len(arrivals)} arrivals)", out, "serving")
        if result.outcomes:
            _emit(
                [
                    {"outcome": k, "jobs": v}
                    for k, v in sorted(result.outcomes.items())
                ],
                "Outcome breakdown",
                out,
                "serving_outcomes",
            )
        if result.resumed:
            print(
                f"resumed from journal: {result.recovered_entries} entries "
                "verified against the replay"
            )
        print(result.summary())
        return 0

    if args.command == "schedule":
        from .serving import run_batched_serving
        from .sim.errors import HarnessCrash

        x, y = args.pair
        half = max(1, args.apps // 2)
        batch = [(x, half), (y, max(1, args.apps - half))]
        try:
            result = run_batched_serving(
                [batch] * args.batches,
                policy=args.policy,
                width=args.width,
                scale=scale,
                seed=args.seed,
                epsilon=args.epsilon,
                journal_path=args.journal,
                resume=args.resume,
                crash_after=args.crash_after,
            )
        except HarnessCrash as crash:
            print(f"harness crashed mid-run: {crash}")
            if args.journal is not None:
                print(
                    f"journal preserved at {args.journal}; rerun with "
                    "--resume to recover deterministically"
                )
            return 3
        rows = [
            {
                "batch": i,
                "order": b.decision.order_label,
                "sync": b.decision.memory_sync,
                "width": b.decision.num_streams,
                "explored": b.decision.explored,
                "predicted_ms": b.decision.predicted_makespan * 1e3,
                "observed_ms": b.makespan * 1e3,
            }
            for i, b in enumerate(result.batches)
        ]
        _emit(
            rows,
            f"Adaptive scheduling ({args.policy}, {x}+{y})",
            out,
            "schedule",
        )
        if result.resumed:
            print(
                f"resumed from journal: {result.recovered_entries} entries "
                "verified against the replay"
            )
        print(result.summary())
        return 0

    if args.command == "traffic":
        from dataclasses import replace as _replace

        from .analysis import (
            build_leaderboard,
            render_leaderboard,
            write_leaderboard_json,
        )
        from .sim.errors import HarnessCrash
        from .workload import (
            get_scenario,
            record_trace,
            run_traffic,
            run_traffic_batched,
        )

        scenario = get_scenario(args.scenario)
        if args.seed is not None:
            scenario = _replace(scenario, seed=args.seed)
        built = scenario.build(args.requests, scale=scale)

        if args.record is not None:
            cursor = args.record.with_name(args.record.name + ".cursor")
            try:
                count = record_trace(
                    built.stream(),
                    args.record,
                    built.fingerprint(),
                    cursor_path=cursor,
                    resume=args.resume,
                )
            except HarnessCrash as crash:
                print(f"recording crashed: {crash}; rerun with --resume")
                return 3
            print(
                f"recorded {count} arrivals to {args.record} "
                f"(cursors: {cursor})"
            )
            return 0

        if args.batched:
            cells = []
            for policy in args.policies:
                result = run_traffic_batched(
                    built, policy, batch_size=args.batch_size, scale=scale
                )
                cells.append(result.metrics())
            board = build_leaderboard(cells)
            print(render_leaderboard(board))
            if out is not None:
                path = write_leaderboard_json(
                    board,
                    out / "traffic_leaderboard.json",
                    meta={
                        "scenario": args.scenario,
                        "requests": args.requests,
                        "batch_size": args.batch_size,
                    },
                )
                print(f"(wrote {path})")
            return 0

        try:
            result = run_traffic(
                built,
                policy=args.policy,
                cap=args.cap,
                queue_depth=args.qdepth,
                num_streams=args.streams,
                scale=scale,
                trace_path=args.replay,
                journal_path=args.journal,
                resume=args.resume,
            )
        except HarnessCrash as crash:
            print(f"harness crashed mid-run: {crash}")
            if args.journal is not None:
                print(
                    f"journal preserved at {args.journal}; rerun with "
                    "--resume to recover deterministically"
                )
            return 3
        metrics = result.metrics()
        classes = metrics.pop("classes")
        summary_rows = [
            {"metric": k, "value": v} for k, v in metrics.items()
        ]
        print(
            format_table(
                summary_rows,
                title=f"[traffic: {built.name} / {args.policy}]",
            )
        )
        class_rows = [{"class": n, **p} for n, p in sorted(classes.items())]
        _emit(
            class_rows,
            "[per tenant class]",
            out,
            f"traffic_{built.name}_{args.policy}",
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
