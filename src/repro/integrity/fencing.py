"""Epoch/generation fencing for post-failover journal writes.

The split-brain window this closes: the :class:`~repro.fleet.coordinator.
FailoverCoordinator` declares a device lost after ``suspect_after`` missed
heartbeats, but the *declaration* is an observer-side event — an app
thread still bound to the "lost" device may have checkpoint writes in
flight.  Without fencing those writes interleave with the migrated
replica's writes in the fleet journal, and a later resume replays
checkpoints from two divergent executions of the same app.

The fix is the classic fencing-token protocol (Chubby/ZooKeeper style),
scaled down to one process:

1. Every fleet device carries a monotone **generation** counter in a
   :class:`GenerationFence`.
2. When an app binds (or re-binds after migration) to a device, it takes
   a :class:`FenceToken` — an immutable ``(device, generation)`` pair.
3. When the coordinator declares the device lost it **advances** the
   generation *before* re-placing any app.
4. Every checkpoint write presents its bind-time token; a
   :class:`FencedJournal` rejects tokens whose generation is no longer
   current with :class:`StaleGenerationError` and counts the rejection.

Writes that are legitimately post-loss (the coordinator's own
``device-lost`` / ``failover`` records, terminal app outcomes) are made
without a token and pass unfenced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "FenceToken",
    "GenerationFence",
    "FencedJournal",
    "StaleGenerationError",
]


class StaleGenerationError(Exception):
    """A write presented a fencing token from a superseded generation."""

    def __init__(self, token: "FenceToken", current: int) -> None:
        super().__init__(
            f"write fenced off: device {token.device_index} token is from "
            f"generation {token.generation} but the device is at "
            f"generation {current}"
        )
        self.token = token
        self.current = current


@dataclass(frozen=True)
class FenceToken:
    """Immutable proof of *when* the holder bound to a device.

    Captured at bind time and presented with every fenced write; never
    refreshed in place — re-binding after a migration issues a new token.
    """

    device_index: int
    generation: int


class GenerationFence:
    """Monotone per-device generation counters.

    Generations start at 0 and only ever advance (one per declared device
    loss), so token comparison is a single integer equality — cheap enough
    to sit on every checkpoint write.
    """

    def __init__(self) -> None:
        self._generations: Dict[int, int] = {}
        #: Total generation advances (== device-loss declarations fenced).
        self.advances: int = 0
        #: Writes rejected for carrying a stale token.
        self.rejected: int = 0

    def generation(self, device_index: int) -> int:
        """Current generation of ``device_index`` (0 if never advanced)."""
        return self._generations.get(device_index, 0)

    def token(self, device_index: int) -> FenceToken:
        """Issue a bind-time token for the device's current generation."""
        return FenceToken(device_index, self.generation(device_index))

    def advance(self, device_index: int) -> int:
        """Supersede every outstanding token for ``device_index``.

        Called by the coordinator at the instant a device is declared
        lost, *before* any app is re-placed, so no stale write can land
        after the first post-failover write.
        """
        new = self.generation(device_index) + 1
        self._generations[device_index] = new
        self.advances += 1
        return new

    def is_current(self, token: FenceToken) -> bool:
        return token.generation == self.generation(token.device_index)

    def check(self, token: FenceToken) -> None:
        """Raise :class:`StaleGenerationError` if the token is superseded."""
        current = self.generation(token.device_index)
        if token.generation != current:
            self.rejected += 1
            raise StaleGenerationError(token, current)


class FencedJournal:
    """Journal decorator that enforces fencing tokens on writes.

    Wraps any ``record(entry)`` duck type (``RunJournal`` in practice).
    Tokened writes are validated against the fence before they touch the
    file; tokenless writes pass through for record types that are
    legitimate after a loss.  Rejections are swallowed into
    :attr:`rejected` when ``strict`` is off (the fleet harness's mode:
    the stale writer is about to be migrated anyway, its write must
    simply not land) or re-raised when ``strict`` is on (tests, and any
    caller that wants the writer to observe its own demotion).
    """

    def __init__(self, journal, fence: GenerationFence, strict: bool = False) -> None:
        self.journal = journal
        self.fence = fence
        self.strict = strict
        #: Stale writes this wrapper refused to pass through.
        self.rejected: int = 0
        #: Entries the fence rejected, kept for the audit trail.
        self.rejections: List[dict] = []

    def record(self, entry: dict, token: Optional[FenceToken] = None) -> None:
        if token is not None:
            try:
                self.fence.check(token)
            except StaleGenerationError:
                self.rejected += 1
                self.rejections.append(dict(entry))
                if self.strict:
                    raise
                return
        self.journal.record(entry)

    # Pass the rest of the journal surface through untouched.

    def __getattr__(self, name):
        return getattr(self.journal, name)

    def __enter__(self) -> "FencedJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.journal.close()
