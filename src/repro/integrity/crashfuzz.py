"""Deterministic crash-point and corruption fuzzing for journaled stores.

The harness rests on one property every journal in this repo shares: a
fresh run's file grows **append-only** (one fsynced line per committed
record), so the on-disk state at any crash instant is exactly a *byte
prefix* of the uninterrupted run's final file — possibly cut mid-line.
That turns "kill the process at every persisted-write site" into "run
once, then enumerate every truncation of the reference bytes": the same
coverage, deterministic, and cheap enough for a per-PR CI lane.

Corruption is modelled the same way: :func:`enumerate_flips` XORs one
byte at seeded offsets, standing in for bit rot anywhere in the file.

For every :class:`CrashSite` the sweep writes the mutated bytes to a
scratch path and demands one of exactly two outcomes:

* **resume converges** — the resumed run recovers (truncating and
  quarantining whatever the envelope layer rejects), replays, and leaves
  the file *byte-identical* to the reference; or
* **clean rejection** — resume raises one of the caller's
  ``clean_errors`` (e.g. the header itself was destroyed), after which a
  *fresh* run over the same path must again be byte-identical.

Anything else — an unexpected exception type, or a file that ends up
different from the reference — is a silent-wrongness bug and fails the
sweep with the offending site pinned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CrashSite",
    "SweepReport",
    "enumerate_truncations",
    "enumerate_flips",
    "mutate",
    "run_crash_sweep",
]


@dataclass(frozen=True)
class CrashSite:
    """One point in the fuzz space.

    ``kind`` is ``"truncate"`` (the file ends at ``offset`` — a crash
    mid-write) or ``"flip"`` (the byte at ``offset`` is XORed with
    ``xor`` — corruption at rest).
    """

    kind: str
    offset: int
    xor: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("truncate", "flip"):
            raise ValueError(f"unknown crash-site kind {self.kind!r}")
        if self.kind == "flip" and not 1 <= self.xor <= 255:
            raise ValueError("flip sites need a non-zero xor byte")

    def describe(self) -> str:
        if self.kind == "truncate":
            return f"truncate@{self.offset}"
        return f"flip@{self.offset}^{self.xor:#04x}"


def enumerate_truncations(
    reference: bytes, stride: int = 1
) -> List[CrashSite]:
    """Every crash point: cut the file at each byte boundary.

    ``stride`` thins the sweep for the per-PR lane (every ``stride``-th
    boundary); the newline positions are always kept regardless, because
    record boundaries are where torn-vs-complete classification flips.
    Offset 0 (file wiped before the header landed) is always included.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    offsets = set(range(0, len(reference), stride))
    offsets.add(0)
    for i, byte in enumerate(reference):
        if byte == 0x0A:
            offsets.update((i, i + 1))
    offsets.discard(len(reference))  # that's the uninterrupted file
    return [CrashSite("truncate", off) for off in sorted(offsets)]


def enumerate_flips(
    reference: bytes,
    seed: int = 0,
    count: Optional[int] = None,
) -> List[CrashSite]:
    """Single-byte corruptions at seeded offsets.

    ``count=None`` yields the full corpus — one flip at *every* offset
    (the ``REPRO_SOAK`` lane).  A finite ``count`` samples that many
    offsets without replacement, deterministically from ``seed`` (the
    per-PR lane).  The XOR byte is drawn per-offset from the same stream
    and is never zero, so every site actually changes the file.
    """
    rng = random.Random(seed)
    offsets: Sequence[int] = range(len(reference))
    if count is not None and count < len(reference):
        offsets = sorted(rng.sample(range(len(reference)), count))
    return [
        CrashSite("flip", off, xor=rng.randint(1, 255)) for off in offsets
    ]


def mutate(reference: bytes, site: CrashSite) -> bytes:
    """Apply one crash site to the reference bytes."""
    if site.kind == "truncate":
        return reference[: site.offset]
    if site.offset >= len(reference):
        raise ValueError(
            f"flip offset {site.offset} beyond file of {len(reference)} B"
        )
    mutated = bytearray(reference)
    mutated[site.offset] ^= site.xor
    return bytes(mutated)


@dataclass
class SweepReport:
    """Outcome of one crash-point sweep."""

    sites: int = 0
    resumed_identical: int = 0
    rejected_then_fresh: int = 0
    #: ``(site description, what went wrong)`` for every failed site.
    failures: List[Tuple[str, str]] = field(default_factory=list)
    #: Distribution of clean-rejection exception type names.
    rejection_types: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        text = (
            f"{self.sites} sites: {self.resumed_identical} resumed "
            f"byte-identical, {self.rejected_then_fresh} cleanly rejected"
        )
        if self.failures:
            text += f", {len(self.failures)} FAILED"
            for desc, reason in self.failures[:5]:
                text += f"\n  {desc}: {reason}"
        return text


def run_crash_sweep(
    reference: bytes,
    sites: Iterable[CrashSite],
    scratch_dir,
    resume: Callable[[Path], None],
    fresh: Callable[[Path], None],
    clean_errors: Tuple[type, ...],
) -> SweepReport:
    """Fuzz one store across ``sites``; see the module docstring.

    ``resume(path)`` must run the store's recover-and-resume path against
    the mutated file at ``path``; ``fresh(path)`` must re-run from
    scratch over the same path.  Both are expected to leave the store's
    final bytes at ``path`` when they return.  ``clean_errors`` is the
    tuple of exception types that count as *clean rejection* — anything
    else propagating out of ``resume`` fails the site.
    """
    scratch_dir = Path(scratch_dir)
    scratch_dir.mkdir(parents=True, exist_ok=True)
    report = SweepReport()
    path = scratch_dir / "fuzz.jsonl"
    for site in sites:
        report.sites += 1
        desc = site.describe()
        # Reset scratch state (including any sidecar from the last site).
        for leftover in scratch_dir.iterdir():
            leftover.unlink()
        path.write_bytes(mutate(reference, site))
        try:
            resume(path)
        except clean_errors as exc:
            name = type(exc).__name__
            report.rejection_types[name] = (
                report.rejection_types.get(name, 0) + 1
            )
            try:
                path.unlink(missing_ok=True)
                fresh(path)
            except Exception as exc2:  # noqa: BLE001 - report, don't mask
                report.failures.append(
                    (desc, f"fresh rerun after clean rejection raised "
                           f"{type(exc2).__name__}: {exc2}")
                )
                continue
            if path.read_bytes() != reference:
                report.failures.append(
                    (desc, "fresh rerun after clean rejection is not "
                           "byte-identical to the reference")
                )
            else:
                report.rejected_then_fresh += 1
            continue
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            report.failures.append(
                (desc, f"resume raised unexpected "
                       f"{type(exc).__name__}: {exc}")
            )
            continue
        if path.read_bytes() != reference:
            report.failures.append(
                (desc, "resume completed but the journal is not "
                       "byte-identical to the reference")
            )
        else:
            report.resumed_identical += 1
    return report
