"""State-integrity subsystem: trusted persistence for every stateful layer.

Three independent persistence paths grew up around the reproduction — the
serving layer's :class:`~repro.serving.journal.RunJournal`, the fleet
layer's :class:`~repro.fleet.checkpoint.AppCheckpoint` stream, and the
batch scheduler's decision journal.  All three promise *byte-identical
resume*, but until this subsystem existed the promise was only asserted by
tests: a torn write, a stale checkpoint replayed after a failover, or a
silently flipped byte would be consumed without complaint.  This package
defends the promise at runtime:

* :mod:`~repro.integrity.record` — a versioned, per-record checksummed
  envelope format shared by every journal, plus a recovery scanner that
  detects torn tails and mid-file corruption, truncates to the last valid
  prefix, quarantines the bad bytes to a sidecar file and reports a typed
  :class:`~repro.integrity.record.RecoveryReport`.
* :mod:`~repro.integrity.fencing` — epoch/generation fencing so that
  after a failover, journal writes stamped with a stale device generation
  are *rejected* instead of interleaved with the migrated replica's
  writes (the classic split-brain window).
* :mod:`~repro.integrity.invariants` — cheap runtime invariant probes
  (SMX occupancy bounds, queue/byte conservation, monotone clocks, power
  accounting) raising :class:`~repro.integrity.invariants.
  IntegrityViolation` with full context instead of letting model drift
  surface as wrong benchmark numbers.
* :mod:`~repro.integrity.crashfuzz` — a deterministic crash-point fuzzing
  harness that kills a journaled run at every byte boundary (and flips
  bytes) and asserts that resume is byte-identical or cleanly truncated.

Layering: the package sits beside :mod:`repro.resilience`, directly on
:mod:`repro.sim`; the stateful layers above (serving, fleet, scheduling)
consume it, nothing below imports it.  See ``docs/integrity.md``.
"""

from .record import (
    ENVELOPE_PREFIX,
    ENVELOPE_VERSION,
    MARKER_KEY,
    JournalIntegrityError,
    RecordCorruption,
    RecoveryReport,
    UnknownJournalFormat,
    decode_line,
    encode_line,
    clock_regressions,
    recover_file,
    scan_file,
    sniff_format,
)
from .fencing import (
    FencedJournal,
    FenceToken,
    GenerationFence,
    StaleGenerationError,
)
from .invariants import (
    IntegrityViolation,
    InvariantChecker,
    attach_device_invariants,
    attach_environment_invariants,
)
from .crashfuzz import (
    CrashSite,
    SweepReport,
    enumerate_flips,
    enumerate_truncations,
    mutate,
    run_crash_sweep,
)

__all__ = [
    "ENVELOPE_PREFIX",
    "ENVELOPE_VERSION",
    "MARKER_KEY",
    "CrashSite",
    "FencedJournal",
    "FenceToken",
    "GenerationFence",
    "IntegrityViolation",
    "InvariantChecker",
    "JournalIntegrityError",
    "RecordCorruption",
    "RecoveryReport",
    "StaleGenerationError",
    "SweepReport",
    "UnknownJournalFormat",
    "attach_device_invariants",
    "attach_environment_invariants",
    "clock_regressions",
    "decode_line",
    "encode_line",
    "enumerate_flips",
    "enumerate_truncations",
    "mutate",
    "recover_file",
    "run_crash_sweep",
    "scan_file",
    "sniff_format",
]
