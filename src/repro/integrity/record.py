"""The checksummed record envelope and its recovery scanner.

Every persisted line of every journal is wrapped in one envelope::

    I1 <seq:8 hex> <crc:8 hex> <payload JSON>\\n

* ``I1`` — format marker and envelope version.  Legacy (pre-envelope)
  journals start with ``{``, so one byte distinguishes the formats.
* ``seq`` — the record's position in the file (header = 0), so a line
  spliced in from another file (or a dropped line) is detected even when
  its checksum is self-consistent.
* ``crc`` — CRC-32 over ``"<seq>:<payload>"`` in UTF-8.  CRC-32 detects
  every single-byte corruption, which is the unit the crash-point fuzzer
  sweeps.
* payload — canonical JSON (sorted keys, ``ensure_ascii=False`` so real
  UTF-8 lands on disk and torn multi-byte codepoints are exercised, not
  escaped away).

Encoding is deterministic: the same payload sequence always produces the
same bytes, which is what lets a crashed-and-resumed journal end up
byte-identical to the journal of an uninterrupted run.

Recovery model
--------------
A journal file is trusted only up to its *valid prefix*: the longest run
of lines from the top that decode, checksum and sequence correctly.
Everything after the first invalid line — whether a torn tail from a
crash mid-``write(2)`` or a flipped byte in the middle of the file — is
untrusted, because replay verification needs a contiguous prefix.  The
scanner therefore truncates to the valid prefix, quarantines the invalid
bytes to a ``<path>.quarantine`` sidecar (nothing is silently destroyed),
and reports what it did in a typed :class:`RecoveryReport`.

Marker records (payloads carrying :data:`MARKER_KEY`, e.g. the crash
marker the serving layer appends when a run dies) are part of the valid
prefix but are *not* entries: they are dropped on rewrite so a resumed
journal converges to the uninterrupted run's bytes.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ENVELOPE_PREFIX",
    "ENVELOPE_VERSION",
    "MARKER_KEY",
    "JournalIntegrityError",
    "RecordCorruption",
    "UnknownJournalFormat",
    "RecoveryReport",
    "encode_line",
    "decode_line",
    "sniff_format",
    "scan_file",
    "recover_file",
    "clock_regressions",
    "fsync_dir",
]

#: First token of every envelope line (also carries the envelope version).
ENVELOPE_PREFIX = "I1"
ENVELOPE_VERSION = 1

#: Payload key marking a non-entry record (crash markers and friends).
MARKER_KEY = "journal-marker"

#: Payload keys recognized as simulated timestamps by the clock check.
_CLOCK_KEYS = ("t", "complete", "time")


class JournalIntegrityError(Exception):
    """Base class for integrity-layer journal errors."""


class RecordCorruption(JournalIntegrityError):
    """One envelope line failed validation (checksum, seq, syntax...)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class UnknownJournalFormat(JournalIntegrityError):
    """The file is neither an envelope journal nor a known legacy format."""


def _crc(seq: int, payload: str) -> int:
    return zlib.crc32(f"{seq}:{payload}".encode("utf-8"))


def encode_line(payload: Dict, seq: int) -> str:
    """One payload -> one envelope line (trailing newline included)."""
    body = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return f"{ENVELOPE_PREFIX} {seq:08x} {_crc(seq, body):08x} {body}\n"


def decode_line(raw: bytes, expected_seq: Optional[int] = None) -> Dict:
    """Validate and decode one envelope line.

    ``raw`` is the line *without* its newline.  Raises
    :class:`RecordCorruption` on any defect — an undecodable byte
    sequence (a tail torn mid-UTF-8-codepoint lands here), a bad prefix,
    a checksum mismatch, a sequence gap, or non-JSON payload.
    """
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise RecordCorruption(f"undecodable UTF-8 ({exc})") from None
    parts = text.split(" ", 3)
    if len(parts) != 4 or parts[0] != ENVELOPE_PREFIX:
        raise RecordCorruption("not an envelope line")
    seq_text, crc_text, body = parts[1], parts[2], parts[3]
    if len(seq_text) != 8 or len(crc_text) != 8:
        raise RecordCorruption("malformed envelope header fields")
    try:
        seq = int(seq_text, 16)
        crc = int(crc_text, 16)
    except ValueError:
        raise RecordCorruption("non-hex seq/crc field") from None
    if expected_seq is not None and seq != expected_seq:
        raise RecordCorruption(
            f"sequence mismatch (line says {seq}, expected {expected_seq})"
        )
    if crc != _crc(seq, body):
        raise RecordCorruption("checksum mismatch")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise RecordCorruption(f"payload is not valid JSON ({exc.msg})") from None
    if not isinstance(payload, dict):
        raise RecordCorruption("payload is not a JSON object")
    return payload


def sniff_format(first_bytes: bytes) -> str:
    """``"envelope"`` / ``"legacy"`` / ``"unknown"`` from the first line.

    Legacy (pre-envelope) journals were plain JSONL: their first byte is
    ``{``.  Envelope journals start with the ``I1 `` marker.  Anything
    else is unknown and must be rejected with an actionable error rather
    than misparsed.
    """
    head = first_bytes.lstrip()[:8]
    if head.startswith(f"{ENVELOPE_PREFIX} ".encode()):
        return "envelope"
    if head.startswith(b"{"):
        return "legacy"
    return "unknown"


@dataclass
class RecoveryReport:
    """What the recovery scanner found (and, on repair, did) in one file.

    ``valid_records`` counts entry payloads only — the header and marker
    records are reported separately.  ``first_invalid_line`` is a
    1-indexed line number, ``None`` when the whole file validated.
    """

    path: str
    format: str                       # "envelope" | "legacy"
    version: int
    total_lines: int = 0
    valid_records: int = 0
    markers: int = 0
    torn_tail: bool = False
    mid_file_corruption: bool = False
    first_invalid_line: Optional[int] = None
    corruption_reason: Optional[str] = None
    quarantined_bytes: int = 0
    sidecar: Optional[str] = None
    truncated: bool = False
    clock_regressions: int = 0

    @property
    def clean(self) -> bool:
        """Whether the file validated end to end."""
        return self.first_invalid_line is None and self.clock_regressions == 0

    def describe(self) -> str:
        """One-line digest for the ``verify`` CLI."""
        if self.first_invalid_line is None:
            state = "clean"
        elif self.torn_tail:
            state = f"torn tail at line {self.first_invalid_line}"
        else:
            state = (
                f"corrupt at line {self.first_invalid_line}"
                f" ({self.corruption_reason})"
            )
        text = (
            f"{self.path}: {self.format} v{self.version}, "
            f"{self.valid_records} records, {state}"
        )
        if self.quarantined_bytes:
            if self.sidecar is not None:
                text += (
                    f"; quarantined {self.quarantined_bytes} B"
                    f" -> {self.sidecar}"
                )
            else:
                text += f"; {self.quarantined_bytes} B past the valid prefix"
        if self.clock_regressions:
            text += f"; {self.clock_regressions} clock regression(s)"
        return text


def _split_lines(data: bytes) -> List[bytes]:
    """File bytes -> lines without newlines (trailing newline tolerated)."""
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    return lines


def _scan_envelope(
    path: Path, data: bytes
) -> Tuple[Optional[Dict], List[Dict], RecoveryReport, int]:
    """Valid-prefix scan; returns (header, entries, report, prefix_bytes)."""
    lines = _split_lines(data)
    report = RecoveryReport(
        path=str(path), format="envelope", version=ENVELOPE_VERSION,
        total_lines=len(lines),
    )
    header: Optional[Dict] = None
    entries: List[Dict] = []
    prefix_bytes = 0
    for lineno, raw in enumerate(lines, start=1):
        try:
            payload = decode_line(raw, expected_seq=lineno - 1)
        except RecordCorruption as exc:
            report.first_invalid_line = lineno
            report.corruption_reason = exc.reason
            report.torn_tail = lineno == len(lines)
            report.mid_file_corruption = not report.torn_tail
            break
        if lineno == 1:
            header = payload
        elif MARKER_KEY in payload:
            report.markers += 1
        else:
            entries.append(payload)
        prefix_bytes += len(raw) + 1
    # A final intact line may legitimately lack its newline (the crash cut
    # exactly the "\n"); the prefix must not extend past the file.
    prefix_bytes = min(prefix_bytes, len(data))
    report.valid_records = len(entries)
    report.quarantined_bytes = len(data) - prefix_bytes
    report.clock_regressions = clock_regressions(entries)
    return header, entries, report, prefix_bytes


def _scan_legacy(
    path: Path, data: bytes
) -> Tuple[Optional[Dict], List[Dict], RecoveryReport, int]:
    """Compat scan of a pre-envelope JSONL journal.

    Legacy lines carry no checksum, so only the *final* line can be
    classified as torn; an unparsable line mid-file is unrecoverable
    corruption (reported, nothing truncated — the caller decides).
    """
    lines = _split_lines(data)
    report = RecoveryReport(
        path=str(path), format="legacy", version=1, total_lines=len(lines),
    )
    header: Optional[Dict] = None
    entries: List[Dict] = []
    prefix_bytes = 0
    for lineno, raw in enumerate(lines, start=1):
        try:
            text = raw.decode("utf-8")
            payload = json.loads(text) if text.strip() else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            report.first_invalid_line = lineno
            report.torn_tail = lineno == len(lines)
            report.mid_file_corruption = not report.torn_tail
            report.corruption_reason = (
                "torn final line" if report.torn_tail
                else "unparsable line in an unchecksummed legacy journal"
            )
            break
        if lineno == 1:
            header = payload if isinstance(payload, dict) else None
            if header is None:
                report.first_invalid_line = 1
                report.corruption_reason = "corrupt header line"
                break
        elif payload is not None:
            entries.append(payload)
        prefix_bytes += len(raw) + 1
    prefix_bytes = min(prefix_bytes, len(data))
    report.valid_records = len(entries)
    report.quarantined_bytes = len(data) - prefix_bytes
    report.clock_regressions = clock_regressions(entries)
    return header, entries, report, prefix_bytes


def scan_file(path) -> Tuple[Optional[Dict], List[Dict], RecoveryReport, int]:
    """Read-only scan: (header payload, entries, report, valid prefix bytes).

    Raises :class:`UnknownJournalFormat` when the file is neither an
    envelope journal nor legacy JSONL, and ``FileNotFoundError`` when it
    does not exist.  Never raises on corruption — corruption is *data*,
    reported in the :class:`RecoveryReport`.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data:
        raise UnknownJournalFormat(f"{path} is empty")
    kind = sniff_format(data)
    if kind == "envelope":
        return _scan_envelope(path, data)
    if kind == "legacy":
        return _scan_legacy(path, data)
    raise UnknownJournalFormat(
        f"{path} is neither an envelope (I1 ...) nor a legacy JSONL "
        "journal; refusing to guess at its contents"
    )


def quarantine_bytes(path, data: bytes) -> str:
    """Write invalid bytes to the journal's ``.quarantine`` sidecar."""
    path = Path(path)
    sidecar = path.with_suffix(path.suffix + ".quarantine")
    with open(sidecar, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    return str(sidecar)


def recover_file(
    path, quarantine: bool = True
) -> Tuple[Optional[Dict], List[Dict], RecoveryReport]:
    """Scan and *repair*: truncate to the valid prefix, quarantine the rest.

    The truncation is atomic (tmp file + ``os.replace`` + directory
    fsync), so a crash during recovery never makes things worse.  Returns
    the header, the surviving entries and the report (with
    :attr:`RecoveryReport.truncated` / :attr:`RecoveryReport.sidecar`
    filled in when anything was done).
    """
    path = Path(path)
    header, entries, report, prefix = scan_file(path)
    data = path.read_bytes()
    if prefix >= len(data):
        return header, entries, report
    if quarantine:
        report.sidecar = quarantine_bytes(path, data[prefix:])
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data[:prefix])
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path)
    report.truncated = True
    return header, entries, report


def clock_regressions(entries: List[Dict]) -> int:
    """Count simulated-clock regressions across a journal's entries.

    Every journal in the repo appends in commit order, so any timestamp
    field a record carries must be non-decreasing file-wide.  A regression
    means records were reordered, spliced or hand-edited — the invariant
    the "monotone sim clock in every journal" probe defends.
    """
    last = float("-inf")
    regressions = 0
    for entry in entries:
        for key in _CLOCK_KEYS:
            value = entry.get(key)
            if isinstance(value, (int, float)):
                if value < last:
                    regressions += 1
                else:
                    last = float(value)
                break
    return regressions


def fsync_dir(path) -> None:
    """fsync the directory entry so a fresh file survives a host crash.

    Appending durably is not enough on POSIX: the file's *name* lives in
    the directory, and a crash between ``os.replace``/file creation and
    the directory flush can lose the whole journal.  Best-effort on
    platforms whose directories cannot be opened.
    """
    parent = Path(path).resolve().parent
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
