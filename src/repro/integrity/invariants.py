"""Runtime invariant probes over the simulated device model.

Model drift is the quiet failure mode of a reproduction: a refactor that
leaks a resident thread, double-counts a DMA byte or lets power fall
below the calibrated idle floor does not crash — it just makes Figures
7–10 subtly wrong.  The :class:`InvariantChecker` turns those laws into
cheap probes that run inside the event loop (via the engine's strided
probe slot, :meth:`~repro.sim.engine.Environment.set_probe`) and raise
:class:`IntegrityViolation` at the first violated law, with the simulated
time and the numbers that disagreed.

The invariant catalog (see ``docs/integrity.md``):

``smx-occupancy``
    Resident threads/blocks stay within the Table III device ceilings
    (26624 threads / 208 blocks on the K20) and the cached aggregates
    equal the per-SMX ground truth.
``queue-conservation``
    Every command the device issued is accounted for: Hyper-Q queue
    depth totals equal ``commands_issued``, and the in-flight aggregate
    equals the per-stream in-flight sum (never negative).
``dma-conservation``
    Copy-engine byte/command counters are monotone and busy time never
    exceeds wall-clock simulated time.
``clock-monotone``
    The simulated clock never regresses between probe ticks
    (journal-side monotonicity is checked by
    :func:`repro.integrity.record.clock_regressions` at scan time).
``energy-accounting``
    Instantaneous power stays within ``[idle, TDP]`` and accumulated
    energy over any window is bounded by ``idle*dt <= dE <= TDP*dt`` —
    consistent with the Figures 9–10 power-state model.

Checks run every ``stride`` events (default 256): dense enough to pin a
violation near its cause, sparse enough that
``benchmarks/bench_integrity_overhead.py`` holds the cost under 2%.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim.errors import SimulationError

__all__ = [
    "IntegrityViolation",
    "InvariantChecker",
    "attach_environment_invariants",
    "attach_device_invariants",
]

#: Matches ``FaultKind.INTEGRITY_VIOLATION`` (``FaultKind`` is a str enum,
#: so equality with this literal holds without importing the fault model).
INTEGRITY_FAULT_KIND = "integrity_violation"

#: Absolute slop for float comparisons (energy integrals, occupancy).
_EPS = 1e-9


class IntegrityViolation(SimulationError):
    """A runtime invariant probe found state that violates a model law."""

    def __init__(
        self,
        invariant: str,
        message: str,
        time: float,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            f"[{invariant}] at t={time:.9g}: {message}"
        )
        self.invariant = invariant
        self.time = time
        self.context = dict(context or {})
        #: Classification in the resilience fault model.
        self.kind = INTEGRITY_FAULT_KIND


class InvariantChecker:
    """Strided invariant probe suite over one or more GPU devices.

    Attach with :meth:`attach` (or the module-level helpers); the checker
    registers itself as an engine step hook and from then on validates
    the full catalog every ``stride`` events.  ``on_violation`` selects
    what a failed law does: ``"raise"`` (default) aborts the run with
    :class:`IntegrityViolation`; ``"record"`` appends to
    :attr:`violations` and keeps going — the telemetry probes' mode, so a
    monitored run reports drift instead of dying of it.
    """

    def __init__(self, stride: int = 256, on_violation: str = "raise") -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if on_violation not in ("raise", "record"):
            raise ValueError("on_violation must be 'raise' or 'record'")
        self.stride = stride
        self.on_violation = on_violation
        self._devices: List[Tuple[str, Any]] = []
        self._env: Optional[Any] = None
        self._ticks = 0
        self._last_now = float("-inf")
        # Per-device (label -> (time, energy, bytes_htod, bytes_dtoh,
        # served_htod, served_dtoh, grids_completed)) watermarks.
        self._watermarks: Dict[str, Dict[str, float]] = {}
        #: Full catalog passes executed.
        self.checks_run: int = 0
        #: Violations found (equals ``len(violations)`` in record mode).
        self.violations_found: int = 0
        #: Recorded violations (``on_violation="record"`` only).
        self.violations: List[IntegrityViolation] = []

    # -- wiring ------------------------------------------------------------

    def watch_device(self, device: Any, label: Optional[str] = None) -> None:
        """Add a :class:`~repro.gpu.device.GPUDevice` to the probe set."""
        if label is None:
            label = f"gpu{len(self._devices)}"
        self._devices.append((label, device))

    def attach(self, env: Any) -> "InvariantChecker":
        """Install on ``env``'s strided probe slot; returns self.

        The engine fires :meth:`probe_tick` every ``stride``-th event
        pop via an inline integer countdown
        (:meth:`~repro.sim.engine.Environment.set_probe`), so ordinary
        events pay no Python call for the probes at all — the per-event
        cost that dominates any hook-based design on event-dense
        workloads.
        """
        self._last_now = env.now
        env.set_probe(self.probe_tick, self.stride)
        self._env = env
        return self

    def detach(self) -> None:
        """Unregister from the environment (idempotent)."""
        if self._env is not None:
            self._env.clear_probe()
            self._env = None

    def probe_tick(self, now: float) -> None:
        """One strided engine probe: clock check + full catalog.

        When attached, clock monotonicity is verified at probe
        granularity (the engine's calendar pop makes intra-stride
        regressions structurally impossible short of an engine bug,
        which the strided compare still catches as a net regression).
        """
        if now < self._last_now:
            self._violate(
                "clock-monotone",
                f"simulated clock regressed from {self._last_now!r} "
                f"to {now!r}",
                now,
            )
        self._last_now = now
        self._ticks += self.stride
        self.check_now(now)

    # -- probe entry point -------------------------------------------------

    def __call__(self, now: float) -> None:
        # Direct per-event invocation (tests and manual stepping): clock
        # check on every call, catalog every stride-th.  attach() does
        # NOT register this — the engine's inline countdown dispatches
        # probe_tick instead, which is far cheaper per event.
        if now < self._last_now:
            self._violate(
                "clock-monotone",
                f"simulated clock regressed from {self._last_now!r} to {now!r}",
                now,
            )
        self._last_now = now
        self._ticks += 1
        if self._ticks % self.stride:
            return
        self.check_now(now)

    def check_now(self, now: float) -> None:
        """Run the full catalog immediately (also used at run teardown)."""
        for label, device in self._devices:
            self._check_smx(label, device, now)
            self._check_queues(label, device, now)
            self._check_dma(label, device, now)
            self._check_energy(label, device, now)
        self.checks_run += 1

    # -- the catalog -------------------------------------------------------

    def _violate(
        self,
        invariant: str,
        message: str,
        now: float,
        **context: Any,
    ) -> None:
        self.violations_found += 1
        violation = IntegrityViolation(invariant, message, now, context)
        if self.on_violation == "raise":
            raise violation
        self.violations.append(violation)

    def _check_smx(self, label: str, device: Any, now: float) -> None:
        smx = device.smx
        spec = device.spec
        threads = smx.resident_threads
        blocks = smx.resident_blocks
        if not 0 <= threads <= spec.max_resident_threads:
            self._violate(
                "smx-occupancy",
                f"{label}: resident threads {threads} outside "
                f"[0, {spec.max_resident_threads}] (Table III ceiling)",
                now, device=label, threads=threads,
            )
        if not 0 <= blocks <= spec.max_resident_blocks:
            self._violate(
                "smx-occupancy",
                f"{label}: resident blocks {blocks} outside "
                f"[0, {spec.max_resident_blocks}] (Table III ceiling)",
                now, device=label, blocks=blocks,
            )
        ground_threads = sum(s.resident_threads for s in smx)
        if threads != ground_threads:
            self._violate(
                "smx-occupancy",
                f"{label}: cached resident-thread aggregate {threads} != "
                f"per-SMX sum {ground_threads} (leaked release?)",
                now, device=label,
            )
        occ = smx.thread_occupancy
        if not -_EPS <= occ <= 1.0 + _EPS:
            self._violate(
                "smx-occupancy",
                f"{label}: thread occupancy {occ!r} outside [0, 1]",
                now, device=label, occupancy=occ,
            )
        if smx.busy_smx_count > len(smx):
            self._violate(
                "smx-occupancy",
                f"{label}: busy SMX count {smx.busy_smx_count} exceeds "
                f"{len(smx)} SMXs",
                now, device=label,
            )

    def _check_queues(self, label: str, device: Any, now: float) -> None:
        issued = device.commands_issued
        queued = sum(q.depth_total for q in device.fabric.queues)
        if issued != queued:
            self._violate(
                "queue-conservation",
                f"{label}: device issued {issued} commands but Hyper-Q "
                f"queues absorbed {queued} (command lost between stream "
                "and hardware queue)",
                now, device=label, issued=issued, queued=queued,
            )
        inflight = device._inflight
        per_stream = sum(device._stream_inflight.values())
        if inflight < 0 or inflight != per_stream:
            self._violate(
                "queue-conservation",
                f"{label}: in-flight aggregate {inflight} != per-stream "
                f"sum {per_stream}",
                now, device=label, inflight=inflight,
            )
        active = sum(
            1 for v in device._stream_inflight.values() if v > 0
        )
        if device._active_streams != active:
            self._violate(
                "queue-conservation",
                f"{label}: active-stream count {device._active_streams} != "
                f"streams with work in flight {active}",
                now, device=label,
            )
        grids = device.grid_engine
        if grids.active_grids < 0 or grids.grids_completed < 0:
            self._violate(
                "queue-conservation",
                f"{label}: grid engine counters negative "
                f"(active={grids.active_grids}, "
                f"completed={grids.grids_completed})",
                now, device=label,
            )

    def _check_dma(self, label: str, device: Any, now: float) -> None:
        marks = self._watermarks.setdefault(label, {})
        for direction, engine in device.dma.items():
            key = f"dma-{getattr(direction, 'value', direction)}"
            if engine.bytes_moved < marks.get(f"{key}-bytes", 0):
                self._violate(
                    "dma-conservation",
                    f"{label}/{key}: bytes_moved went backwards "
                    f"({marks[f'{key}-bytes']:.0f} -> {engine.bytes_moved})",
                    now, device=label,
                )
            if engine.commands_served < marks.get(f"{key}-served", 0):
                self._violate(
                    "dma-conservation",
                    f"{label}/{key}: commands_served went backwards",
                    now, device=label,
                )
            if engine.busy_seconds > now + _EPS:
                self._violate(
                    "dma-conservation",
                    f"{label}/{key}: busy for {engine.busy_seconds!r} s in a "
                    f"run that is only {now!r} s old",
                    now, device=label,
                )
            if engine.pending_count < 0:
                self._violate(
                    "dma-conservation",
                    f"{label}/{key}: negative pending queue",
                    now, device=label,
                )
            marks[f"{key}-bytes"] = engine.bytes_moved
            marks[f"{key}-served"] = engine.commands_served

    def _check_energy(self, label: str, device: Any, now: float) -> None:
        power = device.power
        spec = device.spec.power
        current = power.current_power
        if not spec.idle - _EPS <= current <= spec.tdp + _EPS:
            self._violate(
                "energy-accounting",
                f"{label}: instantaneous power {current!r} W outside "
                f"[{spec.idle}, {spec.tdp}] W",
                now, device=label, power=current,
            )
        if power.peak_power > spec.tdp + _EPS:
            self._violate(
                "energy-accounting",
                f"{label}: peak power {power.peak_power!r} W exceeds TDP "
                f"{spec.tdp} W",
                now, device=label,
            )
        marks = self._watermarks.setdefault(label, {})
        energy = power.energy(until=now)
        last_t = marks.get("energy-t")
        last_e = marks.get("energy-j")
        if last_t is not None:
            dt = now - last_t
            de = energy - last_e
            lo = spec.idle * dt - 1e-6
            hi = spec.tdp * dt + 1e-6
            if de < -_EPS or not lo <= de <= hi:
                self._violate(
                    "energy-accounting",
                    f"{label}: energy grew {de!r} J over {dt!r} s, outside "
                    f"the [idle*dt, TDP*dt] = [{lo:.3g}, {hi:.3g}] J band",
                    now, device=label, delta_energy=de, delta_t=dt,
                )
        marks["energy-t"] = now
        marks["energy-j"] = energy


def attach_environment_invariants(
    env: Any,
    devices: Any = (),
    stride: int = 256,
    on_violation: str = "raise",
) -> InvariantChecker:
    """Build a checker watching ``devices`` and hook it into ``env``."""
    checker = InvariantChecker(stride=stride, on_violation=on_violation)
    for device in devices:
        checker.watch_device(device)
    return checker.attach(env)


def attach_device_invariants(
    device: Any,
    stride: int = 256,
    on_violation: str = "raise",
    label: Optional[str] = None,
) -> InvariantChecker:
    """Convenience: probe one device on its own environment."""
    checker = InvariantChecker(stride=stride, on_violation=on_violation)
    checker.watch_device(device, label=label)
    return checker.attach(device.env)
