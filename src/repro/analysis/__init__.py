"""Reporting: ASCII timelines, tables and summary statistics."""

from .chrome_trace import to_chrome_trace, write_chrome_trace
from .critical_path import (
    CriticalPath,
    aggregate_critical_paths,
    extract_critical_paths,
    top_slowest,
)
from .profile_summary import kernel_summary, stream_summary, transfer_summary
from .report import SECTIONS, Section, build_report, read_results_csv
from .stats import (
    Summary,
    concurrency_profile,
    dma_utilization,
    gpu_utilization,
    mean_confidence_interval,
    summarize,
)
from .tables import format_markdown, format_table, format_value, write_csv
from .timeline import GLYPHS, render_timeline, timeline_rows
from .waterfall import (
    build_leaderboard,
    build_waterfall,
    render_leaderboard,
    render_waterfall,
    write_leaderboard_json,
)

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "CriticalPath",
    "extract_critical_paths",
    "aggregate_critical_paths",
    "top_slowest",
    "kernel_summary",
    "transfer_summary",
    "stream_summary",
    "build_report",
    "Section",
    "SECTIONS",
    "read_results_csv",
    "render_timeline",
    "timeline_rows",
    "GLYPHS",
    "format_table",
    "format_markdown",
    "format_value",
    "write_csv",
    "Summary",
    "summarize",
    "mean_confidence_interval",
    "gpu_utilization",
    "dma_utilization",
    "concurrency_profile",
    "build_leaderboard",
    "build_waterfall",
    "render_leaderboard",
    "render_waterfall",
    "write_leaderboard_json",
]
