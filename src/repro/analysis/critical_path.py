"""Critical-path extraction over causal traces.

Decomposes each traced app's sojourn (arrival -> terminal outcome) into
named wait categories that **sum exactly to the sojourn**: the host
thread's sequential wait spans (admission queue, stream occupancy,
transfer mutex, DMA burst, sync waits, backoffs, migration stalls) are
measured directly, and whatever they do not cover is the computed
``service-other`` remainder — a partition by construction, so the sum
is exact rather than approximately reconciled.

Synchronization waits are further *sub-attributed* against the trace's
engine-level leaf spans (harvested from completed GPU commands): time
inside a ``sync-wait`` interval covered by a kernel's execution window
is ``smx-exec``, time covered by a DMA copy in service is
``dma-service``, time a kernel sat enqueued behind the Hyper-Q slot
limit is ``hyperq-slot``, and the uncovered residue stays ``sync-wait``.
Overlaps resolve by a fixed priority (exec > DMA > queue), so the
attribution is deterministic and the pieces still telescope to the
interval length.

The fleet-wide aggregation answers questions like *"the p99
deadline-miss critical path is 62% transfer-mutex"*: filter the paths,
sum per category, report shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..telemetry.tracing import ENGINE_CATEGORIES, WAIT_CATEGORIES, Span, Tracer

__all__ = [
    "CriticalPath",
    "extract_critical_paths",
    "aggregate_critical_paths",
    "top_slowest",
]

#: Higher priority wins when engine intervals overlap inside a sync wait.
_SUB_PRIORITY = ("smx-exec", "dma-service", "hyperq-slot")


@dataclass
class CriticalPath:
    """One app's sojourn, partitioned into named wait categories."""

    app: str
    trace_id: str
    outcome: str
    start: float
    end: float
    #: category -> seconds; values sum to :attr:`sojourn` exactly.
    categories: Dict[str, float] = field(default_factory=dict)

    @property
    def sojourn(self) -> float:
        return self.end - self.start

    def share(self, category: str) -> float:
        """Fraction of the sojourn spent in ``category``."""
        if self.sojourn <= 0:
            return 0.0
        return self.categories.get(category, 0.0) / self.sojourn

    @property
    def dominant(self) -> str:
        """The category holding the largest share (ties -> name order)."""
        if not self.categories:
            return "service-other"
        return min(self.categories, key=lambda c: (-self.categories[c], c))


def _clip(start: float, end: float, lo: float, hi: float) -> Optional[Tuple[float, float]]:
    a, b = max(start, lo), min(end, hi)
    if b <= a:
        return None
    return (a, b)


def _sub_attribute(
    lo: float, hi: float, engine_spans: List[Span]
) -> Dict[str, float]:
    """Partition ``[lo, hi]`` across engine categories by priority sweep.

    Returns per-category seconds whose values telescope to ``hi - lo``
    (the uncovered residue is returned under ``""``).
    """
    clipped: List[Tuple[float, float, str]] = []
    bounds = {lo, hi}
    for span in engine_spans:
        seg = _clip(span.start, span.end, lo, hi)
        if seg is None:
            continue
        clipped.append((seg[0], seg[1], span.category))
        bounds.update(seg)
    out: Dict[str, float] = {}
    if not clipped:
        out[""] = hi - lo
        return out
    edges = sorted(bounds)
    for a, b in zip(edges, edges[1:]):
        label = ""
        for category in _SUB_PRIORITY:
            if any(
                c == category and s <= a and b <= e
                for s, e, c in clipped
            ):
                label = category
                break
        out[label] = out.get(label, 0.0) + (b - a)
    return out


def _path_from_spans(spans: List[Span]) -> CriticalPath:
    root = next(s for s in spans if s.parent_id == "")
    engine = [s for s in spans if s.category in ENGINE_CATEGORIES]
    categories: Dict[str, float] = {}

    def add(category: str, seconds: float) -> None:
        if seconds != 0.0:
            categories[category] = categories.get(category, 0.0) + seconds

    for span in spans:
        if span.category not in WAIT_CATEGORIES:
            continue
        seg = _clip(span.start, span.end, root.start, root.end)
        if seg is None:
            continue
        lo, hi = seg
        if span.category == "sync-wait" and engine:
            for label, seconds in _sub_attribute(lo, hi, engine).items():
                add(label or "sync-wait", seconds)
        else:
            add(span.category, hi - lo)

    # The remainder closes the partition: measured waits + service-other
    # == sojourn by construction, so the categories sum exactly.
    measured = sum(categories.values())
    add("service-other", (root.end - root.start) - measured)
    return CriticalPath(
        app=root.app,
        trace_id=root.trace_id,
        outcome=str(root.meta.get("outcome", "")),
        start=root.start,
        end=root.end,
        categories=categories,
    )


def extract_critical_paths(tracer: Tracer) -> List[CriticalPath]:
    """One :class:`CriticalPath` per trace, in trace-start order.

    Accepts either a bare :class:`~repro.telemetry.Tracer` or the
    user-facing :class:`~repro.telemetry.Tracing` handle.
    """
    tracer = getattr(tracer, "tracer", tracer)
    by_trace: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    return [
        _path_from_spans(by_trace[trace_id])
        for trace_id in tracer.trace_ids()
        if trace_id in by_trace
    ]


def aggregate_critical_paths(
    paths: Iterable[CriticalPath],
    predicate: Optional[Callable[[CriticalPath], bool]] = None,
) -> List[dict]:
    """Fleet-wide per-category totals over (a filtered subset of) paths.

    Rows are ``{"category", "seconds", "share"}`` sorted by descending
    seconds (ties by name); shares are fractions of the summed sojourn.
    Pass ``predicate`` to slice — e.g. deadline misses only.
    """
    totals: Dict[str, float] = {}
    sojourn = 0.0
    for path in paths:
        if predicate is not None and not predicate(path):
            continue
        sojourn += path.sojourn
        for category, seconds in path.categories.items():
            totals[category] = totals.get(category, 0.0) + seconds
    rows = [
        {
            "category": category,
            "seconds": seconds,
            "share": (seconds / sojourn) if sojourn > 0 else 0.0,
        }
        for category, seconds in totals.items()
    ]
    rows.sort(key=lambda r: (-r["seconds"], r["category"]))
    return rows


def top_slowest(
    paths: Iterable[CriticalPath], k: int = 5
) -> List[CriticalPath]:
    """The ``k`` longest sojourns, slowest first (ties by app name)."""
    return sorted(paths, key=lambda p: (-p.sojourn, p.app))[:k]
