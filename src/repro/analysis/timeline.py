"""ASCII timeline rendering — the repository's Visual Profiler view.

The paper's Figures 1, 2 and 5 are NVIDIA Visual Profiler screenshots:
per-stream rows with dark boxes for HtoD copies and light boxes for kernel
execution.  :func:`render_timeline` draws the same picture from a
:class:`~repro.sim.trace.TraceRecorder` using block characters, one row per
track, so the reproduced timelines can be eyeballed in a terminal or pasted
into EXPERIMENTS.md.

Glyphs: ``#`` HtoD copy, ``%`` DtoH copy, ``=`` kernel execution,
``-`` other activity, ``.`` idle.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.trace import TraceRecorder

__all__ = ["render_timeline", "timeline_rows", "GLYPHS"]

GLYPHS: Dict[str, str] = {
    "memcpy_htod": "#",
    "memcpy_dtoh": "%",
    "kernel": "=",
    "dma_htod": "#",
    "dma_dtoh": "%",
}
IDLE = "."
OTHER = "-"


def _natural_key(track: str):
    """Sort ``stream-10`` after ``stream-9`` (natural numeric order)."""
    parts = re.split(r"(\d+)", track)
    return [int(p) if p.isdigit() else p for p in parts]


def timeline_rows(
    trace: TraceRecorder,
    width: int = 100,
    tracks: Optional[Sequence[str]] = None,
    categories: Optional[Sequence[str]] = None,
    window: Optional[Tuple[float, float]] = None,
) -> List[Tuple[str, str]]:
    """(track, row string) pairs; later spans overwrite earlier glyphs.

    Parameters
    ----------
    trace:
        Source trace.
    width:
        Characters per row.
    tracks:
        Track names to include (default: every ``stream-*`` track, natural
        order).
    categories:
        Categories to draw (default: copies + kernels).
    window:
        (t0, t1) time window; defaults to the trace extent.
    """
    if window is None:
        window = trace.extent()
    t0, t1 = window
    if t1 <= t0:
        return []
    if tracks is None:
        tracks = sorted(
            (t for t in trace.tracks() if t.startswith("stream-")),
            key=_natural_key,
        )
    categories = set(categories or GLYPHS)

    scale = width / (t1 - t0)
    rows: List[Tuple[str, str]] = []
    for track in tracks:
        cells = [IDLE] * width
        for span in trace.spans:
            if span.track != track or span.category not in categories:
                continue
            if span.end <= t0 or span.start >= t1:
                continue
            a = max(0, int((span.start - t0) * scale))
            b = min(width, max(a + 1, int((span.end - t0) * scale + 0.5)))
            glyph = GLYPHS.get(span.category, OTHER)
            for i in range(a, b):
                cells[i] = glyph
        rows.append((track, "".join(cells)))
    return rows


def render_timeline(
    trace: TraceRecorder,
    width: int = 100,
    tracks: Optional[Sequence[str]] = None,
    categories: Optional[Sequence[str]] = None,
    window: Optional[Tuple[float, float]] = None,
    title: str = "",
) -> str:
    """Full multi-line ASCII timeline with a time axis and legend."""
    rows = timeline_rows(
        trace, width=width, tracks=tracks, categories=categories, window=window
    )
    if not rows:
        return "(empty trace)"
    if window is None:
        window = trace.extent()
    t0, t1 = window
    label_width = max(len(track) for track, _ in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for track, row in rows:
        lines.append(f"{track:<{label_width}} |{row}|")
    axis = (
        f"{'':<{label_width}} |{t0 * 1e3:<{width // 2}.3f}"
        f"{t1 * 1e3:>{width - width // 2}.3f}|  [ms]"
    )
    lines.append(axis)
    lines.append(
        f"{'':<{label_width}}  legend: # HtoD memcpy   % DtoH memcpy   = kernel execution"
    )
    return "\n".join(lines)
