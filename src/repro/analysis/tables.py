"""Plain-text / markdown / CSV table rendering for experiment results.

Every experiment driver returns ``rows()`` as a list of dicts; these
helpers turn those rows into aligned text tables (for the benchmark
console output), GitHub markdown (for EXPERIMENTS.md) and CSV files (for
downstream plotting).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["format_table", "format_markdown", "write_csv", "format_value"]

Row = Dict[str, object]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _columns(rows: Sequence[Row], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: Dict[str, None] = {}
    for row in rows:
        for key in row:
            seen.setdefault(key, None)
    return list(seen)


def format_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: str = "",
) -> str:
    """Aligned monospaced table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = _columns(rows, columns)
    rendered = [
        [format_value(row.get(c, ""), precision) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
) -> str:
    """GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    cols = _columns(rows, columns)
    lines = [
        "| " + " | ".join(cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(format_value(row.get(c, ""), precision) for c in cols)
            + " |"
        )
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Row],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write rows to ``path`` (parent directories created); returns path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cols = _columns(rows, columns)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in cols})
    return path
