"""Assemble the EXPERIMENTS.md report from a benchmark run's CSV output.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) drops one CSV
per figure/table into ``results/``.  :func:`build_report` stitches them into
a single markdown document with the paper's claims next to the measured
values — the file committed as ``EXPERIMENTS.md``.

Usage::

    python -m repro report            # reads results/, writes EXPERIMENTS.md
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .tables import format_markdown

__all__ = ["Section", "SECTIONS", "read_results_csv", "build_report"]


@dataclass(frozen=True)
class Section:
    """One report section backed by a results CSV."""

    title: str
    csv_name: str
    paper_claim: str
    columns: Optional[Sequence[str]] = None


#: Report layout: one section per reproduced artifact, in paper order.
SECTIONS: List[Section] = [
    Section(
        title="Figure 1 — false serialization from copy-queue interleaving",
        csv_name="fig01_false_serialization.csv",
        paper_claim=(
            "Independent streams' small HtoD copies serialize and interleave "
            "in the single copy queue, stalling kernel execution."
        ),
    ),
    Section(
        title="Figure 2 — concurrency recovered by transfer synchronization",
        csv_name="fig02_sync_timeline.csv",
        paper_claim=(
            "With the host-side mutex, each stream's transfers occur "
            "consecutively, improving kernel-start times and overlap."
        ),
    ),
    Section(
        title="Figure 3 — launch orders",
        csv_name="fig03_orders.csv",
        paper_claim="Five scheduling policies over m=4 X and n=4 Y instances.",
    ),
    Section(
        title="Figure 4 — concurrency speedup over serialized execution",
        csv_name="fig04_concurrency_speedup.csv",
        paper_claim=(
            "Up to 56% (avg 23.6%) half-concurrent and up to 59% (avg 24.8%) "
            "full-concurrent improvement over serial."
        ),
    ),
    Section(
        title="Figure 5 — LEFTOVER oversubscription snapshot",
        csv_name="fig05_oversubscription.csv",
        paper_claim=(
            "Five kernels totalling 1203 thread blocks (> the K20's 208 "
            "ceiling) overlap on five streams under the lazy policy."
        ),
    ),
    Section(
        title="Figure 6 — effective memory transfer latency",
        csv_name="fig06_effective_latency.csv",
        paper_claim=(
            "Default concurrency stretches the average effective HtoD "
            "latency up to ~8x over expectation; the mutex restores it."
        ),
    ),
    Section(
        title="Figure 7 — ordering effect (default transfers)",
        csv_name="fig07_ordering_default.csv",
        paper_claim="Order affects performance by up to 9.4% (avg 3.8%).",
    ),
    Section(
        title="Figure 8 — ordering effect (memory sync)",
        csv_name="fig08_ordering_sync.csv",
        paper_claim="Order affects performance by up to 31.8% (avg 7.8%).",
    ),
    Section(
        title="Figure 9 — power under increasing concurrency",
        csv_name="fig09_power_concurrency.csv",
        paper_claim=(
            "Peak power rises slightly with concurrency; energy drops 8.5% "
            "on average (up to 22.9% for needle+srad)."
        ),
    ),
    Section(
        title="Figure 9 (energy per pair)",
        csv_name="fig09_energy_by_pair.csv",
        paper_claim="Full-concurrent energy reduction per heterogeneous pair.",
    ),
    Section(
        title="Figure 10 — power with default vs synchronized transfers",
        csv_name="fig10_power_sync.csv",
        paper_claim=(
            "Synchronization does not significantly change power; energy "
            "improves 10.4% on average (up to 25.7%)."
        ),
    ),
    Section(
        title="Figure 10 (energy per pair)",
        csv_name="fig10_energy_by_pair.csv",
        paper_claim="Sync energy reduction vs serial per pair.",
    ),
    Section(
        title="Table III — kernel launch geometry",
        csv_name="table3_geometry.csv",
        paper_claim="Grid/block dimensions, calls, #TB and #TPB per kernel.",
    ),
    Section(
        title="Headline numbers",
        csv_name="headline_numbers.csv",
        paper_claim="The abstract's aggregate claims, paper vs measured.",
    ),
    Section(
        title="Homogeneous self-concurrency scaling",
        csv_name="homogeneous_scaling.csv",
        paper_claim=(
            "(Section IV's homogeneous case.) Underutilizers gain most from "
            "running copies of themselves concurrently."
        ),
    ),
    Section(
        title="Ablation — ordering with shared streams (NA = 2 NS)",
        csv_name="ablation_ordering_shared.csv",
        paper_claim=(
            "(Section III-C's motivation.) With fewer streams than "
            "applications, launch order also decides who serializes behind "
            "whom on a shared stream."
        ),
    ),
    Section(
        title="Ablation — Hyper-Q hardware queue width",
        csv_name="ablation_hyperq_width.csv",
        paper_claim=(
            "(Not a paper figure.) Fermi-style single queue vs Kepler's 32: "
            "what Hyper-Q itself buys."
        ),
    ),
    Section(
        title="Ablation — LEFTOVER vs symbiosis admission",
        csv_name="ablation_admission.csv",
        paper_claim=(
            "(Not a paper figure.) The lazy policy does no worse than the "
            "resource-sum admission control it replaces."
        ),
    ),
    Section(
        title="Ablation — transfer policies",
        csv_name="ablation_transfers.csv",
        paper_claim=(
            "(Not a paper figure.) Batching (the mutex) vs Pai et al. "
            "chunking vs a FIFO copy queue."
        ),
    ),
    Section(
        title="Resilience — fault-injection overhead",
        csv_name="resilience_overhead.csv",
        paper_claim=(
            "(Not a paper figure.) With the resilience hooks enabled but no "
            "faults planned, the Figure 4 sweep's results are identical and "
            "the wall-clock overhead stays under 2%."
        ),
    ),
    Section(
        title="Serving — goodput under overload",
        csv_name="serving_overload.csv",
        paper_claim=(
            "(Future-work extension.) Under a 2x-overload arrival stream, "
            "bounded admission plus deadline-aware shedding achieves higher "
            "goodput and a bounded p99 sojourn than unbounded greedy "
            "dispatch, which completes more jobs but lands them late."
        ),
    ),
    Section(
        title="Scheduling — adaptive vs the five static orders",
        csv_name="scheduler_policies.csv",
        paper_claim=(
            "(Future-work extension.) The greedy transfer/compute "
            "interleaving and the per-mix bandit each reach a makespan no "
            "worse than the median static order on every Figure 8 pair; "
            "after its exploration pass the bandit matches the best static "
            "order within 5%."
        ),
    ),
]


def read_results_csv(path: Path) -> List[Dict[str, str]]:
    """Load one results CSV as a list of row dicts."""
    with path.open() as fh:
        return list(csv.DictReader(fh))


def _coerce(rows: List[Dict[str, str]]) -> List[Dict[str, object]]:
    """Parse numeric-looking cells so markdown formatting is tidy."""
    out: List[Dict[str, object]] = []
    for row in rows:
        parsed: Dict[str, object] = {}
        for key, value in row.items():
            try:
                number = float(value)
                parsed[key] = int(number) if number == int(number) else number
            except (TypeError, ValueError):
                parsed[key] = value
        out.append(parsed)
    return out


def build_report(
    results_dir: Path,
    title: str = "EXPERIMENTS — paper vs measured",
    preamble: str = "",
) -> str:
    """Build the full markdown report from ``results_dir``.

    Sections whose CSV is missing are listed as "not yet generated" so a
    partial benchmark run still yields a coherent document.
    """
    lines: List[str] = [f"# {title}", ""]
    if preamble:
        lines.append(preamble.strip())
        lines.append("")
    for section in SECTIONS:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append(f"*Paper:* {section.paper_claim}")
        lines.append("")
        path = results_dir / section.csv_name
        if not path.exists():
            lines.append(
                f"_Not yet generated — run `pytest benchmarks/ "
                f"--benchmark-only` to produce `{section.csv_name}`._"
            )
        else:
            rows = _coerce(read_results_csv(path))
            lines.append(format_markdown(rows, columns=section.columns))
        lines.append("")
    return "\n".join(lines)
