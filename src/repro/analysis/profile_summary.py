"""nvprof-style summary statistics from a simulation trace.

``nvprof``/``nsys`` end every profiling session with per-kernel and
per-memcpy summary tables; these helpers produce the same view from a
:class:`~repro.sim.trace.TraceRecorder`, rounding out the profiler story
next to the ASCII timeline and the Chrome-trace export.

All times in the returned rows are in the units indicated by the key
suffix (``_ms``/``_us``); byte totals are raw bytes plus a derived
effective bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..sim.trace import TraceRecorder

__all__ = ["kernel_summary", "transfer_summary", "stream_summary"]


def _span_stats(durations: List[float]) -> Dict[str, float]:
    # An empty duration list must not reach arr.min()/arr.max(), which
    # raise on zero-size arrays; zeros keep the row shape intact for
    # callers that tabulate categories with no recorded spans.
    if len(durations) == 0:
        return {"total_ms": 0.0, "avg_us": 0.0, "min_us": 0.0, "max_us": 0.0}
    arr = np.asarray(durations, dtype=float)
    return {
        "total_ms": float(arr.sum() * 1e3),
        "avg_us": float(arr.mean() * 1e6),
        "min_us": float(arr.min() * 1e6),
        "max_us": float(arr.max() * 1e6),
    }


def kernel_summary(trace: TraceRecorder) -> List[Dict[str, object]]:
    """Per-kernel execution statistics, ordered by total time (desc).

    One row per kernel symbol: launch count, total/avg/min/max execution
    interval (first block placed to last block retired) and the share of
    the trace's total kernel time — the classic ``nvprof`` summary columns.
    """
    by_name: Dict[str, List[float]] = {}
    for span in trace.filter(category="kernel"):
        by_name.setdefault(span.name, []).append(span.duration)
    grand_total = sum(sum(v) for v in by_name.values())
    rows = []
    for name, durations in by_name.items():
        stats = _span_stats(durations)
        rows.append(
            {
                "kernel": name,
                "calls": len(durations),
                "time_pct": (
                    sum(durations) / grand_total * 100.0 if grand_total else 0.0
                ),
                **stats,
            }
        )
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return rows


def transfer_summary(trace: TraceRecorder) -> List[Dict[str, object]]:
    """Per-direction memcpy statistics (count, bytes, effective GB/s)."""
    rows = []
    for category, label in (
        ("memcpy_htod", "HtoD"),
        ("memcpy_dtoh", "DtoH"),
    ):
        spans = trace.filter(category=category)
        if not spans:
            continue
        durations = [s.duration for s in spans]
        nbytes = sum(int(s.meta.get("bytes", 0)) for s in spans)
        total_time = sum(durations)
        rows.append(
            {
                "direction": label,
                "count": len(spans),
                "bytes": nbytes,
                "effective_GBps": (
                    nbytes / total_time / 1e9 if total_time > 0 else 0.0
                ),
                **_span_stats(durations),
            }
        )
    return rows


def stream_summary(trace: TraceRecorder) -> List[Dict[str, object]]:
    """Per-stream activity: busy time per category and span counts."""
    tracks = [t for t in trace.tracks() if t.startswith("stream-")]
    rows = []
    for track in tracks:
        spans = trace.filter(track=track)
        if not spans:
            continue
        kernels = [s for s in spans if s.category == "kernel"]
        copies = [s for s in spans if s.category.startswith("memcpy")]
        first = min(s.start for s in spans)
        last = max(s.end for s in spans)
        rows.append(
            {
                "stream": track,
                "kernels": len(kernels),
                "memcpys": len(copies),
                "kernel_ms": sum(s.duration for s in kernels) * 1e3,
                "memcpy_ms": sum(s.duration for s in copies) * 1e3,
                "active_window_ms": (last - first) * 1e3,
            }
        )
    rows.sort(key=lambda r: r["stream"])
    return rows
