"""Export simulator traces to Chrome's Trace Event format.

ASCII timelines (:mod:`repro.analysis.timeline`) are great in a terminal;
for interactive inspection, :func:`to_chrome_trace` converts a
:class:`~repro.sim.trace.TraceRecorder` into the JSON consumed by
``chrome://tracing`` / Perfetto — the closest free analogue to the NVIDIA
Visual Profiler views the paper's figures come from.

Mapping: each simulator *track* becomes a Chrome "thread" (``tid``) under a
single "process" (the GPU); spans become complete (``"ph": "X"``) events
with microsecond timestamps; instants become instant (``"ph": "i"``)
events.  Categories carry over for Perfetto filtering.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Union

from ..sim.trace import TraceRecorder

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Process id used for all GPU tracks.
GPU_PID = 1


def _track_sort_key(track: str):
    parts = re.split(r"(\d+)", track)
    return [int(p) if p.isdigit() else p for p in parts]


def to_chrome_trace(
    trace: TraceRecorder, process_name: str = "Simulated GPU"
) -> Dict[str, object]:
    """Build the Trace Event JSON object (``traceEvents`` + metadata)."""
    events: List[Dict[str, object]] = []
    tracks = sorted(trace.tracks(), key=_track_sort_key)
    tids = {track: i + 1 for i, track in enumerate(tracks)}

    # Metadata: name the process and each track-thread.
    events.append(
        {
            "ph": "M",
            "pid": GPU_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    )
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": GPU_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": GPU_PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )

    for span in trace.spans:
        events.append(
            {
                "ph": "X",
                "pid": GPU_PID,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.category,
                "ts": span.start * 1e6,        # Chrome wants microseconds
                "dur": span.duration * 1e6,
                "args": dict(span.meta),
            }
        )
    for instant in trace.instants:
        events.append(
            {
                "ph": "i",
                "pid": GPU_PID,
                "tid": tids[instant.track],
                "name": instant.name,
                "cat": instant.category,
                "ts": instant.time * 1e6,
                "s": "t",  # thread-scoped instant
                "args": dict(instant.meta),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro simulated Tesla K20"},
    }


def write_chrome_trace(
    trace: TraceRecorder,
    path: Union[str, Path],
    process_name: str = "Simulated GPU",
) -> Path:
    """Serialize the trace to ``path`` (JSON); returns the path.

    Open the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(to_chrome_trace(trace, process_name=process_name), fh)
    return path
