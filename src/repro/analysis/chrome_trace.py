"""Export simulator traces to Chrome's Trace Event format.

ASCII timelines (:mod:`repro.analysis.timeline`) are great in a terminal;
for interactive inspection, :func:`to_chrome_trace` converts a
:class:`~repro.sim.trace.TraceRecorder` into the JSON consumed by
``chrome://tracing`` / Perfetto — the closest free analogue to the NVIDIA
Visual Profiler views the paper's figures come from.

Mapping: each simulator *track* becomes a Chrome "thread" (``tid``) under a
single "process" (the GPU); spans become complete (``"ph": "X"``) events
with microsecond timestamps; instants become instant (``"ph": "i"``)
events.  Categories carry over for Perfetto filtering.

Telemetry counter events (``"ph": "C"`` from
:func:`repro.telemetry.exporters.snapshots_to_counter_events`) can be
merged in via ``counter_events``: they land in their own process
(:data:`~repro.telemetry.exporters.TELEMETRY_PID`) so Perfetto draws the
metric charts under a separate expandable header below the GPU timeline.
Causal-tracing spans (async ``"ph": "b"/"e"`` pairs from
:func:`repro.telemetry.tracing.spans_to_chrome_events`) merge the same
way via ``span_events`` under their own process
(:data:`~repro.telemetry.tracing.TRACING_PID`).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..sim.trace import TraceRecorder

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Process id used for all GPU tracks.
GPU_PID = 1


def _track_sort_key(track: str):
    """Natural-ordering key: digit runs compare numerically, text runs
    lexically.

    Each piece maps to a *typed* tuple so a digit run never meets a text
    run in a raw ``int < str`` comparison (which raises TypeError when the
    numeric split misses, e.g. ``stream-`` next to ``stream-2``); digit
    pieces sort before text pieces at the same position.
    """
    parts = re.split(r"(\d+)", track)
    return [
        (0, int(p), "") if p.isdigit() else (1, 0, p) for p in parts if p
    ]


def to_chrome_trace(
    trace: TraceRecorder,
    process_name: str = "Simulated GPU",
    counter_events: Optional[Sequence[Dict[str, object]]] = None,
    telemetry_process_name: str = "Telemetry",
    span_events: Optional[Sequence[Dict[str, object]]] = None,
    tracing_process_name: str = "Tracing",
) -> Dict[str, object]:
    """Build the Trace Event JSON object (``traceEvents`` + metadata)."""
    events: List[Dict[str, object]] = []
    tracks = sorted(trace.tracks(), key=_track_sort_key)
    tids = {track: i + 1 for i, track in enumerate(tracks)}

    # Metadata: name the process and each track-thread.  Explicit
    # process/thread sort indices pin the display order (GPU first, tracks
    # in natural order) regardless of event arrival order.
    events.append(
        {
            "ph": "M",
            "pid": GPU_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    )
    events.append(
        {
            "ph": "M",
            "pid": GPU_PID,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": GPU_PID},
        }
    )
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": GPU_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": GPU_PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )

    for span in trace.spans:
        events.append(
            {
                "ph": "X",
                "pid": GPU_PID,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.category,
                "ts": span.start * 1e6,        # Chrome wants microseconds
                "dur": span.duration * 1e6,
                "args": dict(span.meta),
            }
        )
    for instant in trace.instants:
        events.append(
            {
                "ph": "i",
                "pid": GPU_PID,
                "tid": tids[instant.track],
                "name": instant.name,
                "cat": instant.category,
                "ts": instant.time * 1e6,
                "s": "t",  # thread-scoped instant
                "args": dict(instant.meta),
            }
        )

    if counter_events:
        # Counter tracks ride in their own process so the metric charts
        # group under one header instead of interleaving with streams.
        telemetry_pid = next(
            (int(e["pid"]) for e in counter_events if "pid" in e), GPU_PID + 1
        )
        events.append(
            {
                "ph": "M",
                "pid": telemetry_pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": telemetry_process_name},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": telemetry_pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": telemetry_pid},
            }
        )
        events.extend(dict(e) for e in counter_events)

    if span_events:
        # Causal traces likewise ride in their own process: one async
        # track per trace id, grouped under a "Tracing" header.
        tracing_pid = next(
            (int(e["pid"]) for e in span_events if "pid" in e), GPU_PID + 2
        )
        events.append(
            {
                "ph": "M",
                "pid": tracing_pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": tracing_process_name},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": tracing_pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": tracing_pid},
            }
        )
        events.extend(dict(e) for e in span_events)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro simulated Tesla K20"},
    }


def write_chrome_trace(
    trace: TraceRecorder,
    path: Union[str, Path],
    process_name: str = "Simulated GPU",
    counter_events: Optional[Sequence[Dict[str, object]]] = None,
    span_events: Optional[Sequence[Dict[str, object]]] = None,
) -> Path:
    """Serialize the trace to ``path`` (JSON); returns the path.

    Open the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(
            to_chrome_trace(
                trace,
                process_name=process_name,
                counter_events=counter_events,
                span_events=span_events,
            ),
            fh,
        )
    return path
