"""Per-policy leaderboards and win/regression waterfalls over scenarios.

The workload layer's reporting surface: a sweep of (scenario x policy)
cells — each a flat metrics dict from :meth:`repro.workload.\
BatchedTrafficResult.metrics` or :meth:`~repro.workload.TrafficResult.\
metrics` — becomes

* a **leaderboard**: per scenario, policies ranked by SLO goodput
  (ties broken by SLO attainment, then name, so ranking is total and
  deterministic);
* a **waterfall**: one policy vs a baseline policy across scenarios,
  sorted by relative goodput delta — wins at the top, regressions at the
  bottom, *both* always shown (a policy that loses a scenario loses it
  in public).

Everything renders to the repo's usual aligned-table text and serializes
to canonical JSON (sorted keys, newline-terminated, no timestamps) so
two identical sweeps produce byte-identical artifacts under
``results/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from .tables import format_table

__all__ = [
    "build_leaderboard",
    "build_waterfall",
    "render_leaderboard",
    "render_waterfall",
    "write_leaderboard_json",
]

#: The metric every ranking sorts on.
SCORE_KEY = "goodput"


def build_leaderboard(cells: Sequence[Mapping]) -> Dict:
    """(scenario x policy) metric cells -> ranked per-scenario leaderboard.

    Each cell must carry ``scenario``, ``policy`` and ``goodput`` (plus
    any other metrics, which are preserved).  Returns::

        {scenario: {"policies": {policy: cell}, "ranking": [policy, ...]}}
    """
    board: Dict[str, Dict] = {}
    for cell in cells:
        scenario = cell["scenario"]
        policy = cell["policy"]
        entry = board.setdefault(scenario, {"policies": {}, "ranking": []})
        if policy in entry["policies"]:
            raise ValueError(
                f"duplicate leaderboard cell ({scenario}, {policy})"
            )
        entry["policies"][policy] = dict(cell)
    for entry in board.values():
        entry["ranking"] = sorted(
            entry["policies"],
            key=lambda p: (
                -entry["policies"][p][SCORE_KEY],
                -entry["policies"][p].get("slo_attainment", 0.0),
                p,
            ),
        )
    return dict(sorted(board.items()))


def build_waterfall(
    leaderboard: Mapping[str, Mapping],
    policy: str,
    baseline: str,
) -> List[Dict]:
    """Sorted win/regression rows of ``policy`` vs ``baseline``.

    One row per scenario both policies ran, sorted by relative goodput
    delta, best first.  Regressions (negative delta) are *kept*, not
    filtered — the waterfall's whole point is showing both tails.
    """
    rows: List[Dict] = []
    for scenario, entry in leaderboard.items():
        cells = entry["policies"]
        if policy not in cells or baseline not in cells:
            continue
        ours = cells[policy][SCORE_KEY]
        base = cells[baseline][SCORE_KEY]
        delta = ours - base
        rows.append(
            {
                "scenario": scenario,
                "policy": policy,
                "baseline": baseline,
                "policy_goodput": ours,
                "baseline_goodput": base,
                "delta": delta,
                "delta_pct": (delta / base * 100.0) if base > 0 else 0.0,
                "verdict": (
                    "win" if delta > 0 else "regression" if delta < 0 else "tie"
                ),
            }
        )
    rows.sort(key=lambda r: (-r["delta_pct"], r["scenario"]))
    return rows


def render_leaderboard(leaderboard: Mapping[str, Mapping]) -> str:
    """Aligned text tables, one per scenario, policies in rank order."""
    blocks: List[str] = []
    for scenario, entry in leaderboard.items():
        rows = []
        for rank, policy in enumerate(entry["ranking"], start=1):
            cell = entry["policies"][policy]
            rows.append(
                {
                    "rank": rank,
                    "policy": policy,
                    "goodput": round(cell[SCORE_KEY], 1),
                    "slo_attainment": round(
                        cell.get("slo_attainment", 0.0), 3
                    ),
                    "deadline_met": cell.get("deadline_met", ""),
                    "arrivals": cell.get("arrivals", ""),
                }
            )
        blocks.append(format_table(rows, title=f"[scenario: {scenario}]"))
    return "\n\n".join(blocks)


def render_waterfall(rows: Sequence[Mapping]) -> str:
    """The waterfall as an aligned table with a signed-delta bar."""
    if not rows:
        return "(no waterfall rows)"
    peak = max(abs(r["delta_pct"]) for r in rows) or 1.0
    rendered = []
    for r in rows:
        width = int(round(abs(r["delta_pct"]) / peak * 20))
        bar = ("+" if r["delta"] >= 0 else "-") * width
        rendered.append(
            {
                "scenario": r["scenario"],
                "verdict": r["verdict"],
                "delta_pct": round(r["delta_pct"], 1),
                "policy_goodput": round(r["policy_goodput"], 1),
                "baseline_goodput": round(r["baseline_goodput"], 1),
                "bar": bar,
            }
        )
    title = (
        f"[waterfall: {rows[0]['policy']} vs {rows[0]['baseline']} "
        "(sorted by delta)]"
    )
    return format_table(rendered, title=title)


def write_leaderboard_json(
    leaderboard: Mapping,
    path,
    waterfall: Optional[Sequence[Mapping]] = None,
    meta: Optional[Mapping] = None,
) -> Path:
    """Serialize the leaderboard (+ optional waterfall) deterministically.

    Canonical JSON: sorted keys, 2-space indent, trailing newline, and —
    deliberately — no timestamps or host details, so the same sweep
    always writes the same bytes (the determinism tests diff this file).
    """
    payload: Dict = {"leaderboard": leaderboard}
    if waterfall is not None:
        payload["waterfall"] = list(waterfall)
    if meta is not None:
        payload["meta"] = dict(meta)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
