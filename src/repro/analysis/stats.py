"""Aggregation helpers shared by the experiment reports.

Small, dependency-light statistics used when summarizing sweeps:
improvement aggregation, utilization computation from traces, and a
confidence-interval helper for the jittered (nondeterministic-host)
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..sim.trace import TraceRecorder

__all__ = [
    "Summary",
    "summarize",
    "mean_confidence_interval",
    "gpu_utilization",
    "dma_utilization",
    "concurrency_profile",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of ``values`` (ddof=1 std when n > 1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """(mean, lo, hi) normal-approximation CI; degenerate for n < 2."""
    s = summarize(values)
    if s.count < 2:
        return (s.mean, s.mean, s.mean)
    half = z * s.std / math.sqrt(s.count)
    return (s.mean, s.mean - half, s.mean + half)


def gpu_utilization(trace: TraceRecorder, window: Tuple[float, float] = None) -> float:
    """Fraction of the window with at least one kernel executing."""
    if window is None:
        window = trace.extent()
    t0, t1 = window
    if t1 <= t0:
        return 0.0
    return min(1.0, trace.total_busy_time("kernel") / (t1 - t0))


def dma_utilization(
    trace: TraceRecorder, direction: str = "htod", window: Tuple[float, float] = None
) -> float:
    """Fraction of the window with the given copy engine busy."""
    if window is None:
        window = trace.extent()
    t0, t1 = window
    if t1 <= t0:
        return 0.0
    return min(1.0, trace.total_busy_time(f"dma_{direction}") / (t1 - t0))


def concurrency_profile(
    trace: TraceRecorder, category: str = "kernel", points: int = 200
) -> List[Tuple[float, int]]:
    """(time, active span count) sampled over the trace extent.

    Used to plot how many kernels executed concurrently over time (the
    quantitative version of the Figure 5 snapshot).
    """
    t0, t1 = trace.extent()
    if t1 <= t0:
        return []
    spans = [s for s in trace.spans if s.category == category]
    times = np.linspace(t0, t1, points)
    out = []
    for t in times:
        active = sum(1 for s in spans if s.start <= t < s.end)
        out.append((float(t), active))
    return out
