"""Replayable, checksummed traffic traces with crash-resume cursors.

A trace file is an :mod:`repro.integrity.record` envelope journal (the
``I1`` format every other journal in the repo uses): one header record
naming the format and the generating scenario's fingerprint, then one
compact record per arrival::

    I1 00000000 <crc> {"fingerprint": "...", "format": "repro-traffic-trace", ...}
    I1 00000001 <crc> {"a": "nn", "c": "interactive", "d": 0.012, "i": 0, "t": 0.003, "u": 41}

Arrival payload keys are single letters to keep million-request traces
small: ``i`` index, ``t`` arrival time, ``a`` app type, and (only when
non-default) ``c`` tenant class, ``u`` sub-tenant id, ``d`` absolute
deadline, ``p`` priority.  JSON floats round-trip exactly, so a recorded
trace re-streams **byte-identical** arrivals to inline generation — the
equivalence :mod:`tests.workload` pins end-to-end on serving journals.

**Recording is crash-safe** via a cursor sidecar (its own small envelope
journal): every ``cursor_every`` arrivals the trace file is fsynced and
one cursor record — arrival count, byte offset, the generator's O(1)
:meth:`~repro.workload.tenants.TrafficStream.state` — is durably
appended.  :func:`record_trace` with ``resume=True`` then restores the
newest usable cursor (truncating any torn trace tail past it) and
continues generating, never replaying or skipping an arrival; when the
trace prefix itself is unusable it falls back to full regeneration with
every surviving cursor record replay-verified, RunJournal-style.  Either
way the finished files are byte-identical to an uninterrupted
recording's.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional

from ..core.streaming import Arrival
from ..integrity.record import (
    JournalIntegrityError,
    decode_line,
    encode_line,
    fsync_dir,
    quarantine_bytes,
    scan_file,
)
from ..serving.journal import JournalError, JournalMismatchError
from ..sim.errors import HarnessCrash

__all__ = [
    "TRACE_FORMAT",
    "CURSOR_FORMAT",
    "TraceError",
    "CursorStore",
    "TraceReader",
    "arrival_payload",
    "payload_arrival",
    "read_trace",
    "record_trace",
]

TRACE_FORMAT = "repro-traffic-trace"
CURSOR_FORMAT = "repro-traffic-cursor"
TRACE_VERSION = 1

#: Default arrivals between cursor checkpoints (and trace fsyncs).
DEFAULT_CURSOR_EVERY = 256


class TraceError(JournalError):
    """A trace file failed validation (format, checksum, fingerprint)."""


def _canonical(entry: Dict) -> Dict:
    """JSON round-trip so comparisons see exactly what disk sees."""
    return json.loads(json.dumps(entry, sort_keys=True))


def arrival_payload(arrival: Arrival) -> Dict:
    """One arrival -> its compact trace payload (defaults omitted)."""
    payload: Dict = {
        "i": arrival.index,
        "t": arrival.time,
        "a": arrival.type_name,
    }
    if arrival.tenant:
        payload["c"] = arrival.tenant
        payload["u"] = arrival.tenant_id
    if arrival.deadline:
        payload["d"] = arrival.deadline
    if arrival.priority:
        payload["p"] = arrival.priority
    return payload


def payload_arrival(payload: Dict) -> Arrival:
    """Inverse of :func:`arrival_payload`."""
    return Arrival(
        index=int(payload["i"]),
        time=float(payload["t"]),
        type_name=payload["a"],
        tenant=payload.get("c", ""),
        tenant_id=int(payload.get("u", 0)),
        deadline=float(payload.get("d", 0.0)),
        priority=int(payload.get("p", 0)),
    )


class CursorStore:
    """Durable, replay-verified cursor checkpoints for trace recording.

    A tiny append-only envelope journal: header (format + fingerprint),
    then one fsynced record per checkpoint.  Fresh runs append; resumed
    runs either **fast-forward** past the surviving prefix (the O(1)
    path, when the trace file supports it) or **replay-verify** each
    re-emitted cursor against the prefix byte-for-byte, so a resumed
    store always converges to the uninterrupted store's bytes.  The
    crash-point fuzzer sweeps this store like every other journal.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self._seq = 1
        self._pending: Deque[Dict] = deque()
        self.recovered = 0
        self.verified = 0
        self.appended = 0

    def begin(self, fingerprint: str, resume: bool = False) -> List[Dict]:
        """Open the store; returns the recovered cursor entries on resume."""
        if not resume:
            with open(self.path, "wb") as fh:
                fh.write(
                    encode_line(
                        {
                            "format": CURSOR_FORMAT,
                            "version": TRACE_VERSION,
                            "fingerprint": fingerprint,
                        },
                        0,
                    ).encode("utf-8")
                )
                fh.flush()
                os.fsync(fh.fileno())
            fsync_dir(self.path)
            self._fh = open(self.path, "ab")
            self._seq = 1
            return []
        try:
            header, entries, report, prefix = scan_file(self.path)
        except FileNotFoundError:
            raise JournalError(
                f"cannot resume: no cursor store at {self.path}"
            ) from None
        except JournalIntegrityError as exc:
            raise JournalError(f"cannot resume from {self.path}: {exc}") from None
        if report.format != "envelope" or header is None:
            raise JournalError(
                f"cannot resume: {self.path} has no valid cursor header"
            )
        if header.get("format") != CURSOR_FORMAT:
            raise JournalError(
                f"{self.path} is not a traffic cursor store "
                f"(format {header.get('format')!r})"
            )
        if header.get("fingerprint") != fingerprint:
            raise JournalMismatchError(
                f"cursor store {self.path} belongs to a different recording "
                f"(fingerprint {header.get('fingerprint')!r})"
            )
        data = self.path.read_bytes()
        # A crash can cut exactly the final newline: the last line is
        # then valid-but-unterminated, so rewrite must restore the "\n"
        # before anything is appended after it.
        kept = data[:prefix]
        if not kept.endswith(b"\n"):
            kept += b"\n"
        if prefix < len(data) or kept != data:
            if prefix < len(data):
                quarantine_bytes(self.path, data[prefix:])
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(kept)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            fsync_dir(self.path)
        self._fh = open(self.path, "ab")
        self._seq = 1 + len(entries)
        self._pending = deque(entries)
        self.recovered = len(entries)
        return entries

    @property
    def pending(self) -> int:
        """Recovered records still awaiting re-verification."""
        return len(self._pending)

    def fast_forward(self, n: Optional[int] = None) -> int:
        """Accept the first ``n`` pending records as-is (default: all).

        Used by the fast resume path: generation restarts *past* those
        checkpoints, so they can never be re-emitted for verification.
        Records beyond ``n`` (e.g. a terminal ``end`` marker) stay
        pending and must still replay-verify.
        """
        if n is None:
            n = len(self._pending)
        for _ in range(n):
            self._pending.popleft()
        self.verified += n
        return n

    def record(self, entry: Dict) -> None:
        """Verify ``entry`` against the prefix, or durably append it."""
        entry = _canonical(entry)
        if self._pending:
            expected = self._pending.popleft()
            if expected != entry:
                raise JournalMismatchError(
                    f"cursor store diverged on replay: journaled "
                    f"{expected!r}, recomputed {entry!r}"
                )
            self.verified += 1
            return
        self._fh.write(encode_line(entry, self._seq).encode("utf-8"))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq += 1
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TraceReader:
    """Streaming reader: header eagerly validated, arrivals lazily decoded.

    Iterating yields :class:`~repro.core.streaming.Arrival` objects;
    every line's checksum and sequence number is verified on the way
    through (corruption raises :class:`TraceError` at the offending
    line, not garbage arrivals downstream).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        first = self._fh.readline()
        if not first:
            self._fh.close()
            raise TraceError(f"{self.path} is empty")
        try:
            header = decode_line(first.rstrip(b"\n"), expected_seq=0)
        except JournalIntegrityError as exc:
            self._fh.close()
            raise TraceError(f"{self.path}: corrupt trace header ({exc})") from None
        if header.get("format") != TRACE_FORMAT:
            self._fh.close()
            raise TraceError(
                f"{self.path} is not a traffic trace "
                f"(format {header.get('format')!r})"
            )
        self.header = header
        self.fingerprint = header.get("fingerprint")
        self._next_seq = 1

    def __iter__(self) -> Iterator[Arrival]:
        return self

    def __next__(self) -> Arrival:
        if self._fh is None:
            raise StopIteration
        raw = self._fh.readline()
        if not raw:
            self.close()
            raise StopIteration
        try:
            payload = decode_line(raw.rstrip(b"\n"), expected_seq=self._next_seq)
        except JournalIntegrityError as exc:
            self.close()
            raise TraceError(
                f"{self.path}: corrupt trace record "
                f"{self._next_seq} ({exc})"
            ) from None
        self._next_seq += 1
        return payload_arrival(payload)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path) -> TraceReader:
    """Open a recorded trace for streaming replay."""
    return TraceReader(path)


def _trace_prefix_valid(path: Path, offset: int, fingerprint: str) -> bool:
    """Whether ``path``'s first ``offset`` bytes are a valid trace prefix."""
    try:
        size = path.stat().st_size
    except OSError:
        return False
    if size < offset or offset <= 0:
        return False
    with open(path, "rb") as fh:
        data = fh.read(offset)
    if len(data) < offset or not data.endswith(b"\n"):
        return False
    for seq, raw in enumerate(data[:-1].split(b"\n")):
        try:
            payload = decode_line(raw, expected_seq=seq)
        except JournalIntegrityError:
            return False
        if seq == 0 and (
            payload.get("format") != TRACE_FORMAT
            or payload.get("fingerprint") != fingerprint
        ):
            return False
    return True


def record_trace(
    stream,
    path,
    fingerprint: str,
    *,
    cursor_path=None,
    cursor_every: int = DEFAULT_CURSOR_EVERY,
    resume: bool = False,
    crash_after_cursors: Optional[int] = None,
) -> int:
    """Drive ``stream`` to exhaustion, recording every arrival to ``path``.

    ``stream`` is any arrival iterator; cursor checkpoints additionally
    require the :meth:`state`/:meth:`restore` surface of
    :class:`~repro.workload.tenants.TrafficStream`.  Trace writes are
    buffered and fsynced at each checkpoint (and at the end), cursor
    records are fsynced individually — so after a crash the newest
    durable cursor always points into an intact trace prefix.

    ``resume=True`` recovers a crashed recording (see module docstring).
    ``crash_after_cursors=N`` kills the recording (with
    :class:`~repro.sim.errors.HarnessCrash`) right after the Nth
    checkpoint commits — the deterministic test hook mirroring the fault
    plan's ``HARNESS_CRASH``.  Returns the number of arrivals recorded.
    """
    if cursor_every < 1:
        raise ValueError("cursor_every must be >= 1")
    if resume and cursor_path is None:
        raise ValueError("resume=True requires a cursor_path")
    path = Path(path)

    cursors: Optional[CursorStore] = None
    count = 0
    fresh_trace = True
    if cursor_path is not None:
        cursors = CursorStore(cursor_path)
        entries = cursors.begin(fingerprint, resume=resume)
        if resume and entries:
            # Newest checkpoint that is a resume point (the terminal
            # ``end`` record carries no offset/state and never is).
            idx = None
            for j in range(len(entries) - 1, -1, -1):
                if "off" in entries[j] and "state" in entries[j]:
                    idx = j
                    break
            if idx is not None and _trace_prefix_valid(
                path, int(entries[idx]["off"]), fingerprint
            ):
                # Fast path: truncate any torn tail past the checkpoint
                # and resume generation exactly where the cursor left it.
                # Records past the chosen cursor (only ever the ``end``
                # marker) stay pending for replay verification.
                newest = entries[idx]
                with open(path, "rb+") as fh:
                    fh.truncate(int(newest["off"]))
                    fh.flush()
                    os.fsync(fh.fileno())
                stream.restore(newest["state"])
                count = int(newest["i"])
                cursors.fast_forward(idx + 1)
                fresh_trace = False
            # Otherwise: fall through to full regeneration; the surviving
            # cursor records stay queued for replay verification.

    mode = "ab" if not fresh_trace else "wb"
    fh = open(path, mode)
    try:
        if fresh_trace:
            fh.write(
                encode_line(
                    {
                        "format": TRACE_FORMAT,
                        "version": TRACE_VERSION,
                        "fingerprint": fingerprint,
                    },
                    0,
                ).encode("utf-8")
            )
        checkpoints = 0
        for arrival in stream:
            fh.write(
                encode_line(arrival_payload(arrival), count + 1).encode("utf-8")
            )
            count += 1
            last_time = arrival.time
            if cursors is not None and count % cursor_every == 0:
                fh.flush()
                os.fsync(fh.fileno())
                cursors.record(
                    {
                        "i": count,
                        "t": last_time,
                        "off": fh.tell(),
                        "state": stream.state(),
                    }
                )
                checkpoints += 1
                if (
                    crash_after_cursors is not None
                    and checkpoints >= crash_after_cursors
                ):
                    raise HarnessCrash(last_time)
        fh.flush()
        os.fsync(fh.fileno())
        fsync_dir(path)
        if cursors is not None:
            cursors.record({"i": count, "end": True})
            if cursors.pending:
                raise JournalMismatchError(
                    f"resumed recording produced {count} arrivals but the "
                    f"cursor store expects {cursors.pending} more "
                    "checkpoints; it belongs to a longer recording"
                )
    finally:
        fh.close()
        if cursors is not None:
            cursors.close()
    return count
