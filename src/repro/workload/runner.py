"""Scenario execution: open-loop traffic through the serving stack.

Two drivers, one accounting surface:

* :func:`run_traffic` — streams a :class:`~repro.workload.scenarios.\
BuiltScenario` (or a recorded trace) through :func:`repro.serving.\
run_serving` open-loop, **never materializing the trace**: the engine
runs in bounded-memory mode (records dropped once settled) and all
aggregation happens in a :class:`TrafficStats` sink as outcomes land.
Supports journaling, crash/resume, fleets, breakers and fault plans —
everything the serving layer supports — plus per-tenant-class telemetry
with cardinality-capped per-tenant series.

* :func:`run_traffic_batched` — groups the same arrival stream into
  admission batches and drives the adaptive batch scheduler
  (:func:`repro.serving.run_batched_serving`), scoring each policy by
  **SLO goodput on a virtual clock**: batch ``i`` starts when its last
  request has arrived and the previous batch has drained, and a request
  meets its SLO iff its in-batch completion lands before its absolute
  deadline.  This is the surface the per-policy leaderboard sweeps.

Determinism: same ``(scenario build, policy, knobs)`` -> byte-identical
serving journal and identical result payloads, including across a
mid-run crash + ``resume=True``.
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.streaming import ConcurrencyCapDispatcher, GreedyDispatcher
from ..serving import ServingConfig, run_batched_serving, run_serving
from .scenarios import BuiltScenario
from .trace import TraceError, read_trace

__all__ = [
    "TrafficStats",
    "TrafficResult",
    "BatchedTrafficResult",
    "run_traffic",
    "run_traffic_batched",
]

#: Default cap on distinct per-tenant telemetry series per class (the
#: cardinality guard's ``max_series``; overflow aggregates to __other__).
DEFAULT_TENANT_SERIES_CAP = 64


@dataclass
class ClassStats:
    """Streaming aggregates for one tenant class (no per-request state)."""

    arrivals: int = 0
    completed: int = 0
    late: int = 0
    shed: int = 0
    failed: int = 0
    deadline_met: int = 0
    sojourn_sum: float = 0.0
    sojourn_max: float = 0.0

    @property
    def slo_attainment(self) -> float:
        """Deadline-met fraction of everything that arrived."""
        return self.deadline_met / self.arrivals if self.arrivals else 0.0

    @property
    def mean_sojourn(self) -> float:
        ran = self.completed + self.late
        return self.sojourn_sum / ran if ran else 0.0

    def payload(self) -> Dict:
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "late": self.late,
            "shed": self.shed,
            "failed": self.failed,
            "deadline_met": self.deadline_met,
            "slo_attainment": self.slo_attainment,
            "mean_sojourn": self.mean_sojourn,
            "max_sojourn": self.sojourn_max,
        }


class TrafficStats:
    """Bounded-memory outcome sink for streamed serving runs.

    Plugs into :func:`repro.serving.run_serving` as ``sink``: the engine
    calls :meth:`settle` once per terminal outcome and then *drops* the
    record, so memory stays O(tenant classes) no matter how many million
    requests stream through.  With a ``telemetry``, outcomes are also
    counted per tenant class, and per sub-tenant under the cardinality
    guard (``tenant_series_cap`` distinct tenants per class, the rest
    aggregated into ``__other__``).
    """

    def __init__(
        self,
        telemetry=None,
        tenant_series_cap: int = DEFAULT_TENANT_SERIES_CAP,
    ) -> None:
        self.outcomes: _Counter = _Counter()
        self.deadline_met = 0
        self.classes: Dict[str, ClassStats] = {}
        self._outcome_counter = None
        self._tenant_counter = None
        if telemetry is not None:
            self._outcome_counter = telemetry.counter(
                "repro_traffic_outcomes_total",
                "terminal outcomes per tenant class",
                labelnames=("tenant_class", "outcome"),
            )
            self._tenant_counter = telemetry.counter(
                "repro_traffic_tenant_requests_total",
                "requests per sub-tenant (cardinality-capped)",
                labelnames=("tenant_class", "tenant"),
                max_series=tenant_series_cap,
            )

    def settle(self, record, arrival_time: float) -> None:
        """One terminal outcome (engine callback; order = settle order)."""
        outcome = record.outcome or "completed"
        self.outcomes[outcome] += 1
        cls = self.classes.setdefault(record.tenant or "default", ClassStats())
        cls.arrivals += 1
        if outcome == "completed":
            cls.completed += 1
        elif outcome == "late":
            cls.late += 1
        elif outcome == "failed":
            cls.failed += 1
        else:
            cls.shed += 1
        if record.deadline_met:
            self.deadline_met += 1
            cls.deadline_met += 1
        if record.ran:
            sojourn = record.complete_time - arrival_time
            cls.sojourn_sum += sojourn
            cls.sojourn_max = max(cls.sojourn_max, sojourn)
        if self._outcome_counter is not None:
            label = record.tenant or "default"
            self._outcome_counter.inc(tenant_class=label, outcome=outcome)
            self._tenant_counter.inc(
                tenant_class=label, tenant=str(record.tenant_id)
            )

    @property
    def arrivals(self) -> int:
        return sum(self.outcomes.values())

    def payload(self) -> Dict:
        return {
            "outcomes": dict(sorted(self.outcomes.items())),
            "deadline_met": self.deadline_met,
            "classes": {
                name: stats.payload()
                for name, stats in sorted(self.classes.items())
            },
        }


@dataclass
class TrafficResult:
    """One open-loop scenario run: serving result + per-class accounting."""

    scenario: str
    policy: str
    serving: object              # repro.serving.ServingResult
    stats: TrafficStats
    fingerprint: str

    def metrics(self) -> Dict:
        """Flat JSON-able summary (leaderboard row material)."""
        s = self.serving
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "arrivals": s.jobs,
            "goodput": s.goodput,
            "throughput": s.throughput,
            "slo_attainment": (s.deadline_met / s.jobs) if s.jobs else 0.0,
            "shed_rate": s.shed_rate,
            "deadline_met": s.deadline_met,
            "completion_time": s.completion_time,
            "classes": self.stats.payload()["classes"],
        }


def run_traffic(
    built: BuiltScenario,
    *,
    policy: str = "reject",
    cap: Optional[int] = None,
    queue_depth: int = 64,
    num_streams: int = 16,
    scale: Optional[str] = None,
    spec=None,
    trace_path=None,
    journal_path=None,
    resume: bool = False,
    front_door: bool = False,
    breaker=None,
    plan=None,
    fleet=None,
    telemetry=None,
    tenant_series_cap: int = DEFAULT_TENANT_SERIES_CAP,
    stats: Optional[TrafficStats] = None,
) -> TrafficResult:
    """Serve one built scenario open-loop; see the module docstring.

    ``policy`` is a queue policy (``"block"``/``"reject"``/
    ``"shed-oldest"``) under a cap-``cap`` dispatcher, or ``"greedy"``
    (unbounded admission, the naive baseline).  ``trace_path`` replays a
    recorded trace instead of generating inline — the trace's
    fingerprint must match the build's, and (per the equivalence
    guarantee) the serving journal comes out byte-identical either way.
    A fault-plan ``HARNESS_CRASH`` propagates out of this call exactly
    like :func:`~repro.serving.run_serving`; call again with
    ``resume=True`` to recover.
    """
    scenario_fpr = built.fingerprint()
    if trace_path is not None:
        reader = read_trace(trace_path)
        if reader.fingerprint != scenario_fpr:
            reader.close()
            raise TraceError(
                f"trace {trace_path} was recorded for fingerprint "
                f"{reader.fingerprint}, scenario build is {scenario_fpr}"
            )
        arrivals = reader
    else:
        arrivals = built.stream()

    cap = built.scenario.cap if cap is None else cap
    if policy == "greedy":
        dispatcher = GreedyDispatcher()
        config = ServingConfig(
            baseline_runtimes=tuple(sorted(built.baselines.items())),
            shed_unreachable=False,
            breaker=breaker,
            plan=plan,
            seed=built.scenario.seed,
            fleet=fleet,
        )
        front_door = False
    else:
        dispatcher = ConcurrencyCapDispatcher(cap)
        config = ServingConfig(
            queue_depth=queue_depth,
            queue_policy=policy,
            baseline_runtimes=tuple(sorted(built.baselines.items())),
            shed_unreachable=True,
            breaker=breaker,
            plan=plan,
            seed=built.scenario.seed,
            fleet=fleet,
        )

    run_fpr = built.fingerprint(
        extra={
            "driver": "run_traffic",
            "policy": policy,
            "cap": cap,
            "queue_depth": config.queue_depth,
            "num_streams": num_streams,
            "front_door": front_door,
            "breaker": (
                [breaker.threshold, breaker.cooldown, breaker.jitter]
                if breaker is not None
                else None
            ),
            "plan": (
                [
                    [f.kind.value, f.time, f.target, f.duration, f.device]
                    for f in plan
                ]
                if plan is not None
                else []
            ),
            "fleet": (
                [fleet.num_devices, fleet.detection_latency]
                if fleet is not None
                else None
            ),
        }
    )

    sink = stats if stats is not None else TrafficStats(
        telemetry=telemetry, tenant_series_cap=tenant_series_cap
    )
    serving = run_serving(
        arrivals,
        dispatcher,
        config,
        num_streams=num_streams,
        scale=scale,
        spec=spec,
        journal_path=journal_path,
        resume=resume,
        telemetry=telemetry,
        fingerprint=run_fpr,
        sink=sink,
        front_door=front_door,
    )
    return TrafficResult(
        scenario=built.name,
        policy=policy,
        serving=serving,
        stats=sink,
        fingerprint=run_fpr,
    )


# ---------------------------------------------------------------------------
# Batched mode: the per-policy leaderboard surface.
# ---------------------------------------------------------------------------


@dataclass
class BatchedTrafficResult:
    """One (scenario, policy) cell of the leaderboard."""

    scenario: str
    policy: str
    batched: object              # repro.serving.BatchedServingResult
    arrivals: int
    deadline_met: int
    virtual_makespan: float      # arrival-gated, back-to-back batch clock
    class_met: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Deadline-met completions per second of virtual makespan."""
        if self.virtual_makespan <= 0:
            return 0.0
        return self.deadline_met / self.virtual_makespan

    @property
    def slo_attainment(self) -> float:
        return self.deadline_met / self.arrivals if self.arrivals else 0.0

    def metrics(self) -> Dict:
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "arrivals": self.arrivals,
            "deadline_met": self.deadline_met,
            "slo_attainment": self.slo_attainment,
            "goodput": self.goodput,
            "virtual_makespan": self.virtual_makespan,
            "total_energy": self.batched.total_energy,
            "classes": {
                name: {"deadline_met": met, "arrivals": total}
                for name, (met, total) in sorted(self.class_met.items())
            },
        }


def run_traffic_batched(
    built: BuiltScenario,
    policy: str = "bandit",
    *,
    batch_size: int = 8,
    scale: Optional[str] = None,
    spec=None,
    journal_path=None,
    resume: bool = False,
    crash_after: Optional[int] = None,
    telemetry=None,
) -> BatchedTrafficResult:
    """Score one scheduling policy on a scenario's batched admission flow.

    Consecutive arrivals are grouped into admission batches of
    ``batch_size``; each batch is scheduled by the policy (launch order,
    stream width, transfer mutex) and executed on the harness.  The
    virtual clock starts a batch at ``max(previous drain, last arrival
    of the batch)`` and stamps every request's completion at ``batch
    start + in-batch completion``; deadline hits against the arrivals'
    absolute SLO deadlines give the policy's goodput.  Journaling,
    ``crash_after`` and ``resume`` behave exactly like
    :func:`repro.serving.run_batched_serving` (the journal fingerprint
    covers the batch sequence, which this function derives
    deterministically from the scenario build).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    arrivals = list(built.stream())
    batches = [
        arrivals[i:i + batch_size]
        for i in range(0, len(arrivals), batch_size)
    ]

    batched = run_batched_serving(
        [[a.type_name for a in batch] for batch in batches],
        policy=policy,
        scale=scale,
        spec=spec,
        seed=built.scenario.seed,
        journal_path=journal_path,
        resume=resume,
        crash_after=crash_after,
        telemetry=telemetry,
    )

    # Virtual-clock SLO scoring.  Records carry per-type FIFO instance
    # numbers, so the k-th record of a type maps to the k-th arrival of
    # that type within the batch.
    clock = 0.0
    met = 0
    class_met: Dict[str, List[int]] = {}
    for batch, outcome in zip(batches, batched.batches):
        by_type: Dict[str, List] = {}
        for arrival in batch:
            by_type.setdefault(arrival.type_name, []).append(arrival)
        start = max(clock, batch[-1].time)
        for record in outcome.records:
            arrival = by_type[record.type_name][record.instance]
            tally = class_met.setdefault(arrival.tenant or "default", [0, 0])
            tally[1] += 1
            completion = start + record.complete_time
            if arrival.deadline <= 0.0 or completion <= arrival.deadline:
                met += 1
                tally[0] += 1
        clock = start + outcome.makespan

    return BatchedTrafficResult(
        scenario=built.name,
        policy=policy,
        batched=batched,
        arrivals=sum(len(b) for b in batches),
        deadline_met=met,
        virtual_makespan=clock,
        class_met=class_met,
    )
