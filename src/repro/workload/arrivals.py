"""Seeded, resumable arrival processes for open-loop traffic generation.

Every process is an infinite iterator of strictly-ordered absolute
arrival times (Python floats), generated **chunk-seeded**: times come in
fixed-size chunks and chunk ``j`` is a pure function of
``(seed, kind, name, j)`` plus the chunk's start time ``t0`` — never of
how much of the stream was consumed before.  That one property buys
everything the workload layer needs:

* **determinism** — the same ``(seed, name)`` always yields the same
  stream, independently of other tenants' streams;
* **O(1) resume** — a cursor is just ``(chunk, offset, t0)``; restoring
  regenerates one chunk and skips ``offset`` elements, so crash-resume
  never replays or skips an arrival (the property the hypothesis suite
  pins);
* **bounded memory** — one chunk of float64s is live at a time, whether
  the stream runs for ten arrivals or ten million.

Processes:

* :class:`PoissonProcess` — exponential inter-arrivals (steady traffic).
* :class:`ParetoProcess` — Pareto inter-arrivals with tail index
  ``alpha``; bursts separated by heavy-tailed lulls.
* :class:`LogNormalProcess` — log-normal inter-arrivals with shape
  ``sigma``; milder burstiness than Pareto.
* :class:`DiurnalProcess` — thinning modulation of *any* base process by
  ``1 + amplitude * sin(2*pi*t/period + phase)``; composable, so
  "diurnal-modulated heavy-tail" is one spec away.

:class:`ArrivalSpec` is the declarative form used by tenant classes and
scenario fingerprints.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import asdict, dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_CHUNK",
    "ArrivalSpec",
    "ArrivalProcess",
    "PoissonProcess",
    "ParetoProcess",
    "LogNormalProcess",
    "DiurnalProcess",
    "build_process",
]

#: Arrival times generated per chunk (one float64 array live at a time).
DEFAULT_CHUNK = 1024

_TWO_PI = 2.0 * math.pi


def _salt(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


class ArrivalProcess:
    """Base chunk-seeded process; see the module docstring.

    Subclasses implement :meth:`_generate`, a *pure* function from
    ``(chunk_no, t0)`` to ``(times, next_t0)`` where ``times`` is an
    ascending float64 array of absolute arrival times (possibly empty)
    and ``next_t0`` the start time handed to the following chunk.
    """

    kind = "abstract"

    def __init__(self, seed: int, name: str = "", chunk: int = DEFAULT_CHUNK):
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.seed = int(seed)
        self.name = name
        self.chunk = int(chunk)
        self._chunk_no = 0
        self._t0 = 0.0
        self._offset = 0
        self._buf: Optional[np.ndarray] = None
        self._next_t0 = 0.0

    # -- subclass surface --------------------------------------------------

    def _rng(self, chunk_no: int, purpose: str = "times") -> np.random.Generator:
        """The chunk's dedicated generator (pure function of its key)."""
        return np.random.default_rng(
            [self.seed, _salt(self.kind), _salt(self.name), _salt(purpose), chunk_no]
        )

    def _generate(self, chunk_no: int, t0: float):  # pragma: no cover
        raise NotImplementedError

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[float]:
        return self

    def __next__(self) -> float:
        while self._buf is None or self._offset >= len(self._buf):
            if self._buf is not None:
                self._chunk_no += 1
                self._t0 = self._next_t0
                self._offset = 0
            self._buf, self._next_t0 = self._generate(self._chunk_no, self._t0)
        value = float(self._buf[self._offset])
        self._offset += 1
        return value

    # -- cursors -----------------------------------------------------------

    def state(self) -> Dict:
        """O(1) resume cursor: regenerating one chunk restores the stream."""
        return {
            "chunk": self._chunk_no,
            "offset": self._offset,
            "t0": self._t0,
        }

    def restore(self, state: Dict) -> None:
        """Rewind/forward to a cursor taken from an identical process."""
        self._chunk_no = int(state["chunk"])
        self._t0 = float(state["t0"])
        self._offset = int(state["offset"])
        self._buf, self._next_t0 = self._generate(self._chunk_no, self._t0)
        if self._offset > len(self._buf):
            raise ValueError(
                f"cursor offset {self._offset} beyond chunk of "
                f"{len(self._buf)} arrivals; cursor belongs to a "
                "different process"
            )


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate (jobs/second)."""

    kind = "poisson"

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        name: str = "",
        chunk: int = DEFAULT_CHUNK,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        super().__init__(seed, name, chunk)
        self.rate = float(rate)

    def _generate(self, chunk_no: int, t0: float):
        deltas = self._rng(chunk_no).exponential(1.0 / self.rate, self.chunk)
        times = t0 + np.cumsum(deltas)
        return times, float(times[-1])


class ParetoProcess(ArrivalProcess):
    """Pareto inter-arrivals: bursts separated by heavy-tailed lulls.

    ``alpha`` is the tail index (must exceed 1 so the mean exists); the
    scale is chosen so the *mean* rate equals ``rate``.  Small ``alpha``
    (1.1–1.5) gives the classic bursty profile: most gaps tiny, a few
    enormous.
    """

    kind = "pareto"

    def __init__(
        self,
        rate: float,
        alpha: float = 1.5,
        seed: int = 0,
        name: str = "",
        chunk: int = DEFAULT_CHUNK,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 (finite mean)")
        super().__init__(seed, name, chunk)
        self.rate = float(rate)
        self.alpha = float(alpha)
        #: Pareto scale x_m with mean x_m * alpha / (alpha - 1) = 1/rate.
        self._xm = (self.alpha - 1.0) / (self.alpha * self.rate)

    def _generate(self, chunk_no: int, t0: float):
        draws = self._rng(chunk_no).pareto(self.alpha, self.chunk)
        deltas = self._xm * (1.0 + draws)
        times = t0 + np.cumsum(deltas)
        return times, float(times[-1])


class LogNormalProcess(ArrivalProcess):
    """Log-normal inter-arrivals with shape ``sigma``, mean rate ``rate``."""

    kind = "lognormal"

    def __init__(
        self,
        rate: float,
        sigma: float = 1.0,
        seed: int = 0,
        name: str = "",
        chunk: int = DEFAULT_CHUNK,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        super().__init__(seed, name, chunk)
        self.rate = float(rate)
        self.sigma = float(sigma)
        #: mu with E[delta] = exp(mu + sigma^2/2) = 1/rate.
        self._mu = math.log(1.0 / self.rate) - 0.5 * self.sigma**2

    def _generate(self, chunk_no: int, t0: float):
        deltas = self._rng(chunk_no).lognormal(self._mu, self.sigma, self.chunk)
        times = t0 + np.cumsum(deltas)
        return times, float(times[-1])


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal modulation of a base process by deterministic thinning.

    Candidates come from ``base`` (built at the *peak* rate); each
    candidate at time ``t`` is accepted with probability

        ``(1 + amplitude * sin(2*pi*t/period + phase)) / (1 + amplitude)``

    with the accept draws chunk-seeded alongside the base chunks, so the
    composition stays deterministic and O(1)-resumable.  With the base
    rate set to ``mean_rate * (1 + amplitude)`` the thinned stream's mean
    rate is approximately ``mean_rate`` (exact for a Poisson base).
    """

    kind = "diurnal"

    def __init__(
        self,
        base: ArrivalProcess,
        amplitude: float,
        period: float,
        phase: float = 0.0,
        seed: int = 0,
        name: str = "",
        chunk: int = DEFAULT_CHUNK,
    ):
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        super().__init__(seed, name, chunk)
        self.base = base
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def _generate(self, chunk_no: int, t0: float):
        candidates, next_t0 = self.base._generate(chunk_no, t0)
        if self.amplitude == 0.0:
            return candidates, next_t0
        u = self._rng(chunk_no, "accept").random(len(candidates))
        weight = (
            1.0
            + self.amplitude
            * np.sin(_TWO_PI * candidates / self.period + self.phase)
        ) / (1.0 + self.amplitude)
        return candidates[u < weight], next_t0


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative arrival-process description (tenant-class building block).

    ``rate`` is always the *mean* arrivals/second of the resulting
    stream.  For ``kind="diurnal"`` the base process (``base``, default
    Poisson) is built at ``rate * (1 + amplitude)`` so thinning lands the
    mean back on ``rate``.
    """

    kind: str = "poisson"
    rate: float = 1.0
    alpha: float = 1.5       # pareto tail index
    sigma: float = 1.0       # lognormal shape
    amplitude: float = 0.0   # diurnal swing in [0, 1]
    period: float = 1.0      # diurnal period (simulated seconds)
    phase: float = 0.0       # diurnal phase offset (radians)
    base: Optional["ArrivalSpec"] = None  # diurnal carrier (default poisson)

    _KINDS = ("poisson", "pareto", "lognormal", "diurnal")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; choose from {self._KINDS}"
            )
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.base is not None and self.kind != "diurnal":
            raise ValueError("base processes only compose under 'diurnal'")

    def scaled(self, rate: float) -> "ArrivalSpec":
        """The same shape at a different mean rate (load normalization)."""
        return replace(self, rate=float(rate))

    def payload(self) -> Dict:
        """JSON-able form for scenario fingerprints."""
        return asdict(self)

    def build(
        self, seed: int, name: str = "", chunk: int = DEFAULT_CHUNK
    ) -> ArrivalProcess:
        """Instantiate the process for one ``(seed, tenant-name)`` stream."""
        if self.kind == "poisson":
            return PoissonProcess(self.rate, seed=seed, name=name, chunk=chunk)
        if self.kind == "pareto":
            return ParetoProcess(
                self.rate, alpha=self.alpha, seed=seed, name=name, chunk=chunk
            )
        if self.kind == "lognormal":
            return LogNormalProcess(
                self.rate, sigma=self.sigma, seed=seed, name=name, chunk=chunk
            )
        carrier = self.base or ArrivalSpec("poisson")
        base = carrier.scaled(self.rate * (1.0 + self.amplitude)).build(
            seed, name=name, chunk=chunk
        )
        return DiurnalProcess(
            base,
            amplitude=self.amplitude,
            period=self.period,
            phase=self.phase,
            seed=seed,
            name=name,
            chunk=chunk,
        )


def build_process(
    spec: ArrivalSpec, seed: int, name: str = "", chunk: int = DEFAULT_CHUNK
) -> ArrivalProcess:
    """Functional alias for :meth:`ArrivalSpec.build`."""
    return spec.build(seed, name=name, chunk=chunk)
