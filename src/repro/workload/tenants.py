"""Tenant classes and the merged multi-tenant traffic stream.

A :class:`TenantClass` declares one *class* of tenants: its aggregate
arrival process (:class:`~repro.workload.arrivals.ArrivalSpec`), a
weighted application mix over the paper's Table III geometry set, an SLO
factor (deadline = arrival + ``slo_factor`` x the type's measured
serial baseline), a priority, and a sub-tenant population.  "Millions of
apps" scale comes from the population being *sampled, not enumerated*:
each arrival draws its sub-tenant id from a seeded positional stream
(uniform or Zipf-like power-law popularity), so a class with 10^7
tenants costs exactly as much as one with 10.

:class:`TrafficStream` lazily merges the per-class streams by arrival
time into one globally-indexed :class:`~repro.core.streaming.Arrival`
iterator.  Every random draw is chunk-seeded and positional, which gives
the two load-bearing properties:

* **per-class independence** — a class's (time, type, tenant) sub-stream
  is a pure function of ``(seed, class name)``; adding or removing other
  classes never perturbs it;
* **O(1) crash-resume** — :meth:`TrafficStream.state` captures the
  whole stream in a small JSON-able cursor and
  :meth:`TrafficStream.restore` resumes without replaying or skipping an
  arrival.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..core.streaming import Arrival
from .arrivals import DEFAULT_CHUNK, ArrivalSpec

__all__ = [
    "TenantClass",
    "TenantModel",
    "TrafficStream",
]

_POPULARITIES = ("uniform", "zipf")


def _salt(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


class _UniformStream:
    """Chunk-seeded positional stream of uniforms in [0, 1).

    Draw ``i`` is a pure function of ``(seed, labels, i)``: draws come in
    chunks keyed by ``i // chunk``, so the cursor is just the count of
    draws consumed and restore is O(1).
    """

    def __init__(self, seed: int, *labels: str, chunk: int = DEFAULT_CHUNK):
        self._key = [int(seed)] + [_salt(label) for label in labels]
        self._chunk = int(chunk)
        self._count = 0
        self._cache_no = -1
        self._cache: Optional[np.ndarray] = None

    def _load(self, chunk_no: int) -> None:
        rng = np.random.default_rng(self._key + [chunk_no])
        self._cache = rng.random(self._chunk)
        self._cache_no = chunk_no

    def draw(self) -> float:
        chunk_no, offset = divmod(self._count, self._chunk)
        if chunk_no != self._cache_no:
            self._load(chunk_no)
        self._count += 1
        return float(self._cache[offset])

    def state(self) -> int:
        return self._count

    def restore(self, count: int) -> None:
        self._count = int(count)
        self._cache_no = -1


@dataclass(frozen=True)
class TenantClass:
    """One class of tenants sharing traffic shape, app mix, SLO and priority.

    Attributes
    ----------
    name:
        Unique class name (seeds every per-class stream).
    arrival:
        Aggregate arrival process of the whole class.
    app_mix:
        ``((type_name, weight), ...)`` over registered app types; weights
        are normalized.
    slo_factor:
        Deadline window as a multiple of the type's measured serial
        baseline; ``0`` disables deadlines for the class.
    priority:
        Informational priority (higher = more important).
    tenants:
        Sub-tenant population size (sampled per arrival, never
        enumerated — millions are fine).
    popularity:
        ``"uniform"`` or ``"zipf"`` (bounded power law over tenant
        ranks, exponent ``zipf_s``): who within the class sends each
        request.
    zipf_s:
        Power-law exponent for ``"zipf"`` popularity (> 1).
    """

    name: str
    arrival: ArrivalSpec
    app_mix: Tuple[Tuple[str, float], ...]
    slo_factor: float = 4.0
    priority: int = 0
    tenants: int = 1
    popularity: str = "uniform"
    zipf_s: float = 1.2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant class needs a name")
        mix = tuple((str(n), float(w)) for n, w in self.app_mix)
        if not mix or any(w <= 0 for _, w in mix):
            raise ValueError("app_mix needs positive weights")
        object.__setattr__(self, "app_mix", mix)
        if self.slo_factor < 0:
            raise ValueError("slo_factor must be >= 0")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.popularity not in _POPULARITIES:
            raise ValueError(
                f"unknown popularity {self.popularity!r}; "
                f"choose from {_POPULARITIES}"
            )
        if self.popularity == "zipf" and self.zipf_s <= 1.0:
            raise ValueError("zipf_s must be > 1")

    @property
    def type_names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.app_mix)

    def payload(self) -> Dict:
        """JSON-able form for scenario fingerprints."""
        return {
            "name": self.name,
            "arrival": self.arrival.payload(),
            "app_mix": [list(pair) for pair in self.app_mix],
            "slo_factor": self.slo_factor,
            "priority": self.priority,
            "tenants": self.tenants,
            "popularity": self.popularity,
            "zipf_s": self.zipf_s,
        }


@dataclass(frozen=True)
class TenantModel:
    """A set of tenant classes plus the seed that drives all their draws."""

    classes: Tuple[TenantClass, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        classes = tuple(self.classes)
        if not classes:
            raise ValueError("tenant model needs at least one class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant class names in {names}")
        object.__setattr__(self, "classes", classes)

    @property
    def type_names(self) -> Tuple[str, ...]:
        """Every app type any class can emit (sorted, deduplicated)."""
        names = set()
        for cls in self.classes:
            names.update(cls.type_names)
        return tuple(sorted(names))

    def payload(self) -> Dict:
        return {
            "seed": self.seed,
            "classes": [c.payload() for c in self.classes],
        }

    def stream(
        self,
        baselines: Mapping[str, float],
        duration: Optional[float] = None,
        limit: Optional[int] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> "TrafficStream":
        """The merged arrival stream (see :class:`TrafficStream`)."""
        return TrafficStream(
            self, baselines, duration=duration, limit=limit, chunk=chunk
        )


class _ClassState:
    """Per-class generation state inside a :class:`TrafficStream`."""

    __slots__ = ("cls", "process", "types", "users", "cum_weights", "pending")

    def __init__(self, cls: TenantClass, seed: int, chunk: int):
        self.cls = cls
        self.process = cls.arrival.build(seed, name=cls.name, chunk=chunk)
        self.types = _UniformStream(seed, "type", cls.name, chunk=chunk)
        self.users = _UniformStream(seed, "tenant", cls.name, chunk=chunk)
        weights = np.array([w for _, w in cls.app_mix], dtype=float)
        self.cum_weights = np.cumsum(weights / weights.sum())
        self.pending: Optional[float] = None  # next undelivered arrival time


def _draw_tenant_id(cls: TenantClass, u: float) -> int:
    """Sub-tenant id from one uniform draw (uniform or power-law ranks)."""
    n = cls.tenants
    if n == 1:
        return 0
    if cls.popularity == "uniform":
        return min(int(u * n), n - 1)
    # Bounded power law over ranks 1..n (Zipf-like): inverse CDF of the
    # continuous bounded Pareto on [1, n+1).
    s = cls.zipf_s
    top = float(n + 1) ** (1.0 - s)
    x = (u * (top - 1.0) + 1.0) ** (1.0 / (1.0 - s))
    return min(int(x), n) - 1


class TrafficStream:
    """Lazily merged multi-tenant arrival stream with O(1) cursors.

    Iterates :class:`~repro.core.streaming.Arrival` objects ordered by
    time (ties broken by class declaration order), globally indexed from
    0.  Bounded by ``duration`` (simulated seconds), ``limit``
    (arrival count) or both; at least one bound is required.
    """

    def __init__(
        self,
        model: TenantModel,
        baselines: Mapping[str, float],
        duration: Optional[float] = None,
        limit: Optional[int] = None,
        chunk: int = DEFAULT_CHUNK,
    ):
        if duration is None and limit is None:
            raise ValueError("need a duration and/or an arrival limit")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        missing = [
            t for t in model.type_names
            if t not in baselines
            and any(c.slo_factor > 0 and t in c.type_names for c in model.classes)
        ]
        if missing:
            raise ValueError(f"missing baselines for SLO deadlines: {missing}")
        self.model = model
        self.baselines = dict(baselines)
        self.duration = duration
        self.limit = limit
        self._classes = [
            _ClassState(cls, model.seed, chunk) for cls in model.classes
        ]
        self._heap: List[Tuple[float, int]] = []
        self._index = 0
        for i, cs in enumerate(self._classes):
            self._advance(i, cs)

    def _advance(self, i: int, cs: _ClassState) -> None:
        """Draw the class's next arrival time and queue it (if in bounds)."""
        t = next(cs.process)
        if self.duration is not None and t >= self.duration:
            cs.pending = None
            return
        cs.pending = t
        heapq.heappush(self._heap, (t, i))

    def __iter__(self) -> Iterator[Arrival]:
        return self

    def __next__(self) -> Arrival:
        if self.limit is not None and self._index >= self.limit:
            raise StopIteration
        if not self._heap:
            raise StopIteration
        t, i = heapq.heappop(self._heap)
        cs = self._classes[i]
        cls = cs.cls
        names = cls.type_names
        if len(names) == 1:
            type_name = names[0]
        else:
            slot = int(np.searchsorted(cs.cum_weights, cs.types.draw(), "right"))
            type_name = names[min(slot, len(names) - 1)]
        tenant_id = _draw_tenant_id(cls, cs.users.draw())
        deadline = 0.0
        if cls.slo_factor > 0:
            deadline = t + cls.slo_factor * self.baselines[type_name]
        arrival = Arrival(
            index=self._index,
            time=t,
            type_name=type_name,
            tenant=cls.name,
            tenant_id=tenant_id,
            deadline=deadline,
            priority=cls.priority,
        )
        self._index += 1
        self._advance(i, cs)
        return arrival

    # -- cursors -----------------------------------------------------------

    def state(self) -> Dict:
        """JSON-able cursor capturing the whole merged stream."""
        return {
            "index": self._index,
            "classes": [
                {
                    "process": cs.process.state(),
                    "types": cs.types.state(),
                    "users": cs.users.state(),
                    "pending": cs.pending,
                }
                for cs in self._classes
            ],
        }

    def restore(self, state: Dict) -> None:
        """Resume from a cursor taken on an identically-configured stream."""
        snapshots = state["classes"]
        if len(snapshots) != len(self._classes):
            raise ValueError(
                f"cursor covers {len(snapshots)} classes, stream has "
                f"{len(self._classes)}"
            )
        self._index = int(state["index"])
        self._heap = []
        for i, (cs, snap) in enumerate(zip(self._classes, snapshots)):
            cs.process.restore(snap["process"])
            cs.types.restore(snap["types"])
            cs.users.restore(snap["users"])
            cs.pending = snap["pending"]
            if cs.pending is not None:
                heapq.heappush(self._heap, (float(cs.pending), i))
