"""Open-loop traffic generation, replayable traces and scenario running.

The workload layer turns the serving stack into a traffic-driven system:
seeded arrival processes (:mod:`~repro.workload.arrivals`) compose into
multi-tenant streams (:mod:`~repro.workload.tenants`), which stream —
never materialized — through admission, scheduling, fleet and telemetry
via the scenario runner (:mod:`~repro.workload.runner`).  Traces can be
recorded to a checksummed envelope file and re-streamed byte-identically,
with crash-resume cursors (:mod:`~repro.workload.trace`).  Canonical
load-normalized scenarios live in :mod:`~repro.workload.scenarios`.

Everything here is off by default: no existing entry point imports this
package, and the serving/streaming hooks it drives are inert unless a
traffic run engages them.  See ``docs/workloads.md``.
"""

from .arrivals import (
    DEFAULT_CHUNK,
    ArrivalProcess,
    ArrivalSpec,
    DiurnalProcess,
    LogNormalProcess,
    ParetoProcess,
    PoissonProcess,
    build_process,
)
from .runner import (
    BatchedTrafficResult,
    TrafficResult,
    TrafficStats,
    run_traffic,
    run_traffic_batched,
)
from .scenarios import SCENARIOS, BuiltScenario, Scenario, get_scenario
from .tenants import TenantClass, TenantModel, TrafficStream
from .trace import (
    CURSOR_FORMAT,
    TRACE_FORMAT,
    CursorStore,
    TraceError,
    TraceReader,
    arrival_payload,
    payload_arrival,
    read_trace,
    record_trace,
)

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "BatchedTrafficResult",
    "BuiltScenario",
    "CURSOR_FORMAT",
    "CursorStore",
    "DEFAULT_CHUNK",
    "DiurnalProcess",
    "LogNormalProcess",
    "ParetoProcess",
    "PoissonProcess",
    "SCENARIOS",
    "Scenario",
    "TRACE_FORMAT",
    "TenantClass",
    "TenantModel",
    "TraceError",
    "TraceReader",
    "TrafficResult",
    "TrafficStats",
    "TrafficStream",
    "arrival_payload",
    "build_process",
    "get_scenario",
    "payload_arrival",
    "read_trace",
    "record_trace",
    "run_traffic",
    "run_traffic_batched",
]
