"""Canonical traffic scenarios, load-normalized to measured capacity.

A :class:`Scenario` is a *shape*: tenant classes whose arrival rates are
relative weights, plus a target ``load`` expressed as a multiple of the
serving capacity of a reference dispatcher (``cap`` concurrent jobs over
the workload's mean serial baseline).  :meth:`Scenario.build` measures
the baselines for the active scale, converts weights to absolute
rates so the offered load lands on ``load`` x capacity, and returns a
:class:`BuiltScenario` that can mint streams and a content fingerprint.

Normalizing to measured capacity (instead of hard-coding rates) keeps
every scenario meaningful at every ``REPRO_SCALE`` profile: "overload"
is 3x capacity whether a request costs 50 us at tiny scale or 5 ms at
paper scale.

The four canonical scenarios (:data:`SCENARIOS`) mirror the serving
literature's standard quadrant: steady Poisson, heavy-tailed bursts,
diurnal swing, and sustained overload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..gpu.specs import DeviceSpec
from .arrivals import ArrivalSpec
from .tenants import TenantClass, TenantModel
from .trace import TRACE_VERSION

__all__ = [
    "Scenario",
    "BuiltScenario",
    "SCENARIOS",
    "get_scenario",
]

#: Reference concurrency for capacity normalization (the serving layer's
#: canonical cap-4 dispatcher).
DEFAULT_CAP = 4


@dataclass(frozen=True)
class Scenario:
    """A named traffic shape, independent of scale and absolute rates.

    Attributes
    ----------
    name, description:
        Identity and one-line story.
    load:
        Offered load as a multiple of reference capacity (``cap``
        concurrent jobs / mean serial baseline of the aggregate mix).
        ``0.6`` is comfortable, ``1.0`` saturation, ``3.0`` overload.
    classes:
        Tenant classes whose ``arrival.rate`` fields are *relative
        weights*, not absolute rates — :meth:`build` rescales them so
        the weighted total hits ``load`` x capacity.
    cycles:
        For diurnal classes: how many full periods the run spans (the
        template's ``period`` field is overwritten at build time, since
        the run's duration is only known once rates are).
    seed:
        Tenant-model seed (every stream draw derives from it).
    cap:
        Reference concurrency for the capacity normalization.
    """

    name: str
    description: str
    load: float
    classes: Tuple[TenantClass, ...]
    cycles: float = 4.0
    seed: int = 0
    cap: int = DEFAULT_CAP

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError("load must be positive")
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.cap < 1:
            raise ValueError("cap must be >= 1")
        # Validate names/mixes early via the model's own checks.
        TenantModel(classes=self.classes, seed=self.seed)

    def type_names(self) -> Tuple[str, ...]:
        return TenantModel(classes=self.classes, seed=self.seed).type_names

    def build(
        self,
        requests: int,
        scale: Optional[str] = None,
        spec: Optional[DeviceSpec] = None,
        baselines: Optional[Mapping[str, float]] = None,
    ) -> "BuiltScenario":
        """Resolve weights to absolute rates for the active scale.

        ``requests`` bounds the stream (the arrival ``limit``); the
        expected run duration ``requests / offered_rate`` also sets the
        period of any diurnal class to span :attr:`cycles` full cycles.
        ``baselines`` (type -> serial-baseline seconds) defaults to
        :func:`~repro.serving.measure_service_baselines` on the active
        scale.
        """
        from ..serving import measure_service_baselines

        if requests < 1:
            raise ValueError("requests must be >= 1")
        names = self.type_names()
        if baselines is None:
            baselines = measure_service_baselines(names, scale=scale, spec=spec)
        baselines = {n: float(baselines[n]) for n in names}

        # Aggregate mean service time under the offered mix, weighting
        # each class's app mix by its arrival weight.
        total_weight = sum(c.arrival.rate for c in self.classes)
        mean_service = sum(
            (c.arrival.rate / total_weight) * w * baselines[t]
            for c in self.classes
            for t, w in c.app_mix
        )
        service_rate = self.cap / mean_service
        offered_rate = self.load * service_rate
        duration = requests / offered_rate

        resolved = []
        for c in self.classes:
            arrival = c.arrival.scaled(offered_rate * c.arrival.rate / total_weight)
            if arrival.kind == "diurnal":
                arrival = replace(arrival, period=duration / self.cycles)
            resolved.append(replace(c, arrival=arrival))
        model = TenantModel(classes=tuple(resolved), seed=self.seed)
        return BuiltScenario(
            scenario=self,
            model=model,
            baselines=baselines,
            requests=int(requests),
            service_rate=service_rate,
            offered_rate=offered_rate,
        )


@dataclass(frozen=True)
class BuiltScenario:
    """A scenario with rates, baselines and bounds resolved for one scale."""

    scenario: Scenario
    model: TenantModel
    baselines: Dict[str, float]
    requests: int
    service_rate: float
    offered_rate: float

    @property
    def name(self) -> str:
        return self.scenario.name

    def stream(self, chunk: Optional[int] = None):
        """A fresh arrival stream for this build (deterministic)."""
        kwargs = {} if chunk is None else {"chunk": chunk}
        return self.model.stream(self.baselines, limit=self.requests, **kwargs)

    def fingerprint(self, extra: Optional[Mapping] = None) -> str:
        """Content hash of everything that determines the arrival trace.

        ``extra`` folds in downstream knobs (serving config, policy)
        so one scenario can fingerprint many distinct runs.
        """
        payload = {
            "format-version": TRACE_VERSION,
            "scenario": self.scenario.name,
            "load": self.scenario.load,
            "cap": self.scenario.cap,
            "model": self.model.payload(),
            "baselines": sorted(self.baselines.items()),
            "requests": self.requests,
        }
        if extra:
            payload["extra"] = dict(extra)
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha1(blob).hexdigest()


def _interactive(weight: float, spec: ArrivalSpec, **kwargs) -> TenantClass:
    """The latency-sensitive class every scenario carries."""
    defaults = dict(
        slo_factor=4.0,
        priority=2,
        tenants=100_000,
        popularity="zipf",
        zipf_s=1.3,
    )
    defaults.update(kwargs)
    return TenantClass(
        name="interactive",
        arrival=replace(spec, rate=weight),
        app_mix=(("nn", 0.6), ("gaussian", 0.4)),
        **defaults,
    )


def _batch(weight: float, spec: ArrivalSpec, **kwargs) -> TenantClass:
    """The throughput-oriented class: relaxed SLO, heavier kernels."""
    defaults = dict(slo_factor=12.0, priority=0, tenants=500)
    defaults.update(kwargs)
    return TenantClass(
        name="batch",
        arrival=replace(spec, rate=weight),
        app_mix=(("needle", 0.5), ("srad", 0.5)),
        **defaults,
    )


#: The canonical scenario set the leaderboard sweeps (sorted by name).
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="steady",
            description="Poisson interactive + batch at 0.6x capacity",
            load=0.6,
            classes=(
                _interactive(2.0, ArrivalSpec("poisson")),
                _batch(1.0, ArrivalSpec("poisson")),
            ),
            seed=101,
        ),
        Scenario(
            name="burst",
            description=(
                "heavy-tailed arrivals at 0.8x capacity: Pareto "
                "interactive bursts over log-normal batch"
            ),
            load=0.8,
            classes=(
                _interactive(2.0, ArrivalSpec("pareto", alpha=1.3)),
                _batch(1.0, ArrivalSpec("lognormal", sigma=1.5)),
            ),
            seed=202,
        ),
        Scenario(
            name="diurnal",
            description=(
                "sinusoidal daily swing (amplitude 0.8) at 0.7x mean "
                "capacity, interactive-dominated peaks"
            ),
            load=0.7,
            classes=(
                _interactive(
                    2.0, ArrivalSpec("diurnal", amplitude=0.8)
                ),
                _batch(
                    1.0,
                    ArrivalSpec("diurnal", amplitude=0.8, phase=3.14159),
                ),
            ),
            cycles=4.0,
            seed=303,
        ),
        Scenario(
            name="overload",
            description="sustained 3x-capacity overload, mixed priorities",
            load=3.0,
            classes=(
                _interactive(3.0, ArrivalSpec("poisson")),
                _batch(1.0, ArrivalSpec("poisson")),
            ),
            seed=404,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a canonical scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
