"""Deterministic fault injection: plans, specs and the runtime injector.

Real shared-GPU serving must survive hung kernels, transient launch
failures, stalled DMA engines and flaky sensors — exactly the failure
modes concurrency characterization work shows get amplified when
independent streams share SMX and copy-engine resources.  This module is
the *model* of those failures:

* :class:`FaultSpec` — one fault, pinned to a simulated timestamp.
* :class:`FaultPlan` — an ordered, immutable set of specs.  Plans are
  either written explicitly (tests, demos) or *generated* from a seed
  (:meth:`FaultPlan.generate`), and the same seed always produces the
  same schedule — results under fault injection stay reproducible.
* :class:`FaultInjector` — the runtime object the engines consult.  It is
  attached to the :class:`~repro.sim.engine.Environment` event loop
  (``env.attach_fault_injector``) so time-scheduled faults *arm* exactly
  when the simulated clock reaches them, and consumed by the hooks in
  :mod:`repro.gpu.block_scheduler` (kernel hangs / launch failures),
  :mod:`repro.gpu.dma` (engine stalls) and
  :mod:`repro.framework.power_monitor` (sample dropouts).

Nothing here imports above :mod:`repro.sim`; the package sits beside
:mod:`repro.gpu` in the layering so the device model can depend on it
without cycles.
"""

from __future__ import annotations

import zlib
from collections import Counter, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.trace import TraceRecorder

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultRecord",
    "FaultPlan",
    "FaultInjector",
    "GRAY_KINDS",
    "CORRELATED_KINDS",
]

#: Trace track that fault/retry instants are recorded on.
RESILIENCE_TRACK = "resilience"


class FaultKind(str, Enum):
    """The failure modes the injector can model."""

    #: A kernel's thread blocks run ``factor``x slower than specified —
    #: the grid occupies SMX resources far past its deadline (a hang the
    #: watchdog is expected to detect; the grid *does* eventually retire,
    #: so simulations always terminate).
    KERNEL_HANG = "kernel_hang"
    #: A transient ``cudaLaunchKernel`` failure: the launch command fails
    #: immediately and the grid never reaches the device.
    LAUNCH_FAIL = "launch_fail"
    #: The DMA engine freezes for ``duration`` seconds before serving its
    #: next copy command (stalled copy engine / PCIe hiccup).
    DMA_STALL = "dma_stall"
    #: The power sensor returns no readings for ``duration`` seconds
    #: (NVML dropout); the monitor records nothing in the window.
    POWER_DROPOUT = "power_dropout"
    #: The *harness process itself* dies at ``time``: the serving engine
    #: raises :class:`~repro.sim.errors.HarnessCrash` out of the run, as
    #: if the host had been SIGKILLed.  Consumed by ``repro.serving``
    #: (crash-safe journaling / resume); ignored by the device engines.
    HARNESS_CRASH = "harness_crash"
    #: A whole device falls off the bus at ``time`` (ECC double-bit,
    #: driver reset, preemption): everything in flight on it is lost.
    #: Consumed by the fleet layer (:mod:`repro.fleet`), which interrupts
    #: the apps bound to the device and migrates them from their last
    #: checkpoint; ignored by the single-device engines.
    DEVICE_LOSS = "device_loss"
    #: The device is thermally/power throttled: every grid submitted
    #: during ``[time, time + duration)`` runs ``factor``x slower.
    #: Consumed by the grid engine; the fleet health monitor classifies
    #: the device *degraded* while a throttle window is open.
    DEVICE_THROTTLE = "device_throttle"
    #: *Gray* compute degradation: every thread-block cohort *placed*
    #: during ``[time, time + duration)`` retires ``factor``x slower.
    #: Unlike DEVICE_THROTTLE (which stamps a whole grid at submit time)
    #: this acts at scheduling-pass granularity, so a window opening
    #: mid-kernel slows the kernel's remaining waves — the SMX clock
    #: itself dropped, not one launch.  The device keeps heartbeating.
    SMX_SLOWDOWN = "smx_slowdown"
    #: *Gray* DMA degradation: every copy command *served* during
    #: ``[time, time + duration)`` takes ``factor``x its wire time
    #: (degraded PCIe link / copy-engine contention).  ``direction``
    #: optionally pins the stretch to one engine.
    DMA_STRETCH = "dma_stretch"
    #: *Gray* timing jitter: each kernel submitted during
    #: ``[time, time + duration)`` draws an independent slowdown uniform
    #: in ``[1, factor)`` from a per-window seeded stream (unstable
    #: boost clocks).  Deterministic for a given plan, noisy-looking to
    #: any latency percentile.
    CLOCK_JITTER = "clock_jitter"
    #: A runtime invariant probe found model state that violates a
    #: conservation law or calibrated bound (see
    #: :mod:`repro.integrity.invariants`).  Unlike the kinds above this is
    #: never *injected* — it is the classification the integrity subsystem
    #: reports when the model itself has drifted.
    INTEGRITY_VIOLATION = "integrity_violation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The gray-failure degradation kinds: the device stays alive (heartbeats
#: keep flowing) but runs slow.  Detected by the straggler detector
#: (:mod:`repro.resilience.gray`), never by the missed-heartbeat budget.
GRAY_KINDS = (
    FaultKind.SMX_SLOWDOWN,
    FaultKind.DMA_STRETCH,
    FaultKind.CLOCK_JITTER,
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    kind:
        Failure mode.
    time:
        Simulated timestamp (seconds) at which the fault arms.  An armed
        fault applies to the *next* matching activity (kernel launch, DMA
        service, power sample) at or after this time.
    target:
        Restrict kernel faults to one application: either a full app id
        (``"gaussian#2"``) or a type name (``"gaussian"``, matching every
        instance).  ``None`` matches any application.  Ignored by DMA and
        power faults.
    duration:
        Stall/dropout length in seconds (DMA_STALL, POWER_DROPOUT).
    factor:
        Slowdown multiplier for KERNEL_HANG (how much longer than spec
        the hung grid's blocks take to retire).
    direction:
        ``"HtoD"``/``"DtoH"`` to pin a DMA stall to one engine; ``None``
        stalls whichever engine serves next.
    device:
        Fleet device index the fault lands on (DEVICE_LOSS,
        DEVICE_THROTTLE; also scopes kernel/DMA/power faults when a plan
        is split per device).  ``None`` means device 0 — single-device
        plans never need to set it.
    """

    kind: FaultKind
    time: float
    target: Optional[str] = None
    duration: float = 0.0
    factor: float = 8.0
    direction: Optional[str] = None
    device: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time {self.time!r} is negative")
        if self.duration < 0:
            raise ValueError(f"fault duration {self.duration!r} is negative")
        if self.kind is FaultKind.KERNEL_HANG and self.factor <= 1.0:
            raise ValueError("kernel hang factor must exceed 1.0")
        if self.kind is FaultKind.DEVICE_THROTTLE:
            if self.factor <= 1.0:
                raise ValueError("device throttle factor must exceed 1.0")
            if self.duration <= 0:
                raise ValueError("device throttle needs a positive duration")
        if self.kind in GRAY_KINDS:
            if self.factor <= 1.0:
                raise ValueError(
                    f"{self.kind.value} factor must exceed 1.0"
                )
            if self.duration <= 0:
                raise ValueError(
                    f"{self.kind.value} needs a positive duration"
                )
        if self.device is not None and self.device < 0:
            raise ValueError(f"device index {self.device!r} is negative")

    @property
    def effective_device(self) -> int:
        """The fleet device index this fault lands on (default 0)."""
        return self.device if self.device is not None else 0

    def matches(self, app_id: Optional[str]) -> bool:
        """Whether this fault applies to ``app_id`` (kernel faults only)."""
        if self.target is None:
            return True
        if app_id is None:
            return False
        return app_id == self.target or app_id.split("#", 1)[0] == self.target


@dataclass(frozen=True)
class FaultRecord:
    """One fault that was actually applied during a run."""

    kind: FaultKind
    scheduled: float      # the spec's arm time
    applied: float        # simulated time the fault hit its activity
    target: Optional[str]  # app id / engine the fault landed on
    detail: str = ""


class FaultPlan:
    """An immutable, time-ordered set of :class:`FaultSpec` entries.

    Construct explicitly from specs, or deterministically from a seed via
    :meth:`generate`.  Two plans generated with the same arguments are
    identical — the injected schedule is part of the experiment's
    reproducible configuration, not a source of noise.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        self.faults: Tuple[FaultSpec, ...] = tuple(
            sorted(
                faults,
                key=lambda f: (
                    f.time,
                    f.kind.value,
                    f.target or "",
                    -1 if f.device is None else f.device,
                ),
            )
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FaultPlan):
            return self.faults == other.faults
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.faults)

    def __repr__(self) -> str:
        counts = Counter(f.kind.value for f in self.faults)
        inner = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"<FaultPlan {len(self.faults)} faults ({inner or 'empty'})>"

    @property
    def empty(self) -> bool:
        """Whether the plan injects nothing."""
        return not self.faults

    def counts(self) -> Dict[str, int]:
        """Planned faults per kind (kind value -> count)."""
        return dict(Counter(f.kind.value for f in self.faults))

    def crash_times(self) -> List[float]:
        """Arm times of every planned harness crash, earliest first."""
        return [
            f.time for f in self.faults if f.kind is FaultKind.HARNESS_CRASH
        ]

    def device_faults(self) -> List[FaultSpec]:
        """Every fleet-level fault (DEVICE_LOSS / DEVICE_THROTTLE)."""
        return [
            f
            for f in self.faults
            if f.kind in (FaultKind.DEVICE_LOSS, FaultKind.DEVICE_THROTTLE)
        ]

    def loss_specs(self) -> List[FaultSpec]:
        """Planned device losses, earliest first."""
        return [f for f in self.faults if f.kind is FaultKind.DEVICE_LOSS]

    def gray_specs(self) -> List[FaultSpec]:
        """Every planned gray degradation (slowdown/stretch/jitter)."""
        return [f for f in self.faults if f.kind in GRAY_KINDS]

    @classmethod
    def gray(
        cls,
        device: int,
        *,
        kind: "FaultKind | str" = FaultKind.SMX_SLOWDOWN,
        start: float = 0.0,
        duration: float,
        factor: float = 4.0,
        period: Optional[float] = None,
        duty: float = 0.5,
        direction: Optional[str] = None,
    ) -> "FaultPlan":
        """A sustained or intermittent gray degradation on one device.

        With ``period=None`` (default) the degradation is *sustained*: one
        window covering ``[start, start + duration)``.  With a ``period``
        the degradation is *intermittent*: a duty-cycled train of windows
        each open for ``duty * period`` seconds, repeating until the total
        span is covered — the oscillating thermal throttle that defeats
        any single-shot health check.
        """
        kind = FaultKind(kind)
        if kind not in GRAY_KINDS:
            raise ValueError(f"{kind.value} is not a gray-failure kind")
        if duration <= 0:
            raise ValueError("gray degradation needs a positive duration")
        specs: List[FaultSpec] = []
        if period is None:
            specs.append(
                FaultSpec(
                    kind,
                    start,
                    duration=duration,
                    factor=factor,
                    direction=direction,
                    device=device,
                )
            )
        else:
            if period <= 0:
                raise ValueError("period must be positive")
            if not 0.0 < duty <= 1.0:
                raise ValueError("duty must be in (0, 1]")
            t = start
            end = start + duration
            while t < end:
                window = min(duty * period, end - t)
                specs.append(
                    FaultSpec(
                        kind,
                        t,
                        duration=window,
                        factor=factor,
                        direction=direction,
                        device=device,
                    )
                )
                t += period
        return cls(specs)

    #: Kinds a correlated blast may arm (fail-stop, power, gray).
    CORRELATED_KINDS = (
        FaultKind.DEVICE_LOSS,
        FaultKind.POWER_DROPOUT,
        FaultKind.DEVICE_THROTTLE,
    ) + GRAY_KINDS

    @classmethod
    def correlated(
        cls,
        devices: Sequence[int],
        *,
        kind: "FaultKind | str" = FaultKind.DEVICE_LOSS,
        time: float = 0.0,
        skew: float = 0.0,
        seed: int = 0,
        duration: float = 0.0,
        factor: float = 4.0,
        direction: Optional[str] = None,
    ) -> "FaultPlan":
        """A blast-radius fault: one failure hits a whole domain at once.

        Models a correlated loss — a power rail browning out, a PCIe
        switch wedging — by arming the same fault on every device in
        ``devices`` (typically one :class:`~repro.fleet.topology.
        FleetTopology` domain's member set).  ``kind`` may be a fail-stop
        ``DEVICE_LOSS``, a ``POWER_DROPOUT``/``DEVICE_THROTTLE``, or any
        gray degradation kind (the domain browns out instead of dying).

        With ``skew=0`` (default) every member fails at exactly ``time``.
        A positive ``skew`` staggers the arms by per-device draws uniform
        in ``[0, skew)`` from a stream seeded by ``(seed, time)`` — real
        rails collapse over milliseconds, not instantaneously — while
        staying byte-reproducible for a given plan.
        """
        kind = FaultKind(kind)
        if kind not in cls.CORRELATED_KINDS:
            raise ValueError(
                f"{kind.value} cannot be armed as a correlated blast"
            )
        if not devices:
            raise ValueError("a correlated blast needs at least one device")
        if len(set(devices)) != len(devices):
            raise ValueError("duplicate device in correlated blast")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        needs_window = kind is not FaultKind.DEVICE_LOSS
        if needs_window and duration <= 0:
            raise ValueError(f"{kind.value} needs a positive duration")
        rng = None
        if skew > 0:
            rng = np.random.default_rng(
                [
                    seed,
                    zlib.crc32(b"correlated-blast"),
                    int(round(time * 1e9)) & 0x7FFFFFFF,
                ]
            )
        specs: List[FaultSpec] = []
        for device in devices:
            offset = skew * float(rng.random()) if rng is not None else 0.0
            specs.append(
                FaultSpec(
                    kind,
                    time + offset,
                    duration=duration if needs_window else 0.0,
                    factor=factor,
                    direction=direction,
                    device=int(device),
                )
            )
        return cls(specs)

    def for_device(self, index: int) -> "FaultPlan":
        """The sub-plan one fleet device's injector should consume.

        Keeps the engine-consumed kinds (kernel, DMA, power-sample and
        throttle faults) whose :attr:`FaultSpec.effective_device` equals
        ``index``; drops DEVICE_LOSS (handled by the registry's loss
        processes) and HARNESS_CRASH (handled by the harness).
        """
        return FaultPlan(
            [
                f
                for f in self.faults
                if f.kind
                not in (FaultKind.DEVICE_LOSS, FaultKind.HARNESS_CRASH)
                and f.effective_device == index
            ]
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        *,
        kernel_hang_rate: float = 0.0,
        launch_fail_rate: float = 0.0,
        dma_stall_rate: float = 0.0,
        power_dropout_rate: float = 0.0,
        targets: Optional[Sequence[str]] = None,
        hang_factor: float = 8.0,
        stall_duration: float = 1e-3,
        dropout_duration: float = 50e-3,
        num_devices: int = 1,
        device_loss_rate: float = 0.0,
        device_throttle_rate: float = 0.0,
        throttle_factor: float = 4.0,
        throttle_duration: float = 2e-3,
        smx_slowdown_rate: float = 0.0,
        dma_stretch_rate: float = 0.0,
        clock_jitter_rate: float = 0.0,
        slowdown_factor: float = 4.0,
        slowdown_duration: float = 2e-3,
        stretch_factor: float = 4.0,
        stretch_duration: float = 2e-3,
        jitter_factor: float = 1.5,
        jitter_duration: float = 2e-3,
    ) -> "FaultPlan":
        """Draw a seeded fault schedule over ``[0, horizon)``.

        Rates are expected faults per simulated second; the number of
        faults of each kind is Poisson(rate * horizon) and arm times are
        uniform over the horizon.  Everything is drawn from one
        ``numpy`` generator seeded with ``seed``, in a fixed kind order,
        so the same arguments always yield the same plan.

        With ``num_devices > 1`` every fault additionally draws a device
        index; the fleet kinds (``device_loss_rate`` /
        ``device_throttle_rate``) are drawn *after* the original four, so
        plans generated with the pre-fleet arguments are bit-identical to
        what older seeds produced (a zero rate consumes no draws).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices!r}")
        rng = np.random.default_rng(seed)
        faults: List[FaultSpec] = []

        def pick_target() -> Optional[str]:
            if not targets:
                return None
            return targets[int(rng.integers(len(targets)))]

        def pick_device() -> Optional[int]:
            if num_devices <= 1:
                return None
            return int(rng.integers(num_devices))

        def times(rate: float) -> List[float]:
            n = int(rng.poisson(rate * horizon)) if rate > 0 else 0
            return sorted(float(t) for t in rng.uniform(0.0, horizon, size=n))

        for t in times(kernel_hang_rate):
            faults.append(
                FaultSpec(
                    FaultKind.KERNEL_HANG,
                    t,
                    target=pick_target(),
                    factor=hang_factor,
                    device=pick_device(),
                )
            )
        for t in times(launch_fail_rate):
            faults.append(
                FaultSpec(
                    FaultKind.LAUNCH_FAIL,
                    t,
                    target=pick_target(),
                    device=pick_device(),
                )
            )
        for t in times(dma_stall_rate):
            direction = "HtoD" if rng.random() < 0.5 else "DtoH"
            faults.append(
                FaultSpec(
                    FaultKind.DMA_STALL,
                    t,
                    duration=stall_duration,
                    direction=direction,
                    device=pick_device(),
                )
            )
        for t in times(power_dropout_rate):
            faults.append(
                FaultSpec(
                    FaultKind.POWER_DROPOUT,
                    t,
                    duration=dropout_duration,
                    device=pick_device(),
                )
            )
        for t in times(device_loss_rate):
            faults.append(
                FaultSpec(FaultKind.DEVICE_LOSS, t, device=pick_device())
            )
        for t in times(device_throttle_rate):
            faults.append(
                FaultSpec(
                    FaultKind.DEVICE_THROTTLE,
                    t,
                    duration=throttle_duration,
                    factor=throttle_factor,
                    device=pick_device(),
                )
            )
        # Gray kinds draw last, mirroring how the fleet kinds were
        # appended after the original four: a zero rate consumes no
        # draws, so plans generated with the pre-gray arguments stay
        # bit-identical to what older seeds produced.
        for t in times(smx_slowdown_rate):
            faults.append(
                FaultSpec(
                    FaultKind.SMX_SLOWDOWN,
                    t,
                    duration=slowdown_duration,
                    factor=slowdown_factor,
                    device=pick_device(),
                )
            )
        for t in times(dma_stretch_rate):
            direction = "HtoD" if rng.random() < 0.5 else "DtoH"
            faults.append(
                FaultSpec(
                    FaultKind.DMA_STRETCH,
                    t,
                    duration=stretch_duration,
                    factor=stretch_factor,
                    direction=direction,
                    device=pick_device(),
                )
            )
        for t in times(clock_jitter_rate):
            faults.append(
                FaultSpec(
                    FaultKind.CLOCK_JITTER,
                    t,
                    duration=jitter_duration,
                    factor=jitter_factor,
                    device=pick_device(),
                )
            )
        return cls(faults)


#: Module-level alias of :attr:`FaultPlan.CORRELATED_KINDS` (mirrors how
#: ``GRAY_KINDS`` is exposed).
CORRELATED_KINDS = FaultPlan.CORRELATED_KINDS


class FaultInjector:
    """Runtime fault state for one simulation run.

    The injector holds the plan's specs in a pending queue ordered by arm
    time.  ``on_step`` (called by the environment at every event pop)
    moves due specs into per-kind armed queues; the engine hooks consume
    armed faults the next time a matching activity occurs.  Every applied
    fault is appended to :attr:`records` and, when a trace is attached,
    marked as an instant on the ``resilience`` track so Chrome-trace
    exports show exactly where faults landed.
    """

    def __init__(
        self,
        env,
        plan: Optional[FaultPlan] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.env = env
        self.plan = plan if plan is not None else FaultPlan()
        self.trace = trace
        self.records: List[FaultRecord] = []
        self._pending: Deque[FaultSpec] = deque(self.plan.faults)
        # Kernel hangs and launch failures share one queue so a submit
        # consumes the earliest-armed matching kernel fault of either kind.
        self._armed_kernel: Deque[FaultSpec] = deque()
        self._armed_stalls: Deque[FaultSpec] = deque()
        self._dropout_windows: List[FaultSpec] = []
        self._dropout_noted: set = set()
        self._throttle_windows: List[FaultSpec] = []
        self._throttle_noted: set = set()
        # Gray-degradation windows, one list per kind; each is recorded
        # once, on the first activity it actually slows.
        self._slowdown_windows: List[FaultSpec] = []
        self._slowdown_noted: set = set()
        self._stretch_windows: List[FaultSpec] = []
        self._stretch_noted: set = set()
        self._jitter_windows: List[FaultSpec] = []
        self._jitter_noted: set = set()
        # Per-window jitter streams, created lazily and seeded from the
        # spec itself so every draw is independent of global rng state.
        self._jitter_rng: Dict[int, np.random.Generator] = {}
        # Harness crashes are scheduled by the serving engine up front
        # (they kill the whole run, not one activity); armed specs are
        # parked here so they never leak into another kind's queue.
        # Device losses are likewise consumed by the fleet registry's own
        # loss processes, never by an engine hook.
        self._armed_crashes: List[FaultSpec] = []
        self._armed_losses: List[FaultSpec] = []

    def __repr__(self) -> str:
        return (
            f"<FaultInjector applied={len(self.records)} "
            f"pending={len(self._pending)}>"
        )

    # -- event-loop hook ---------------------------------------------------

    def on_step(self, now: float) -> None:
        """Arm every pending fault whose time has been reached."""
        pending = self._pending
        while pending and pending[0].time <= now:
            spec = pending.popleft()
            if spec.kind in (FaultKind.KERNEL_HANG, FaultKind.LAUNCH_FAIL):
                self._armed_kernel.append(spec)
            elif spec.kind is FaultKind.DMA_STALL:
                self._armed_stalls.append(spec)
            elif spec.kind is FaultKind.HARNESS_CRASH:
                self._armed_crashes.append(spec)
            elif spec.kind is FaultKind.DEVICE_LOSS:
                self._armed_losses.append(spec)
            elif spec.kind is FaultKind.DEVICE_THROTTLE:
                self._throttle_windows.append(spec)
            elif spec.kind is FaultKind.SMX_SLOWDOWN:
                self._slowdown_windows.append(spec)
            elif spec.kind is FaultKind.DMA_STRETCH:
                self._stretch_windows.append(spec)
            elif spec.kind is FaultKind.CLOCK_JITTER:
                self._jitter_windows.append(spec)
            else:
                self._dropout_windows.append(spec)

    # -- accounting --------------------------------------------------------

    @property
    def applied_count(self) -> int:
        """Total faults applied so far."""
        return len(self.records)

    def applied_counts(self) -> Dict[str, int]:
        """Applied faults per kind (kind value -> count)."""
        return dict(Counter(r.kind.value for r in self.records))

    def _record(
        self,
        spec: FaultSpec,
        target: Optional[str],
        detail: str,
    ) -> FaultRecord:
        record = FaultRecord(
            kind=spec.kind,
            scheduled=spec.time,
            applied=self.env.now,
            target=target,
            detail=detail,
        )
        self.records.append(record)
        if self.trace is not None:
            self.trace.mark(
                track=RESILIENCE_TRACK,
                category="fault",
                name=spec.kind.value,
                time=self.env.now,
                target=target or "",
                scheduled=spec.time,
                detail=detail,
            )
        return record

    # -- engine-facing consumption ----------------------------------------

    def kernel_fault(self, app_id: Optional[str], now: float) -> Optional[FaultSpec]:
        """Armed kernel fault matching ``app_id``, consumed, or ``None``.

        Called by the grid engine once per kernel-launch submission.  The
        caller applies the returned spec (fail the launch or inflate the
        grid's block duration) — recording happens here.
        """
        self.on_step(now)
        for i, spec in enumerate(self._armed_kernel):
            if spec.matches(app_id):
                del self._armed_kernel[i]
                detail = (
                    f"factor={spec.factor:g}"
                    if spec.kind is FaultKind.KERNEL_HANG
                    else "transient launch failure"
                )
                self._record(spec, app_id, detail)
                return spec
        return None

    def dma_stall(self, direction: str, now: float) -> float:
        """Total armed stall seconds for ``direction``, consumed.

        Called by a copy engine immediately before serving a command;
        every matching armed stall is applied (summed) and recorded.
        """
        self.on_step(now)
        total = 0.0
        remaining: Deque[FaultSpec] = deque()
        for spec in self._armed_stalls:
            if spec.direction is None or spec.direction == direction:
                total += spec.duration
                self._record(spec, f"dma-{direction.lower()}", f"stall={spec.duration:g}s")
            else:
                remaining.append(spec)
        self._armed_stalls = remaining
        return total

    def throttle_factor(self, now: float) -> float:
        """Combined slowdown of every open throttle window at ``now``.

        Called by the grid engine once per kernel-launch submission; the
        returned factor multiplies the grid's block duration.  ``1.0``
        when no DEVICE_THROTTLE window is open.  Each window is recorded
        once, on the first submission it slows down.
        """
        self.on_step(now)
        factor = 1.0
        keep: List[FaultSpec] = []
        for spec in self._throttle_windows:
            if now >= spec.time + spec.duration:
                continue  # window expired
            keep.append(spec)
            if now >= spec.time:
                factor *= spec.factor
                if id(spec) not in self._throttle_noted:
                    self._throttle_noted.add(id(spec))
                    self._record(
                        spec,
                        f"device-{spec.effective_device}",
                        f"throttle x{spec.factor:g} for {spec.duration:g}s",
                    )
        self._throttle_windows = keep
        return factor

    def throttle_active(self, now: float) -> bool:
        """Whether any DEVICE_THROTTLE window is open at ``now``.

        A read-only probe for health classification: does *not* record
        the window as applied (only a slowed-down submission does).
        """
        self.on_step(now)
        return any(
            spec.time <= now < spec.time + spec.duration
            for spec in self._throttle_windows
        )

    def smx_slowdown(self, now: float) -> float:
        """Combined gray compute slowdown at ``now`` (cohort placement).

        Called by the grid engine once per cohort-retirement scheduling;
        the returned factor multiplies the cohort's retirement duration.
        ``1.0`` when no SMX_SLOWDOWN window is open.  Each window is
        recorded once, on the first cohort it slows.
        """
        self.on_step(now)
        factor = 1.0
        keep: List[FaultSpec] = []
        for spec in self._slowdown_windows:
            if now >= spec.time + spec.duration:
                continue  # window expired
            keep.append(spec)
            if now >= spec.time:
                factor *= spec.factor
                if id(spec) not in self._slowdown_noted:
                    self._slowdown_noted.add(id(spec))
                    self._record(
                        spec,
                        f"device-{spec.effective_device}",
                        f"smx x{spec.factor:g} for {spec.duration:g}s",
                    )
        self._slowdown_windows = keep
        return factor

    def dma_stretch(self, direction: str, now: float) -> float:
        """Combined gray DMA stretch for ``direction`` at ``now``.

        Called by a copy engine once per served command; the returned
        factor multiplies the command's wire time.  Windows pinned to the
        other direction are skipped (but kept until they expire).
        """
        self.on_step(now)
        factor = 1.0
        keep: List[FaultSpec] = []
        for spec in self._stretch_windows:
            if now >= spec.time + spec.duration:
                continue  # window expired
            keep.append(spec)
            if spec.direction is not None and spec.direction != direction:
                continue
            if now >= spec.time:
                factor *= spec.factor
                if id(spec) not in self._stretch_noted:
                    self._stretch_noted.add(id(spec))
                    self._record(
                        spec,
                        f"dma-{direction.lower()}",
                        f"stretch x{spec.factor:g} for {spec.duration:g}s",
                    )
        self._stretch_windows = keep
        return factor

    def clock_jitter(self, app_id: Optional[str], now: float) -> float:
        """Per-submission jitter multiplier at ``now`` (``>= 1.0``).

        Each open CLOCK_JITTER window contributes an independent draw
        uniform in ``[1, factor)`` from a stream seeded by the window's
        own ``(time, device)`` identity — deterministic for a given plan
        no matter what else the run draws.
        """
        self.on_step(now)
        factor = 1.0
        keep: List[FaultSpec] = []
        for spec in self._jitter_windows:
            if now >= spec.time + spec.duration:
                continue  # window expired
            keep.append(spec)
            if now >= spec.time:
                rng = self._jitter_rng.get(id(spec))
                if rng is None:
                    rng = np.random.default_rng(
                        [
                            zlib.crc32(b"clock-jitter"),
                            int(round(spec.time * 1e9)) & 0x7FFFFFFF,
                            spec.effective_device,
                        ]
                    )
                    self._jitter_rng[id(spec)] = rng
                factor *= 1.0 + (spec.factor - 1.0) * float(rng.random())
                if id(spec) not in self._jitter_noted:
                    self._jitter_noted.add(id(spec))
                    self._record(
                        spec,
                        app_id,
                        f"jitter <=x{spec.factor:g} for {spec.duration:g}s",
                    )
        self._jitter_windows = keep
        return factor

    def gray_active(self, now: float) -> bool:
        """Whether any gray-degradation window is open at ``now``.

        A read-only probe (mirrors :meth:`throttle_active`): does *not*
        record windows as applied — only a slowed activity does.
        """
        self.on_step(now)
        return any(
            spec.time <= now < spec.time + spec.duration
            for windows in (
                self._slowdown_windows,
                self._stretch_windows,
                self._jitter_windows,
            )
            for spec in windows
        )

    def drop_power_sample(self, now: float) -> bool:
        """Whether the power sample at ``now`` falls in a dropout window."""
        self.on_step(now)
        active = False
        keep: List[FaultSpec] = []
        for spec in self._dropout_windows:
            if now >= spec.time + spec.duration:
                continue  # window expired
            keep.append(spec)
            if now >= spec.time:
                active = True
                if id(spec) not in self._dropout_noted:
                    self._dropout_noted.add(id(spec))
                    self._record(
                        spec, "power-monitor", f"window={spec.duration:g}s"
                    )
        self._dropout_windows = keep
        return active

    # -- framework-facing marks -------------------------------------------

    def mark_retry(self, app_id: str, attempt: int, delay: float) -> None:
        """Trace-mark a retry decision (no fault accounting)."""
        if self.trace is not None:
            self.trace.mark(
                track=RESILIENCE_TRACK,
                category="retry",
                name=f"{app_id} retry#{attempt}",
                time=self.env.now,
                app=app_id,
                attempt=attempt,
                backoff=delay,
            )

    def mark_deadline(self, app_id: str, deadline: float) -> None:
        """Trace-mark a watchdog cancellation."""
        if self.trace is not None:
            self.trace.mark(
                track=RESILIENCE_TRACK,
                category="deadline",
                name=f"{app_id} deadline",
                time=self.env.now,
                app=app_id,
                deadline=deadline,
            )
