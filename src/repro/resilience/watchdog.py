"""Deadline watchdog: cancel applications that run past their budget.

A hung kernel (see :class:`~repro.resilience.faults.FaultKind.KERNEL_HANG`)
does not raise anything by itself — it just makes a grid occupy the SMX
array for far longer than its specification says it should.  The watchdog
is the detection side: each application attempt is guarded by a deadline
(typically a configurable multiple of its measured serial-baseline
runtime); if the attempt is still alive when the deadline fires, the
watchdog interrupts it with a :class:`~repro.sim.errors.DeadlineExceeded`
cause, and the supervisor turns that into a retry or a recorded failure.

The guard itself is a tiny process that sleeps for the deadline.  If the
guarded attempt finishes first, the supervisor disarms the guard by
interrupting *it*; the guard swallows that interrupt and exits quietly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..sim.errors import DeadlineExceeded, Interrupt
from ..sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment

__all__ = ["Watchdog", "WatchdogGuard"]


class WatchdogGuard:
    """Handle for one armed deadline.

    ``disarm()`` is idempotent and safe to call whether the guard already
    fired, was already disarmed, or is still pending.
    """

    def __init__(
        self, watchdog: "Watchdog", process: Process, app_id: str, deadline: float
    ) -> None:
        self.watchdog = watchdog
        self.process = process
        self.app_id = app_id
        self.deadline = deadline
        self.fired = False
        self._timer: Optional[Process] = None

    def disarm(self) -> None:
        """Cancel the pending deadline (no-op if it already fired)."""
        timer = self._timer
        if timer is not None and timer.is_alive:
            timer.interrupt("disarm")
        self._timer = None


class Watchdog:
    """Arms per-attempt deadlines and cancels overrunning processes.

    One watchdog instance serves the whole harness run; it keeps counters
    (:attr:`expirations`) and a log of every cancellation for the final
    resilience summary.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.expirations: int = 0
        #: ``(app_id, deadline, fired_at)`` for every cancellation.
        self.log: List[Tuple[str, float, float]] = []

    def guard(
        self, process: Process, deadline: float, app_id: str
    ) -> WatchdogGuard:
        """Arm a deadline of ``deadline`` seconds (from now) over ``process``.

        Returns a :class:`WatchdogGuard`; the caller must ``disarm()`` it
        when the guarded process completes on its own.
        """
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline!r}")
        guard = WatchdogGuard(self, process, app_id, deadline)
        guard._timer = self.env.process(
            self._watch(guard), name=f"watchdog:{app_id}"
        )
        return guard

    def _watch(self, guard: WatchdogGuard):
        start = self.env.now
        try:
            yield self.env.timeout(guard.deadline)
        except Interrupt:
            return  # Disarmed: the attempt finished inside its budget.
        process = guard.process
        if not process.is_alive:
            return  # Finished at exactly the deadline; nothing to cancel.
        guard.fired = True
        self.expirations += 1
        self.log.append((guard.app_id, guard.deadline, self.env.now))
        process.interrupt(
            DeadlineExceeded(guard.app_id, guard.deadline, self.env.now - start)
        )
