"""Per-application supervision: admission, deadline, retry.

:class:`AppSupervisor` wraps one application thread in the full resilience
loop.  Where the plain harness spawns ``env.process(thread.run())``
directly, the resilient harness spawns ``env.process(supervisor.run())``
instead, and the supervisor:

1. acquires an admission slot from the :class:`ConcurrencyLimiter` (the
   degradation ladder's gate),
2. starts the attempt as a child process and arms a watchdog deadline
   over it,
3. on success disarms the guard, releases the slot and returns;
4. on a detected fault (:class:`~repro.sim.errors.FaultError` raised by
   the attempt, or an :class:`~repro.sim.errors.Interrupt` carrying
   :class:`~repro.sim.errors.DeadlineExceeded` from the watchdog)
   records the detection, notifies the degradation controller, and —
   budget permitting — resets the thread and retries after a seeded
   exponential backoff.

The supervisor itself *never* fails: a permanently failed application is
recorded (``record.failed``) and the supervisor returns normally, so the
parent's ``AllOf(children)`` barrier completes even under faults.

The wrapped thread is duck-typed (``run()``, ``reset_for_retry()``,
``record``, ``app``): this module depends only on :mod:`repro.sim`, never
on :mod:`repro.framework`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.errors import DeadlineExceeded, FaultError, Interrupt
from .retry import RetryPolicy, app_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment
    from .degradation import ConcurrencyLimiter, DegradationController
    from .faults import FaultInjector
    from .watchdog import Watchdog

__all__ = ["AppSupervisor"]


class AppSupervisor:
    """Runs one application thread with retry, deadline and admission.

    Parameters
    ----------
    env:
        Simulation environment.
    thread:
        The application thread to supervise (any object with ``run()``,
        ``reset_for_retry()``, a ``record`` and an ``app`` with
        ``app_id``).
    policy:
        Retry policy; ``None`` means a single attempt.
    watchdog, deadline:
        Watchdog instance and per-attempt deadline seconds; either may be
        ``None`` to disable deadline enforcement for this application.
    limiter:
        Admission gate; ``None`` admits unconditionally.
    controller:
        Degradation controller notified of every detected fault.
    injector:
        Fault injector used only for trace marks (retry/deadline
        instants); may be ``None``.
    seed:
        Base seed combined with the app id for backoff jitter.
    budget:
        Shared :class:`~repro.resilience.budget.RetryBudget`, or ``None``
        for unbudgeted retries (the historical behaviour).  When the
        app's class bucket is empty a retry that the policy would allow
        is *denied* instead: the app fails with ``retries_denied``
        incremented, capping system-wide retry amplification.
    """

    def __init__(
        self,
        env: "Environment",
        thread,
        *,
        policy: Optional[RetryPolicy] = None,
        watchdog: Optional["Watchdog"] = None,
        deadline: Optional[float] = None,
        limiter: Optional["ConcurrencyLimiter"] = None,
        controller: Optional["DegradationController"] = None,
        injector: Optional["FaultInjector"] = None,
        seed: int = 0,
        budget=None,
    ) -> None:
        self.env = env
        self.thread = thread
        self.policy = policy if policy is not None else RetryPolicy(max_attempts=1)
        self.watchdog = watchdog
        self.deadline = deadline
        self.limiter = limiter
        self.controller = controller
        self.injector = injector
        self.budget = budget
        self.app_id: str = thread.app.app_id
        self._rng = app_rng(seed, self.app_id)

    def run(self):
        """Process generator: the supervised application lifecycle."""
        env = self.env
        thread = self.thread
        record = thread.record
        attempt = 0
        # Causal tracing: the supervisor annotates the supervised app's
        # trace (backoffs, watchdog fires, budget denials).  Both checks
        # default to None, so unsupervised-style runs pay nothing.
        tracer = env.tracer
        trace_ctx = getattr(thread, "trace_ctx", None)
        traced = tracer is not None and trace_ctx is not None

        while True:
            attempt += 1
            record.attempts = attempt

            if self.limiter is not None:
                limiter_from = env.now
                yield from self.limiter.acquire()
                if traced and env.now > limiter_from:
                    tracer.record(
                        trace_ctx, "admission.limiter", "admission-limiter",
                        limiter_from, env.now, attempt=attempt,
                    )

            child = env.process(
                thread.run(), name=f"thread-{self.app_id}#a{attempt}"
            )
            guard = None
            if self.watchdog is not None and self.deadline is not None:
                guard = self.watchdog.guard(child, self.deadline, self.app_id)

            try:
                yield child
            except (FaultError, Interrupt) as exc:
                if guard is not None:
                    guard.disarm()
                if self.limiter is not None:
                    self.limiter.release()
                is_deadline = isinstance(exc, Interrupt) and isinstance(
                    exc.cause, DeadlineExceeded
                )
                record.faults_detected += 1
                if is_deadline:
                    record.deadline_hits += 1
                    if self.injector is not None:
                        self.injector.mark_deadline(self.app_id, self.deadline)
                    if traced:
                        tracer.instant(
                            trace_ctx, "watchdog.deadline", "watchdog",
                            env.now, attempt=attempt, deadline=self.deadline,
                        )
                if self.controller is not None:
                    self.controller.note_fault()

                if not self.policy.allows_retry(attempt):
                    record.failed = True
                    record.complete_time = env.now
                    return
                if self.budget is not None and not self.budget.try_spend(
                    record.type_name, env.now
                ):
                    # The policy would retry, but the shared budget is
                    # exhausted: fail rather than amplify.
                    record.retries_denied += 1
                    record.failed = True
                    record.complete_time = env.now
                    if traced:
                        tracer.instant(
                            trace_ctx, "retry.denied", "retry-denied",
                            env.now, attempt=attempt,
                        )
                    return
                record.retries += 1
                delay = self.policy.delay(attempt, self._rng)
                if self.injector is not None:
                    self.injector.mark_retry(self.app_id, attempt, delay)
                thread.reset_for_retry()
                if delay > 0:
                    backoff_from = env.now
                    yield env.timeout(delay)
                    if traced:
                        tracer.record(
                            trace_ctx, "retry.backoff", "retry-backoff",
                            backoff_from, env.now, attempt=attempt,
                        )
                continue

            # Attempt finished cleanly inside its budget.
            if guard is not None:
                guard.disarm()
            if self.limiter is not None:
                self.limiter.release()
            return
