"""Fault injection and resilience for the Hyper-Q harness.

The paper measures how concurrency (NS) trades performance against power
on a healthy device.  This package asks the operational follow-up: what
happens to a shared, concurrency-saturated GPU when things go *wrong* —
and gives the harness the machinery production serving stacks use to
survive it:

* deterministic, seeded **fault injection** (:mod:`~repro.resilience.faults`):
  kernel hangs, transient launch failures, DMA stalls, power-sensor
  dropouts, armed at planned simulated timestamps;
* a **watchdog** (:mod:`~repro.resilience.watchdog`) that cancels
  applications exceeding a multiple of their serial-baseline runtime;
* per-application **retry with exponential backoff**
  (:mod:`~repro.resilience.retry`), seed-jittered and reproducible;
* **graceful concurrency degradation**
  (:mod:`~repro.resilience.degradation`): a fault-density ladder that
  steps NS down toward the paper's serialized baseline;
* supervision (:mod:`~repro.resilience.supervisor`) and configuration /
  accounting (:mod:`~repro.resilience.config`) gluing it together.

Everything is off by default: with no :class:`ResilienceConfig` the
harness takes its original code paths and produces byte-identical
results.  See ``docs/resilience.md`` for the full model.
"""

from .budget import RetryBudget, RetryBudgetConfig, unfinishable
from .config import ResilienceConfig, ResilienceSummary
from .degradation import ConcurrencyLimiter, DegradationController, ladder_limit
from .faults import (
    CORRELATED_KINDS,
    GRAY_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRecord,
    FaultSpec,
)
from .gray import HealthScore, StragglerDetector
from .metastable import BrownoutConfig, MetastabilityProbe
from .retry import RetryPolicy, app_rng, replica_rng
from .supervisor import AppSupervisor
from .watchdog import Watchdog, WatchdogGuard

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultRecord",
    "FaultPlan",
    "FaultInjector",
    "GRAY_KINDS",
    "CORRELATED_KINDS",
    "RetryBudget",
    "RetryBudgetConfig",
    "unfinishable",
    "BrownoutConfig",
    "MetastabilityProbe",
    "HealthScore",
    "StragglerDetector",
    "RetryPolicy",
    "app_rng",
    "replica_rng",
    "Watchdog",
    "WatchdogGuard",
    "ConcurrencyLimiter",
    "DegradationController",
    "ladder_limit",
    "AppSupervisor",
    "ResilienceConfig",
    "ResilienceSummary",
]
