"""Straggler detection: percentile-based health scoring for gray failures.

A fail-stop loss is easy — heartbeats vanish and the missed-heartbeat
budget runs out.  A *gray* failure keeps heartbeating while running 2-10x
slow (thermal throttle, degraded DMA, jittery clocks), so the only
evidence is in the latency the device's own work observes.  The detector
turns that evidence into a graded :class:`HealthScore` per device:

* every completed kernel/copy on a device contributes a **latency
  stretch** observation — wall time divided by the operation's ideal
  time (``waves * block_duration`` for kernels, wire time for copies), so
  1.0 means "at spec" regardless of operation size;
* per device the detector keeps an **EMA** of the stretch (the same
  ``prior + alpha * (x - prior)`` blend the workload characterizer uses)
  plus a bounded **window** of recent observations for a deterministic
  nearest-rank p95;
* a device's **score** compares its p95 stretch against the fleet median
  of the per-device EMAs: ``score = clamp(fleet_median / p95, 0, 1]``.
  A device at the fleet's pace scores ~1.0; a device running 4x slower
  than its peers scores ~0.25.

Scores are *graded*, not binary: the health monitor classifies a device
degraded when its score falls under a threshold, and the serving gate can
use the same number as a routing weight.  Everything is pure arithmetic
over observations the simulation already produces — same inputs, same
scores, byte-reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["HealthScore", "StragglerDetector"]


def _nearest_rank(sorted_values: List[float], quantile: float) -> float:
    """Deterministic nearest-rank percentile of a pre-sorted list."""
    if not sorted_values:
        return 1.0
    rank = max(0, -(-int(quantile * 100) * len(sorted_values) // 100) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass(frozen=True)
class HealthScore:
    """One device's graded health at a scoring instant.

    ``score`` is in ``(0, 1]``: 1.0 = at the fleet's pace, lower = slower.
    ``kernel_stretch`` / ``dma_stretch`` are the per-path EMAs (1.0 = at
    spec), ``p95_stretch`` the windowed tail, ``fleet_median`` the median
    of every device's combined EMA, ``samples`` how many observations
    back the number.
    """

    device: int
    score: float
    kernel_stretch: float
    dma_stretch: float
    p95_stretch: float
    fleet_median: float
    samples: int

    def describe(self) -> str:
        return (
            f"dev{self.device} score={self.score:.2f} "
            f"p95x{self.p95_stretch:.2f} vs fleet x{self.fleet_median:.2f} "
            f"({self.samples} obs)"
        )


class _DeviceStats:
    """Per-device EMA + bounded observation window.

    ``combined`` is the worst of the two path EMAs, maintained at every
    write (a device is as slow as its slowest path; averaging would let
    a healthy DMA mask a dying SMX).  1.0 until the first observation.
    """

    __slots__ = ("kernel_ema", "dma_ema", "combined", "window", "samples")

    def __init__(self, window: int) -> None:
        self.kernel_ema: Optional[float] = None
        self.dma_ema: Optional[float] = None
        self.combined: float = 1.0
        self.window: Deque[float] = deque(maxlen=window)
        self.samples = 0


class StragglerDetector:
    """Scores per-device health from observed latency stretch.

    Parameters
    ----------
    num_devices:
        Fleet size; scores exist for every index from the start.
    ema_alpha:
        EMA blend weight for new observations (mirrors
        :class:`~repro.scheduling.characterize.WorkloadCharacterizer`).
    window:
        Bounded per-device window backing the nearest-rank p95.
    min_samples:
        A device is never classified a straggler on fewer observations —
        the first kernel of a run must not condemn its device.
    straggler_score:
        Classification threshold: ``is_straggler`` iff ``score`` falls
        strictly below this with enough samples.
    """

    def __init__(
        self,
        num_devices: int,
        *,
        ema_alpha: float = 0.3,
        window: int = 32,
        min_samples: int = 4,
        straggler_score: float = 0.5,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < straggler_score <= 1.0:
            raise ValueError("straggler_score must be in (0, 1]")
        self.num_devices = num_devices
        self.ema_alpha = ema_alpha
        self.min_samples = min_samples
        self.straggler_score = straggler_score
        self._stats: List[_DeviceStats] = [
            _DeviceStats(window) for _ in range(num_devices)
        ]
        # Memoization: scores are pure functions of the observations fed
        # so far, and the health monitor asks for them every heartbeat
        # (far more often than observations arrive).  Caching by
        # observation epoch keeps the idle hedging path off the hot
        # path without changing a single returned value.
        self._epoch = 0
        self._median_cache: tuple = (-1, 1.0)
        self._p95_cache: Dict[int, tuple] = {}
        self._score_cache: Dict[int, tuple] = {}

    # -- feeding -----------------------------------------------------------

    # The two observe methods run once per completed kernel/copy in every
    # hedging-enabled fleet — the single hottest detector path — so each
    # is a flat, self-contained body rather than a shared helper.

    def observe_kernel(self, device: int, stretch: float) -> None:
        """One completed kernel's latency stretch on ``device``."""
        if stretch <= 0:
            return  # zero-duration op: no timing information
        stats = self._stats[device]
        prior = stats.kernel_ema
        ema = stats.kernel_ema = (
            stretch
            if prior is None
            else prior + self.ema_alpha * (stretch - prior)
        )
        other = stats.dma_ema
        stats.combined = ema if (other is None or ema > other) else other
        stats.window.append(stretch)
        stats.samples += 1
        self._epoch += 1

    def observe_dma(self, device: int, stretch: float) -> None:
        """One completed copy's latency stretch on ``device``."""
        if stretch <= 0:
            return  # zero-duration op: no timing information
        stats = self._stats[device]
        prior = stats.dma_ema
        ema = stats.dma_ema = (
            stretch
            if prior is None
            else prior + self.ema_alpha * (stretch - prior)
        )
        other = stats.kernel_ema
        stats.combined = ema if (other is None or ema > other) else other
        stats.window.append(stretch)
        stats.samples += 1
        self._epoch += 1

    @property
    def observations(self) -> int:
        """Total observations accepted (diagnostics / telemetry)."""
        return self._epoch

    def kernel_observer(self, device: int) -> "Callable[[float], None]":
        """Bound fast-path equivalent of :meth:`observe_kernel`.

        Fleet threads call the returned closure once per completed
        kernel on ``device``, so the per-device stats and config lookups
        happen here — once per binding — instead of per call.
        """
        stats = self._stats[device]
        window = stats.window
        alpha = self.ema_alpha

        def observe(stretch: float) -> None:
            if stretch <= 0:
                return
            prior = stats.kernel_ema
            ema = stats.kernel_ema = (
                stretch
                if prior is None
                else prior + alpha * (stretch - prior)
            )
            other = stats.dma_ema
            stats.combined = ema if (other is None or ema > other) else other
            window.append(stretch)
            stats.samples += 1
            self._epoch += 1

        return observe

    def dma_observer(self, device: int) -> "Callable[[float], None]":
        """Bound fast-path equivalent of :meth:`observe_dma`."""
        stats = self._stats[device]
        window = stats.window
        alpha = self.ema_alpha

        def observe(stretch: float) -> None:
            if stretch <= 0:
                return
            prior = stats.dma_ema
            ema = stats.dma_ema = (
                stretch
                if prior is None
                else prior + alpha * (stretch - prior)
            )
            other = stats.kernel_ema
            stats.combined = ema if (other is None or ema > other) else other
            window.append(stretch)
            stats.samples += 1
            self._epoch += 1

        return observe

    # -- scoring -----------------------------------------------------------

    def fleet_median(self) -> float:
        """Median of the per-device combined EMAs (1.0 with no data).

        Uses the *lower* middle element for even fleet sizes: the median
        is the fleet's pace baseline, and in a two-device fleet the
        midpoint convention would drag the baseline halfway toward the
        straggler, masking exactly the asymmetry being measured.
        """
        cached_epoch, cached = self._median_cache
        if cached_epoch == self._epoch:
            return cached
        emas = sorted(
            s.combined for s in self._stats if s.samples > 0
        )
        value = 1.0 if not emas else emas[(len(emas) - 1) // 2]
        self._median_cache = (self._epoch, value)
        return value

    def _p95(self, device: int, stats: _DeviceStats) -> float:
        """Windowed nearest-rank p95, re-sorted only on new samples."""
        cached_samples, cached = self._p95_cache.get(device, (-1, 1.0))
        if cached_samples == stats.samples:
            return cached
        value = _nearest_rank(sorted(stats.window), 0.95)
        self._p95_cache[device] = (stats.samples, value)
        return value

    def _score_value(self, device: int) -> float:
        """The bare score number (the health monitor's per-heartbeat
        fast path: no :class:`HealthScore` construction)."""
        stats = self._stats[device]
        if stats.samples == 0:
            return 1.0
        p95 = self._p95(device, stats)
        if p95 <= 0:
            return 1.0
        return min(1.0, self.fleet_median() / p95)

    def score(self, device: int) -> HealthScore:
        """Graded health of ``device`` against the current fleet."""
        cached_epoch, cached = self._score_cache.get(device, (-1, None))
        if cached_epoch == self._epoch:
            return cached
        stats = self._stats[device]
        median = self.fleet_median()
        p95 = self._p95(device, stats)
        value = self._score_value(device)
        result = HealthScore(
            device=device,
            score=value,
            kernel_stretch=stats.kernel_ema or 1.0,
            dma_stretch=stats.dma_ema or 1.0,
            p95_stretch=p95,
            fleet_median=median,
            samples=stats.samples,
        )
        self._score_cache[device] = (self._epoch, result)
        return result

    def scores(self) -> Dict[int, HealthScore]:
        """Every device's current score (device index -> score)."""
        return {i: self.score(i) for i in range(self.num_devices)}

    def is_straggler(self, device: int) -> bool:
        """Whether ``device`` is currently classified a straggler.

        The health monitor and the hedge scanner both call this per
        device per tick, so the body inlines :meth:`_score_value` and
        works straight off the epoch/samples caches rather than going
        through the call chain.
        """
        stats = self._stats[device]
        samples = stats.samples
        if samples < self.min_samples:
            return False
        cached_samples, p95 = self._p95_cache.get(device, (-1, 1.0))
        if cached_samples != samples:
            p95 = _nearest_rank(sorted(stats.window), 0.95)
            self._p95_cache[device] = (samples, p95)
        if p95 <= 0:
            return False
        epoch, median = self._median_cache
        if epoch != self._epoch:
            median = self.fleet_median()
        return median / p95 < self.straggler_score
