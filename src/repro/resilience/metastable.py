"""Metastability detection and the brownout ladder.

A *metastable* failure is the state where a system has capacity but no
goodput: every server is busy, yet nothing useful completes, because the
work being done is retries, re-runs and restores of work that already
missed its deadline.  The trigger (a fault domain dying, a load spike)
can end and the system *stays* collapsed — the amplification loop is
self-sustaining.

:class:`MetastabilityProbe` watches for that state from telemetry-shaped
signals: callers feed it *useful* progress (kernel completions of work
that can still meet its deadline) and it compares each detection window's
goodput against the fleet's current healthy capacity.  Sustained
goodput-below-floor trips the **brownout ladder**:

* level 1 — degrade stream width: per-device admission narrows so the
  attempts already running stop time-sharing with the backlog, finish,
  and count as goodput again (the hedge manager also stands down);
* level 2 — shed low-priority classes: configured app types are dropped
  at their next admission point instead of queued.

Recovery is symmetric: ``recover_windows`` consecutive healthy windows
step the ladder back down.  Every transition is journaled (through the
run's fenced journal when one is attached) and mirrored into an events
list, in the same style as every prior decision-making subsystem; with
``BrownoutConfig`` absent the probe is never constructed and results are
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment

__all__ = ["BrownoutConfig", "MetastabilityProbe"]


@dataclass(frozen=True)
class BrownoutConfig:
    """Detection-window and ladder parameters for metastability control.

    Attributes
    ----------
    window:
        Detection window length (simulated seconds).  Goodput is
        evaluated once per window.
    floor:
        Goodput floor as a fraction of current healthy capacity; a
        window whose ratio falls strictly below it is *unhealthy*.
    trip_windows:
        Consecutive unhealthy windows that trip the ladder one level up.
        The system is counted *metastable* only past this point — the
        ladder is supposed to fire first.
    recover_windows:
        Consecutive healthy windows that step the ladder one level down.
    max_level:
        Ladder ceiling (2 = width degrade + load shed).
    width_factor:
        Stream-width multiplier applied per device at level >= 1
        (``0.5`` halves per-device admission width).
    shed_types:
        Low-priority application type names shed at level >= 2.
    per_device_rate:
        Expected *useful* kernel completions per second per healthy
        device — the capacity calibration the goodput ratio divides by.
        ``0`` leaves the probe observational (no window ever trips).
    """

    window: float = 1e-3
    floor: float = 0.5
    trip_windows: int = 2
    recover_windows: int = 2
    max_level: int = 2
    width_factor: float = 0.5
    shed_types: Tuple[str, ...] = ()
    per_device_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError("floor must be in (0, 1]")
        if self.trip_windows < 1:
            raise ValueError("trip_windows must be >= 1")
        if self.recover_windows < 1:
            raise ValueError("recover_windows must be >= 1")
        if not 1 <= self.max_level <= 2:
            raise ValueError("max_level must be 1 or 2")
        if not 0.0 < self.width_factor <= 1.0:
            raise ValueError("width_factor must be in (0, 1]")
        if self.per_device_rate < 0:
            raise ValueError("per_device_rate must be >= 0")
        object.__setattr__(
            self, "shed_types", tuple(str(t) for t in self.shed_types)
        )


class MetastabilityProbe:
    """Windowed goodput-vs-capacity watcher driving the brownout ladder.

    Parameters
    ----------
    env:
        Simulation environment (the probe owns one periodic process).
    config:
        :class:`BrownoutConfig` thresholds and ladder shape.
    healthy_devices:
        Zero-argument callable returning the current healthy device
        count (capacity shrinks with the fleet, so a domain loss does
        not by itself read as a goodput collapse).
    journal:
        Optional fenced journal; every ladder transition is recorded
        tokenless (a brownout decision is legitimate in any generation).
    on_level:
        Optional callback invoked as ``on_level(new_level, old_level)``
        at every transition — the harness uses it to resize per-device
        width gates.
    """

    def __init__(
        self,
        env: "Environment",
        config: BrownoutConfig,
        healthy_devices: Callable[[], int],
        *,
        journal=None,
        on_level: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.healthy_devices = healthy_devices
        self.journal = journal
        self.on_level = on_level
        self.level = 0
        #: Windows spent metastable (below floor *past* the trip budget).
        self.metastable_windows = 0
        #: Admissions shed because of a level-2 brownout.
        self.sheds = 0
        #: Per-window series: ``{"t", "goodput", "capacity", "ratio",
        #: "level"}`` — the recovery timeline benchmarks read.
        self.windows: List[dict] = []
        #: Journal-shaped ladder transitions (kept even without a journal).
        self.events: List[dict] = []
        self._progress = 0.0
        self._below = 0
        self._above = 0
        self._running = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MetastabilityProbe level={self.level} "
            f"windows={len(self.windows)}>"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic window evaluation (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._poll_loop(), name="metastability-probe")

    def stop(self) -> None:
        """Stop evaluating after the next window boundary."""
        self._running = False

    def _poll_loop(self):
        while self._running:
            yield self.env.timeout(self.config.window)
            if not self._running:
                return
            self._close_window()

    # -- signal feed -------------------------------------------------------

    def note_progress(self, kernels: float) -> None:
        """Account useful work completed inside the current window.

        Callers feed only work that can still meet its deadline — a
        kernel executed for an already-doomed attempt is amplification,
        not goodput, and counting it would hide exactly the state this
        probe exists to detect.
        """
        self._progress += kernels

    def shed_class(self, type_name: str) -> bool:
        """Whether a level-2 brownout sheds ``type_name`` right now."""
        if self.level < 2:
            return False
        if type_name not in self.config.shed_types:
            return False
        self.sheds += 1
        return True

    @property
    def brownout_active(self) -> bool:
        """Whether any ladder level is currently engaged."""
        return self.level > 0

    # -- the window evaluation ---------------------------------------------

    def _close_window(self) -> None:
        cfg = self.config
        now = self.env.now
        goodput = self._progress / cfg.window
        self._progress = 0.0
        capacity = self.healthy_devices() * cfg.per_device_rate
        ratio = goodput / capacity if capacity > 0 else 1.0
        below = ratio < cfg.floor
        if below:
            self._below += 1
            self._above = 0
            if self._below > cfg.trip_windows:
                self.metastable_windows += 1
        else:
            self._above += 1
            self._below = 0
        self.windows.append(
            {
                "t": now,
                "goodput": goodput,
                "capacity": capacity,
                "ratio": ratio,
                "level": self.level,
            }
        )
        if (
            below
            and self._below >= cfg.trip_windows
            and self.level < cfg.max_level
        ):
            self._transition(self.level + 1, ratio, now)
            self._below = 0
        elif (
            not below and self._above >= cfg.recover_windows and self.level > 0
        ):
            self._transition(self.level - 1, ratio, now)
            self._above = 0

    def _transition(self, level: int, ratio: float, now: float) -> None:
        old = self.level
        self.level = level
        entry = {
            "event": "brownout",
            "level": level,
            "from": old,
            "ratio": ratio,
            "t": now,
        }
        self.events.append(dict(entry))
        if self.journal is not None:
            # Tokenless on purpose: a ladder decision is legitimate no
            # matter which device generations advanced around it.
            self.journal.record(entry)
        if self.on_level is not None:
            self.on_level(level, old)
