"""Retry policies with deterministic, seed-jittered exponential backoff.

When a fault kills an application attempt the harness does not give up:
the supervisor re-runs the application after a backoff delay.  Backoff is
exponential with a small multiplicative jitter so retried applications do
not re-collide at exactly the same simulated instant — but the jitter is
drawn from a per-application seeded generator, so the whole schedule is
reproducible run over run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "app_rng", "replica_rng"]


def app_rng(seed: int, app_id: str) -> np.random.Generator:
    """A generator seeded deterministically from ``(seed, app_id)``.

    Uses CRC-32 of the app id rather than :func:`hash` because Python
    salts string hashes per process; CRC-32 keeps the jitter identical
    across interpreter invocations.
    """
    return np.random.default_rng([seed, zlib.crc32(app_id.encode("utf-8"))])


def replica_rng(seed: int, app_id: str, replica_idx: int) -> np.random.Generator:
    """A generator for one hedge replica of ``app_id``.

    Seeded from ``(seed, crc32(app_id), replica_idx)`` so every
    speculative replica's backoff jitter is drawn from its *own* stream:
    launching (or not launching) a hedge never perturbs the primary's
    :func:`app_rng` draws, which keeps hedged and unhedged runs each
    deterministic.  ``replica_idx`` counts from 1 (0 would collide with
    nothing — the primary uses the two-word seed — but 1-based matches
    "replica #1" in the journal).
    """
    if replica_idx < 1:
        raise ValueError("replica_idx counts from 1")
    return np.random.default_rng(
        [seed, zlib.crc32(app_id.encode("utf-8")), replica_idx]
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a failed application, and how to wait.

    Attributes
    ----------
    max_attempts:
        Total attempts per application, including the first (``1`` means
        never retry).
    base_delay:
        Backoff before the first retry, in simulated seconds.
    backoff:
        Multiplier applied per additional retry (``base * backoff**k``).
    jitter:
        Relative jitter amplitude (``"equal"`` mode): each delay is
        scaled by a factor drawn uniformly from ``[1 - jitter,
        1 + jitter)``.  ``0`` disables it.
    mode:
        Jitter shape.  ``"equal"`` (default, the historical behaviour)
        spreads delays in a narrow band around the exponential schedule —
        fine against isolated faults, but apps failed by one *shared*
        event retry within ``±jitter`` of each other: a synchronized
        storm.  ``"full"`` draws each delay uniformly from ``[0, base *
        backoff**k)`` (AWS-style full jitter), decorrelating concurrent
        retries across the whole backoff window so a fault domain's worth
        of apps does not stampede the survivors in lockstep.  Both modes
        consume exactly one uniform variate per delay.
    """

    max_attempts: int = 3
    base_delay: float = 1e-3
    backoff: float = 2.0
    jitter: float = 0.1
    mode: str = "equal"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.mode not in ("equal", "full"):
            raise ValueError(
                f"unknown jitter mode {self.mode!r}; "
                "expected 'equal' or 'full'"
            )

    def allows_retry(self, attempt: int) -> bool:
        """Whether another attempt may follow failed attempt ``attempt``."""
        return attempt < self.max_attempts

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before the retry that follows failed attempt ``attempt``.

        ``attempt`` counts from 1 (the first attempt), so the first retry
        waits roughly ``base_delay`` and each later one ``backoff``x more.
        The jitter draw always consumes exactly one uniform variate from
        ``rng`` so delays stay deterministic for a given generator state.
        """
        if attempt < 1:
            raise ValueError("attempt counts from 1")
        base = self.base_delay * self.backoff ** (attempt - 1)
        if self.mode == "full":
            # Full jitter: uniform over the whole window, so retries
            # triggered by one shared event land decorrelated.
            return base * float(rng.random())
        if self.jitter > 0.0:
            scale = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        else:
            scale = 1.0
        return base * scale
