"""Resilience configuration and end-of-run summary types.

:class:`ResilienceConfig` is the single object the harness and runner
accept to switch resilience features on: a fault plan, a retry policy, a
watchdog deadline rule and a degradation threshold.  It is frozen and
hashable, like every other configuration object in this repository, so it
can ride inside :class:`~repro.core.runner.RunConfig` and participate in
the serial-baseline cache key.

:class:`ResilienceSummary` is the accounting the harness produces at the
end of a resilient run — what was planned, what actually hit, what was
detected, retried, cancelled and degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from .faults import FaultPlan
from .retry import RetryPolicy

__all__ = ["ResilienceConfig", "ResilienceSummary"]

BaselineMap = Union[Mapping[str, float], Tuple[Tuple[str, float], ...]]


@dataclass(frozen=True)
class ResilienceConfig:
    """Switches and parameters for one resilient run.

    Attributes
    ----------
    plan:
        Fault schedule to inject; ``None`` (or an empty plan) injects
        nothing — the hooks are live but never fire.
    retry:
        Per-application retry policy; ``None`` means one attempt only.
    deadline_factor:
        Watchdog deadline as a multiple of each application type's
        serial-baseline runtime (:attr:`baseline_runtimes`).  ``0``
        disables baseline-derived deadlines.
    baseline_runtimes:
        ``type_name -> seconds`` map of serial wall times.  May be given
        as a mapping (converted to a sorted tuple of pairs for
        hashability) or left ``None``, in which case
        :class:`~repro.core.runner.ExperimentRunner` fills it in from its
        cached serial baseline.
    default_deadline:
        Absolute fallback deadline (seconds) for types without a baseline
        entry; ``0`` means no fallback.
    deadline_floor:
        Minimum deadline (seconds) any watchdog guard may be armed with.
        A zero or missing serial baseline would otherwise derive a 0s
        deadline — one that fires before the attempt's first event — or
        silently disable the guard; with a positive floor such types fall
        back to (and every computed deadline is clamped up to) the floor.
        ``0`` (default) keeps the historical behaviour.
    degradation_threshold:
        Detected faults per concurrency-halving step (see
        :mod:`repro.resilience.degradation`); ``0`` disables degradation.
    seed:
        Seed for retry-jitter randomness (combined with each app id).
    """

    plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    deadline_factor: float = 0.0
    baseline_runtimes: Optional[BaselineMap] = None
    default_deadline: float = 0.0
    deadline_floor: float = 0.0
    degradation_threshold: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_factor < 0:
            raise ValueError("deadline_factor must be >= 0")
        if self.default_deadline < 0:
            raise ValueError("default_deadline must be >= 0")
        if self.deadline_floor < 0:
            raise ValueError("deadline_floor must be >= 0")
        if self.degradation_threshold < 0:
            raise ValueError("degradation_threshold must be >= 0")
        if self.baseline_runtimes is not None and not isinstance(
            self.baseline_runtimes, tuple
        ):
            object.__setattr__(
                self,
                "baseline_runtimes",
                tuple(sorted(self.baseline_runtimes.items())),
            )

    @property
    def wants_deadlines(self) -> bool:
        """Whether any watchdog deadline can apply."""
        return self.deadline_factor > 0 or self.default_deadline > 0

    @property
    def needs_baselines(self) -> bool:
        """Whether baseline runtimes must be resolved before running."""
        return self.deadline_factor > 0 and self.baseline_runtimes is None

    def baseline_map(self) -> Dict[str, float]:
        """Baseline runtimes as a plain dict (empty when unset)."""
        if self.baseline_runtimes is None:
            return {}
        return dict(self.baseline_runtimes)

    def deadline_for(self, type_name: str) -> Optional[float]:
        """Watchdog deadline for one application type, or ``None``.

        A zero or missing serial baseline never derives a deadline by
        itself (``factor * 0 = 0`` would fire before the attempt's first
        event); such types fall back to :attr:`default_deadline`, then to
        :attr:`deadline_floor`.  Any derived deadline is clamped up to
        the floor.  ``None`` means "no guard" — only possible when no
        fallback is configured.
        """
        deadline: Optional[float] = None
        if self.deadline_factor > 0:
            baseline = self.baseline_map().get(type_name)
            if baseline is not None and baseline > 0:
                deadline = self.deadline_factor * baseline
        if deadline is None and self.default_deadline > 0:
            deadline = self.default_deadline
        if deadline is None and self.wants_deadlines and self.deadline_floor > 0:
            deadline = self.deadline_floor
        if deadline is not None and self.deadline_floor > 0:
            deadline = max(deadline, self.deadline_floor)
        return deadline


@dataclass
class ResilienceSummary:
    """End-of-run fault/retry/degradation accounting."""

    planned_faults: int = 0
    applied_faults: Dict[str, int] = field(default_factory=dict)
    faults_detected: int = 0
    retries: int = 0
    deadline_hits: int = 0
    apps_failed: int = 0
    apps_completed: int = 0
    degradation_steps: int = 0
    final_concurrency_limit: int = 0

    @property
    def applied_total(self) -> int:
        """Total faults that actually hit a component."""
        return sum(self.applied_faults.values())

    def rows(self) -> List[Tuple[str, str]]:
        """``(label, value)`` pairs for tabular/CSV output."""
        applied = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.applied_faults.items()))
            or "none"
        )
        return [
            ("planned faults", str(self.planned_faults)),
            ("applied faults", f"{self.applied_total} ({applied})"),
            ("faults detected", str(self.faults_detected)),
            ("retries", str(self.retries)),
            ("deadline hits", str(self.deadline_hits)),
            ("apps failed", str(self.apps_failed)),
            ("apps completed", str(self.apps_completed)),
            ("degradation steps", str(self.degradation_steps)),
            ("final concurrency limit", str(self.final_concurrency_limit)),
        ]

    def describe(self) -> str:
        """One-line digest for harness summaries and logs."""
        return (
            f"resilience: {self.applied_total}/{self.planned_faults} faults "
            f"applied, {self.faults_detected} detected, {self.retries} "
            f"retries, {self.deadline_hits} deadline hits, "
            f"{self.apps_failed} failed, {self.degradation_steps} "
            f"degradation steps (limit {self.final_concurrency_limit})"
        )
