"""Graceful concurrency degradation under sustained faults.

The paper's central knob is NS — how many concurrent streams feed the
device.  High NS is where Hyper-Q pays off, but it is also where faults
compound: a hung grid ties up SMX resources every co-running application
wants, and retries pile more work onto an already-struggling device.  The
degradation ladder responds the way a production serving stack would:
when the observed fault count crosses a threshold, halve the effective
concurrency, stepping down toward fully serialized execution (the NS=1
baseline, which the paper shows is the *safe* — if slow — operating
point).

Two pieces:

:class:`ConcurrencyLimiter`
    A FIFO admission gate the supervisors acquire before starting an
    attempt.  Unlike :class:`~repro.sim.resources.Resource` its capacity
    can be lowered on the fly; excess holders drain naturally (no
    revocation — running attempts finish, new ones wait).
:class:`DegradationController`
    Glue: counts faults, consults the ladder, lowers the limiter, and
    records every step for the resilience summary.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment
    from .faults import FaultInjector

__all__ = ["ConcurrencyLimiter", "DegradationController", "ladder_limit"]


def ladder_limit(initial: int, faults: int, threshold: int) -> int:
    """Concurrency limit after ``faults`` observed faults.

    Every ``threshold`` faults halves the limit (floor 1): with
    ``initial=8, threshold=2`` the ladder is 8, 8, 4, 4, 2, 2, 1 ... —
    a geometric descent toward serialized execution.  ``threshold <= 0``
    disables degradation entirely.
    """
    if threshold <= 0:
        return max(1, initial)
    steps = faults // threshold
    return max(1, initial >> steps) if steps < initial.bit_length() else 1


class ConcurrencyLimiter:
    """FIFO admission gate with a dynamically lowerable capacity.

    ``acquire()`` is a sub-generator (``yield from``) that returns once a
    slot is granted; ``release()`` hands the slot to the oldest waiter
    that fits under the *current* limit.  Lowering the limit never evicts
    a holder — the gate simply stops admitting until enough slots drain.
    """

    def __init__(self, env: "Environment", limit: int, name: str = "ns-gate") -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.env = env
        self.name = name
        self._limit = int(limit)
        self._active = 0
        self._waiters: Deque[Event] = deque()

    def __repr__(self) -> str:
        return (
            f"<ConcurrencyLimiter {self.name!r} {self._active}/{self._limit} "
            f"({len(self._waiters)} waiting)>"
        )

    @property
    def limit(self) -> int:
        """Current admission limit."""
        return self._limit

    @property
    def active(self) -> int:
        """Slots currently held (may exceed ``limit`` right after a cut)."""
        return self._active

    @property
    def queue_length(self) -> int:
        """Number of attempts waiting for admission."""
        return len(self._waiters)

    def set_limit(self, limit: int) -> None:
        """Change the limit; grants waiters if it rose, drains if it fell."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._limit = int(limit)
        self._grant()

    def acquire(self):
        """Acquire one admission slot (``yield from`` inside a process)."""
        if self._active < self._limit and not self._waiters:
            self._active += 1
            return
        gate = Event(self.env)
        self._waiters.append(gate)
        try:
            yield gate
        except BaseException:
            # Interrupted while queued (or the grant raced the interrupt):
            # withdraw cleanly so the gate's accounting stays consistent.
            try:
                self._waiters.remove(gate)
            except ValueError:
                # Already granted (active was incremented at grant time).
                self._active -= 1
                self._grant()
            raise

    def release(self) -> None:
        """Return a slot and admit the oldest waiter that fits."""
        if self._active <= 0:
            raise RuntimeError(f"release() without acquire() on {self!r}")
        self._active -= 1
        self._grant()

    def _grant(self) -> None:
        while self._waiters and self._active < self._limit:
            gate = self._waiters.popleft()
            self._active += 1
            gate.succeed()


class DegradationController:
    """Maps observed fault density onto the concurrency ladder.

    Parameters
    ----------
    limiter:
        The admission gate to throttle.
    threshold:
        Faults per halving step; ``0`` disables degradation.
    injector:
        Optional fault injector whose trace gets a ``degrade`` mark at
        every step.
    """

    def __init__(
        self,
        limiter: ConcurrencyLimiter,
        threshold: int = 0,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.limiter = limiter
        self.threshold = int(threshold)
        self.injector = injector
        self.initial_limit = limiter.limit
        self.fault_count = 0
        #: ``(time, fault_count, new_limit)`` per step taken.
        self.steps: List[Tuple[float, int, int]] = []

    def note_fault(self) -> None:
        """Record one detected fault; degrade if the ladder says so."""
        self.fault_count += 1
        if self.threshold <= 0:
            return
        target = ladder_limit(self.initial_limit, self.fault_count, self.threshold)
        if target < self.limiter.limit:
            self.limiter.set_limit(target)
            now = self.limiter.env.now
            self.steps.append((now, self.fault_count, target))
            if self.injector is not None and self.injector.trace is not None:
                self.injector.trace.mark(
                    track="resilience",
                    category="degrade",
                    name=f"NS->{target}",
                    time=now,
                    faults=self.fault_count,
                    limit=target,
                )

    @property
    def step_count(self) -> int:
        """Number of degradation steps taken."""
        return len(self.steps)
