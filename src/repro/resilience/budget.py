"""Per-class retry budgets: the token bucket that caps retry amplification.

Every resilience mechanism in the repository is a load *amplifier*:
supervisor retries re-run failed attempts, the fleet driver re-runs
deadline-missed work, the hedge manager launches speculative replicas.
Under an isolated fault that amplification buys availability; under a
correlated one (a whole fault domain gone, every survivor overloaded) it
is exactly the feedback loop that turns a capacity dip into a metastable
collapse — the retries *are* the overload.

:class:`RetryBudget` is the shared brake.  One bucket per work class
(application type) refills at ``rate`` tokens per simulated second up to
``burst``; every retry-shaped decision — a supervisor retry, a fleet
fault retry, a deadline re-run, a hedge launch — must ``try_spend`` a
token first.  An empty bucket denies the retry, so system-wide duplicate
work is capped at roughly ``rate`` per class no matter how many apps are
failing, and the deny is *accounted* (``denied`` per class) so telemetry
counters stay truthful under exhaustion.

Deadline propagation rides along: :func:`unfinishable` is the one-line
check callers use to shed work whose deadline can no longer be met
instead of spending budget re-running it.

Everything runs on the simulated clock the caller passes in; the module
depends on nothing above :mod:`repro.sim` and owns no processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["RetryBudgetConfig", "RetryBudget", "unfinishable"]


def unfinishable(
    now: float,
    deadline: Optional[float],
    estimated_remaining: float = 0.0,
) -> bool:
    """Whether work cannot finish by ``deadline`` anymore.

    ``deadline=None`` means no deadline (always finishable); otherwise
    the work is unfinishable once ``now + estimated_remaining`` passes
    the deadline.  Callers shed unfinishable work instead of retrying it
    — a retry that cannot produce useful output is pure amplification.
    """
    if deadline is None:
        return False
    return now + estimated_remaining > deadline


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Token-bucket parameters for the per-class retry budget.

    Attributes
    ----------
    rate:
        Tokens refilled per simulated second, per class.
    burst:
        Bucket depth: the largest retry burst one class may spend at
        once.  Buckets start full.
    shared:
        ``True`` pools every class into one global bucket (strict
        system-wide cap); ``False`` (default) isolates classes so one
        flapping app type cannot starve another's retries.
    """

    rate: float = 50.0
    burst: float = 4.0
    shared: bool = False

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


#: Bucket key used for every class when the budget is shared.
_SHARED = "__shared__"


class RetryBudget:
    """Deterministic token buckets over the simulated clock.

    ``clock`` is a zero-argument callable returning the current simulated
    time (normally ``lambda: env.now``); refill is computed lazily at
    each spend from the elapsed simulated seconds, so the budget needs no
    process of its own and costs nothing while idle.
    """

    def __init__(
        self, config: RetryBudgetConfig, clock: Callable[[], float]
    ) -> None:
        self.config = config
        self.clock = clock
        self._tokens: Dict[str, float] = {}
        self._stamped: Dict[str, float] = {}
        #: Spends granted / denied, per class (truthful accounting: a
        #: denied spend performed no retry and launched no hedge).
        self.granted: Dict[str, int] = {}
        self.denied: Dict[str, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RetryBudget granted={self.granted_total} "
            f"denied={self.denied_total}>"
        )

    def _key(self, class_name: str) -> str:
        return _SHARED if self.config.shared else class_name

    def tokens(self, class_name: str, now: Optional[float] = None) -> float:
        """Tokens available to ``class_name`` at ``now`` (refilled view)."""
        if now is None:
            now = self.clock()
        key = self._key(class_name)
        level = self._tokens.get(key, self.config.burst)
        stamped = self._stamped.get(key, now)
        if now > stamped:
            level = min(
                self.config.burst, level + (now - stamped) * self.config.rate
            )
        return level

    def try_spend(
        self, class_name: str, now: Optional[float] = None, cost: float = 1.0
    ) -> bool:
        """Spend ``cost`` tokens from ``class_name``'s bucket, or deny.

        Returns ``True`` (and debits the bucket) when enough tokens were
        available; ``False`` (and increments the class's ``denied``
        count) otherwise.  A denial refunds nothing and runs nothing —
        the caller must not retry.
        """
        if now is None:
            now = self.clock()
        key = self._key(class_name)
        level = self.tokens(class_name, now)
        self._stamped[key] = now
        if level >= cost:
            self._tokens[key] = level - cost
            self.granted[class_name] = self.granted.get(class_name, 0) + 1
            return True
        self._tokens[key] = level
        self.denied[class_name] = self.denied.get(class_name, 0) + 1
        return False

    @property
    def granted_total(self) -> int:
        """Spends granted across every class."""
        return sum(self.granted.values())

    @property
    def denied_total(self) -> int:
        """Spends denied across every class."""
        return sum(self.denied.values())
