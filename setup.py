"""Legacy setup shim.

Kept so that ``pip install -e . --no-build-isolation`` works on offline
machines whose environments lack the ``wheel`` package (pip falls back to
``setup.py develop`` when ``--no-use-pep517`` is given).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
