"""Resilience hook overhead — disabled faults must cost (almost) nothing.

The resilience subsystem threads hooks through the event loop, the grid
engine, both DMA engines and the power monitor.  This bench guards the
bargain those hooks were written under: with resilience *enabled but no
faults planned*, a Figure 4-style sweep must produce identical results
(same makespans, same energies — the simulated timeline is untouched) at
a wall-clock overhead under 2%.

The comparison deliberately runs the clean pass first and the hooked pass
second (warm caches favour the *hooked* side, so a regression cannot hide
behind warm-up noise) and takes the minimum of several timed repetitions
of each, the standard way to de-noise a wall-clock ratio.
"""

import time

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.resilience import FaultPlan, ResilienceConfig

NA_VALUES = (8, 16)
PAIR = ("gaussian", "needle")
REPEATS = 3


def _sweep(resilience):
    """One fig4-style full-concurrency sweep; returns per-cell metrics."""
    runner = ExperimentRunner()
    cells = []
    for na in NA_VALUES:
        workload = Workload.heterogeneous_pair(*PAIR, na)
        config = RunConfig(
            workload=workload, num_streams=na, resilience=resilience
        )
        result = runner.run(config)
        cells.append(
            {
                "NA": na,
                "makespan": result.makespan,
                "energy": result.energy,
                "peak_power": result.peak_power,
            }
        )
    return cells


def _timed_sweeps(resilience):
    """(best wall seconds, last metrics) over REPEATS sweeps."""
    best = float("inf")
    metrics = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        metrics = _sweep(resilience)
        best = min(best, time.perf_counter() - t0)
    return best, metrics


@pytest.mark.resilience
def test_resilience_hook_overhead(benchmark, results_dir):
    clean_s, clean_metrics = _timed_sweeps(None)
    hooked_resil = ResilienceConfig(plan=FaultPlan())
    hooked_s, hooked_metrics = once(benchmark, _timed_sweeps, hooked_resil)

    # The simulated results must be *identical*: an empty plan arms
    # nothing, so every event fires at exactly the same simulated time.
    assert hooked_metrics == clean_metrics

    overhead_pct = (hooked_s - clean_s) / clean_s * 100.0
    rows = [
        {
            "sweep": f"{PAIR[0]}+{PAIR[1]} NA={','.join(map(str, NA_VALUES))}",
            "clean_s": clean_s,
            "hooked_s": hooked_s,
            "overhead_pct": overhead_pct,
            "results_identical": True,
        }
    ]
    write_csv(rows, results_dir / "resilience_overhead.csv")
    print()
    print(format_table(rows, title="Resilience — no-fault hook overhead"))

    assert overhead_pct < 2.0, (
        f"resilience hooks cost {overhead_pct:.2f}% with no faults planned "
        "(budget: 2%)"
    )
