"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
paper's problem sizes (override with ``REPRO_SCALE=small`` for a quick
pass) and prints the rows the paper reports.  CSV copies land in
``results/``.

The :class:`~repro.core.runner.ExperimentRunner` is session-scoped so
serial baselines are computed once and shared across benchmark files.
"""

from __future__ import annotations

import json
import os
import traceback
from pathlib import Path
from typing import List

import pytest

# Benchmarks default to the paper's Table III sizes.
os.environ.setdefault("REPRO_SCALE", "paper")

from repro.core.runner import ExperimentRunner  # noqa: E402
from repro.core.workload import resolve_scale  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One runner for the whole benchmark session (baseline caching)."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def scale() -> str:
    """The active problem-size profile."""
    return resolve_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop their CSV/markdown outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


#: Cells that crashed this session; dumped to results/partial_failures.json
#: so an aborted sweep still leaves a machine-readable account of what ran.
_FAILED_CELLS: List[dict] = []


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — statistical rounds
    would triple the wall time without adding information.

    A crashing cell is recorded as a failure entry (and the partial
    results written so far are preserved in ``results/``) before the
    exception is re-raised; pytest then fails this bench and continues
    the sweep with the remaining cells instead of losing the session.
    """
    try:
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
    except Exception as exc:
        _FAILED_CELLS.append(
            {
                "bench": getattr(fn, "__qualname__", repr(fn)),
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "partial_failures.json").write_text(
            json.dumps(_FAILED_CELLS, indent=2) + "\n"
        )
        raise


def checkpoint_rows(rows: List[dict], csv_name: str) -> Path:
    """Flush partially accumulated benchmark rows to ``results/`` NOW.

    Multi-scenario benches (e.g. the serving overload sweep) call this
    after every completed scenario, so if a later cell crashes the rows
    computed so far — goodput, shed rates, tail latencies — are already
    on disk next to ``partial_failures.json`` instead of dying with the
    process.  Idempotent: each call rewrites the same CSV with the
    current row list.
    """
    from repro.analysis.tables import write_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    return write_csv(rows, RESULTS_DIR / csv_name)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """After the run, print every regenerated figure/table from results/.

    pytest captures the benches' in-test prints; this hook runs after
    capture ends, so ``pytest benchmarks/ --benchmark-only | tee out.txt``
    records the actual paper tables, not just timings.
    """
    import csv

    from repro.analysis.tables import format_table

    if not RESULTS_DIR.exists():
        return
    paths = sorted(RESULTS_DIR.glob("*.csv"))
    if not paths:
        return
    tr = terminalreporter
    tr.section("reproduced figures and tables (results/)")
    for path in paths:
        # A half-written CSV from a crashed cell must not take down the
        # whole summary: report it and move on.
        try:
            with path.open() as fh:
                rows = list(csv.DictReader(fh))
            coerced = []
            for row in rows:
                out = {}
                for key, value in row.items():
                    try:
                        number = float(value)
                        out[key] = (
                            int(number) if number == int(number) else number
                        )
                    except (TypeError, ValueError):
                        out[key] = value
                coerced.append(out)
            table = format_table(coerced, title=f"[{path.name}]")
        except Exception as exc:
            table = f"[{path.name}] unreadable: {type(exc).__name__}: {exc}"
        tr.write_line("")
        tr.write_line(table)
    if _FAILED_CELLS:
        tr.write_line("")
        tr.write_line(
            f"{len(_FAILED_CELLS)} benchmark cell(s) crashed — see "
            "results/partial_failures.json"
        )
