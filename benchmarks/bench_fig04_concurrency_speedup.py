"""Figure 4 (a)-(f) — concurrency speedup over serialized execution.

For every heterogeneous pair and increasing workload size NA, measures the
half-concurrent (NA = 2 NS) and full-concurrent (NA = NS) improvement over
the serialized (one-stream) baseline under the lazy/LEFTOVER policy.

Paper numbers: up to 56% (avg 23.6%) half-concurrent, up to 59% (avg
24.8%) full-concurrent.  Shape assertions: every cell improves on serial;
compute-saturating pairs (with gaussian) improve least; transfer-light
mixes improve most; maxima land in the tens of percent, not single digits.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import fig4_concurrency

NA_VALUES = (8, 16, 32)


def test_fig4_concurrency_speedup(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        fig4_concurrency,
        na_values=NA_VALUES,
        scale=scale,
        runner=runner,
    )
    rows = [
        {
            "pair": f"{r.pair[0]}+{r.pair[1]}",
            "NA": r.num_apps,
            "scenario": r.scenario,
            "NS": r.num_streams,
            "serial_ms": r.serial_makespan * 1e3,
            "concurrent_ms": r.makespan * 1e3,
            "improvement_pct": r.improvement_pct,
        }
        for r in result.rows
    ]
    write_csv(rows, results_dir / "fig04_concurrency_speedup.csv")
    print()
    print(format_table(rows, title="Figure 4 — improvement over serialized execution"))
    max_half, avg_half = result.stats("half")
    max_full, avg_full = result.stats("full")
    print(
        f"\nhalf-concurrent: max {max_half:.1f}% avg {avg_half:.1f}% "
        f"(paper: 56% / 23.6%)"
    )
    print(
        f"full-concurrent: max {max_full:.1f}% avg {avg_full:.1f}% "
        f"(paper: 59% / 24.8%)"
    )

    # Every cell beats serial.
    assert all(r.improvement_pct > 0 for r in result.rows)
    # Improvements are substantial but bounded (tens of percent).  The
    # quantitative band is calibrated at the paper's Table III sizes;
    # reduced scales only keep the directional checks.
    if scale == "paper":
        assert 25.0 < max_full < 85.0
        assert 10.0 < avg_full < 60.0
    else:
        assert max_full > 20.0
    if scale != "paper":
        return
    # Who wins (paper scale): gaussian-saturated pairs improve least; the
    # best pair is a low-utilization mix.  (At reduced scales gaussian no
    # longer saturates the device and the ranking legitimately inverts.)
    by_pair = result.by_pair()
    gaussian_pairs = [p for p in by_pair if "gaussian" in p]
    other_pairs = [p for p in by_pair if "gaussian" not in p]
    best_gaussian = max(
        r.improvement_pct for p in gaussian_pairs for r in by_pair[p]
    )
    best_other = max(
        r.improvement_pct for p in other_pairs for r in by_pair[p]
    )
    assert best_other > best_gaussian
