"""Figure 5 — kernel overlap under oversubscription (LEFTOVER policy).

Five streams launch the paper's snapshot mix simultaneously: 89 + 88
blocks of the needle kernels, two single-block Fan1 launches and the
1024-block Fan2 — 1203 thread blocks against the K20's theoretical
208-block ceiling.  Under the lazy/LEFTOVER policy all five kernels
execute concurrently; resource-sum admission control (the symbiosis
baseline) would have refused to co-schedule them.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.baselines import symbiosis_admission
from repro.core.experiments import fig5_oversubscription
from repro.gpu.specs import tesla_k20


def test_fig5_leftover_overlap(benchmark, results_dir):
    result = once(benchmark, fig5_oversubscription)
    rows = result.rows()
    write_csv(rows, results_dir / "fig05_oversubscription.csv")
    print()
    print(format_table(rows, title="Figure 5 — five overlapping kernels"))
    print(
        f"\nrequested blocks: {result.total_requested_blocks} "
        f"(ceiling {result.device_block_ceiling}); "
        f"max concurrency {result.max_kernel_concurrency}; "
        f"makespan {result.makespan * 1e6:.0f} us vs serialized "
        f"{result.serialized_makespan * 1e6:.0f} us"
    )

    # The Figure 5 claims.
    assert result.total_requested_blocks == 1203
    assert result.device_block_ceiling == 208
    assert result.oversubscribed
    assert result.max_kernel_concurrency == 5
    assert result.makespan < result.serialized_makespan


def test_fig5_symbiosis_would_serialize(benchmark):
    """The same launch under sum-fits admission control: no overlap."""
    result = once(
        benchmark,
        fig5_oversubscription,
        admission=symbiosis_admission(tesla_k20()),
    )
    print(
        f"\nsymbiosis admission: max concurrency "
        f"{result.max_kernel_concurrency}, makespan "
        f"{result.makespan * 1e6:.0f} us"
    )
    leftover = fig5_oversubscription()
    assert result.max_kernel_concurrency < leftover.max_kernel_concurrency
    assert result.makespan > leftover.makespan
