"""Figure 6 — effective memory transfer latency for {gaussian, needle}.

Compares three quantities as concurrency grows: the *expected* per-app
effective HtoD latency (measured uncontended), the default concurrent
behaviour (copy-queue interleaving), and the paper's mutex-synchronized
transfers.

Paper claims: the default stretches the average effective latency up to
~8x over expectation; synchronization brings it back to the expected
estimate.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import fig6_effective_latency

NA_VALUES = (4, 8, 16, 32)


def test_fig6_effective_latency(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        fig6_effective_latency,
        pair=("gaussian", "needle"),
        na_values=NA_VALUES,
        scale=scale,
        runner=runner,
    )
    rows = [
        {
            "NA": r.num_apps,
            "expected_ms": r.expected_ms,
            "default_ms": r.default_ms,
            "default_vs_expected": r.default_ratio,
            "sync_ms": r.sync_ms,
            "sync_vs_expected": r.sync_ratio,
        }
        for r in result.rows
    ]
    write_csv(rows, results_dir / "fig06_effective_latency.csv")
    print()
    print(format_table(
        rows,
        title="Figure 6 — effective HtoD latency: expected vs default vs sync",
    ))
    print(
        f"\nworst default stretch: {result.worst_default_ratio:.1f}x "
        "(paper: up to ~8x); sync recovers the expected estimate (~1x)"
    )

    # Monotone stretch with concurrency; the paper's ~8x regime is reached.
    ratios = [r.default_ratio for r in result.rows]
    assert ratios == sorted(ratios)
    assert result.worst_default_ratio > 6.0
    # Synchronized latency equals the expected estimate (within 20%).
    assert all(0.8 <= r.sync_ratio <= 1.2 for r in result.rows)
