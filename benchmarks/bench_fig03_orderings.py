"""Figure 3 — the five application launch orders.

Verifies every schedule against the paper's Figure 3 layout (m = n = 4) and
benchmarks schedule generation itself, which sits on the hot path of the
larger ordering sweeps.
"""

from conftest import once

import numpy as np

from repro.analysis.tables import write_csv
from repro.core.experiments import fig3_orders
from repro.scheduling.orders import FIGURE_3, SchedulingOrder, make_schedule


def test_fig3_launch_orders(benchmark, results_dir):
    orders = once(benchmark, fig3_orders, m=4, n=4, seed=7)
    rows = [
        {"order": name, "schedule": " ".join(sig)} for name, sig in orders.items()
    ]
    write_csv(rows, results_dir / "fig03_orders.csv")
    print()
    for row in rows:
        print(f"  {row['order']:>22}: {row['schedule']}")

    # The four deterministic panels match Figure 3 exactly.
    for name, expected in FIGURE_3.items():
        assert orders[name] == expected, name
    # The shuffle panel is a permutation with preserved type counts.
    shuffle = orders["random-shuffle"]
    assert sorted(shuffle) == sorted(FIGURE_3["naive-fifo"])


def test_schedule_generation_throughput(benchmark):
    """Raw schedule construction speed for a 512-app workload."""
    types = ["AX"] * 256 + ["AY"] * 256
    rng = np.random.default_rng(0)

    def build_all():
        out = []
        for order in SchedulingOrder:
            out.append(make_schedule(types, order, rng=rng))
        return out

    schedules = benchmark(build_all)
    assert all(sorted(s) == list(range(512)) for s in schedules)
