"""Integrity overhead — invariant probes must not perturb or slow the sim.

The integrity subsystem makes the telemetry bargain twice over
(docs/integrity.md): with ``integrity=None`` nothing changes at all —
the engine's step-hook list is empty and never iterated — and with a
live :class:`~repro.integrity.InvariantChecker` attached the simulated
results are *identical* (probes only read state; the strided catalog
never mutates or reorders an event) at a wall-clock overhead under 2%.
This bench pins both halves on a Figure 4-style sweep, asserts the
probes stay silent (a violation in the default workload would mean the
model broke one of its own laws), and appends the measurement to the
repo's perf trajectory (``BENCH_integrity.json``).

Measuring a <2% effect on a shared runner needs care: wall-clock
drifts by several percent between multi-second windows, and whichever
run goes *second* in a back-to-back pair inherits the first one's
allocator/GC state and measures slow regardless of the code under test
(an identical clean-vs-clean pairing shows the same gap).  So the
bench pairs clean/probed at *cell* granularity, alternates which side
goes first every repetition, and takes the per-(cell, side) minimum
over a time-budgeted repeat loop — the minimum estimator converges to
the true floor under positive-only noise, and alternation keeps slot
bias out of both floors.
"""

import gc
import time
from pathlib import Path

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.integrity import InvariantChecker
from repro.telemetry.trajectory import record_trajectory_point

#: One default-scale cell, not a full sweep: the floor estimator needs
#: *many* short paired samples far more than it needs workload variety
#: (~1.4 s per sample buys ~20 alternating pairs inside the budget,
#: which is what makes the per-side minimum actually converge).
NA_VALUES = (8,)
PAIR = ("gaussian", "needle")
#: Keep timing cells until this much wall time has elapsed (at least
#: MIN_REPEATS full rounds): the per-(cell, side) minimum needs enough
#: samples to land on a quiet scheduler slice for every floor.
TIME_BUDGET_S = 70.0
MIN_REPEATS = 4

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_integrity.json"


def _run_cell(na, probed):
    """One fig4-style cell; returns (metrics, probe violations)."""
    workload = Workload.heterogeneous_pair(*PAIR, na)
    checker = InvariantChecker(on_violation="record") if probed else None
    config = RunConfig(
        workload=workload,
        num_streams=na,
        integrity=checker,
    )
    result = ExperimentRunner().run(config)
    violations = 0
    if probed:
        assert result.harness.integrity is checker
        assert checker.checks_run > 0
        violations = checker.violations_found
    metrics = {
        "NA": na,
        "makespan": result.makespan,
        "energy": result.energy,
        "peak_power": result.peak_power,
    }
    return metrics, violations


def _interleaved_cells(budget_s):
    """(best clean s, best probed s, clean metrics, probed metrics, reps).

    Per-cell clean/probed pairs with the slot order swapped every round;
    the reported time per side is the sum of per-cell floors.
    """
    best = {
        (na, probed): float("inf")
        for na in NA_VALUES
        for probed in (False, True)
    }
    metrics = {False: {}, True: {}}
    deadline = time.perf_counter() + budget_s
    rep = 0
    while rep < MIN_REPEATS or time.perf_counter() < deadline:
        order = (False, True) if rep % 2 == 0 else (True, False)
        for na in NA_VALUES:
            for probed in order:
                # Reset the GC phase so each sample triggers the same
                # collections from a clean slate: otherwise whether a
                # sweep absorbs an extra gen-2 pass depends on where the
                # process-lifetime allocation count happens to sit, and
                # that quantization (tens of ms) dwarfs the effect under
                # measurement.
                gc.collect()
                t0 = time.perf_counter()
                metrics[probed][na], violations = _run_cell(na, probed)
                elapsed = time.perf_counter() - t0
                best[(na, probed)] = min(best[(na, probed)], elapsed)
                # The default workload must violate none of the laws.
                assert violations == 0
        rep += 1
    clean_s = sum(best[(na, False)] for na in NA_VALUES)
    probed_s = sum(best[(na, True)] for na in NA_VALUES)
    clean_metrics = [metrics[False][na] for na in NA_VALUES]
    probed_metrics = [metrics[True][na] for na in NA_VALUES]
    return clean_s, probed_s, clean_metrics, probed_metrics, rep


@pytest.mark.integrity
def test_integrity_overhead(benchmark, results_dir):
    # Untimed warmups cover both code paths' imports and caches.
    for na in NA_VALUES:
        _run_cell(na, False)
        _run_cell(na, True)
    clean_s, probed_s, clean_metrics, probed_metrics, reps = once(
        benchmark, _interleaved_cells, TIME_BUDGET_S
    )

    # Probes read state, never mutate it: identical simulated results.
    assert probed_metrics == clean_metrics

    overhead_pct = (probed_s - clean_s) / clean_s * 100.0
    rows = [
        {
            "sweep": f"{PAIR[0]}+{PAIR[1]} NA={','.join(map(str, NA_VALUES))}",
            "repeats": reps,
            "clean_s": clean_s,
            "probed_s": probed_s,
            "overhead_pct": overhead_pct,
            "results_identical": True,
        }
    ]
    write_csv(rows, results_dir / "integrity_overhead.csv")
    print()
    print(format_table(rows, title="Integrity — invariant-probe overhead"))

    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_integrity_overhead",
        {
            "clean_s": clean_s,
            "probed_s": probed_s,
            "overhead_pct": overhead_pct,
        },
    )

    assert overhead_pct < 2.0, (
        f"invariant probes cost {overhead_pct:.2f}% of wall time when "
        "enabled (budget: 2%)"
    )
