"""Cascade containment — correlated rail loss under sustained deadline load.

A fleet of 8 devices runs three back-to-back waves of compute-dense apps
(one stream per device, so each device works through its queue), every
app carrying a deadline a little past its fault-free completion.  Mid
first wave, one power rail — 2 of 8 devices, 25% of capacity — fails
fail-stop as a correlated blast.

Without containment the loss is metastable by construction: the
displaced and capacity-starved late-wave apps blow their deadlines at
completion, the harness re-runs them from scratch up to the attempt cap,
and the survivors spend the tail of the run executing work that can no
longer count — goodput (deadline-respecting first-time kernel progress)
collapses below half of post-loss capacity and stays there.  With the
containment stack on (fault-domain topology, paced migration queue,
shared retry budget, deadline shedding, brownout ladder), unfinishable
work is shed at phase boundaries and the survivors keep producing.

``BENCH_cascade.json`` pins the acceptance bargain:

* containment-on recovers to >= 95% of post-loss-capacity goodput and
  never goes metastable (below half capacity for more than the 2-window
  trip budget), while containment-off demonstrably does;
* retry amplification (executed / useful kernels) stays <= 2x with the
  budget on;
* with every containment feature off the results are byte-identical to
  a config that never heard of containment, and the full stack enabled
  but idle costs < 2% wall clock (paired-minimum methodology, as in
  ``bench_hedging.py``).

``results/bench_cascade.csv`` is the recovery timeline: per detection
window, goodput/capacity ratio and brownout level, contained vs not.
"""

import gc
import time
from pathlib import Path
from statistics import median

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.fleet import (
    FleetConfig,
    FleetHarness,
    StormControlConfig,
    TopologyConfig,
)
from repro.fleet.topology import FleetTopology
from repro.framework.kernel import (
    AppProfile,
    Buffer,
    KernelApp,
    KernelPhase,
    TransferPhase,
)
from repro.gpu.commands import CopyDirection
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.resilience import BrownoutConfig, RetryBudgetConfig
from repro.resilience.faults import FaultKind, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.telemetry.trajectory import record_trajectory_point

DEVICES = 8
RAILS = 4  # 2 devices per rail: losing one rail is 25% of the fleet
WAVES_PER_DEVICE = 3
APPS = DEVICES * WAVES_PER_DEVICE
KERNELS = 40
GRID_BLOCKS = 13 * 8 * 2  # two full K20 scheduling waves per launch
BLOCK_DURATION = 50e-6
#: Deadline slack past the fault-free completion: tight enough that a
#: 25% capacity loss dooms the late waves, loose enough that the early
#: waves always make it.
DEADLINE_SLACK_S = 2e-3
#: The blast lands mid first wave, measured from the GPU-section start.
BLAST_AFTER_GPU_START_S = 3e-3
#: Real rails collapse over ~hundreds of microseconds, not at once.
BLAST_SKEW_S = 2e-4

WINDOW = 1e-3
FLOOR = 0.5
TRIP_WINDOWS = 2

FAST_HEALTH = dict(
    heartbeat_interval=2e-5,
    detection_latency=5e-5,
    detection_jitter=1e-5,
)

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_cascade.json"

#: Paired-minimum overhead loop (see bench_integrity_overhead.py). The
#: budget stays fixed across scales: the effect under measurement is
#: ~1% and a short repeat loop cannot resolve it from scheduler noise.
#: The idle measurement runs a single wave (one app per device) so the
#: budget buys enough paired repeats for the minima to converge — the
#: per-event bookkeeping cost being measured does not depend on batch
#: depth, and the three-wave scenario run is ~3x too slow to sample.
TIME_BUDGET_S = 20.0
MIN_REPEATS = 4
IDLE_APPS = DEVICES


def _dense_app(instance):
    """One device-filling compute-dense app, checkpointed per kernel."""
    buf = Buffer("data", 1 << 20)
    kernel = KernelDescriptor(
        name="dense",
        grid=Dim3(GRID_BLOCKS),
        block=Dim3(256),
        block_duration=BLOCK_DURATION,
    )
    phases = [TransferPhase(CopyDirection.HTOD, (buf,))]
    phases += [KernelPhase((kernel,)) for _ in range(KERNELS)]
    phases.append(TransferPhase(CopyDirection.DTOH, (buf,)))
    profile = AppProfile(
        name="dense",
        data_dim=f"{KERNELS}x{BLOCK_DURATION * 1e6:.0f}us",
        host_allocs=(buf,),
        device_allocs=(buf,),
        phases=tuple(phases),
    )
    return KernelApp(profile, instance=instance)


def _apps():
    return [_dense_app(i) for i in range(APPS)]


def _probe(rate, *, acting):
    """Calibrated goodput probe; ``acting=False`` is a no-op ladder.

    The containment-off run still needs the *measurement* (or there is
    nothing to compare), so it carries a probe whose ladder cannot act:
    ``width_factor=1.0`` restores the same stream width it "degrades"
    to and nothing is ever shed.
    """
    acting_knobs = (
        dict(max_level=2)
        if acting
        else dict(max_level=1, width_factor=1.0, shed_types=())
    )
    return BrownoutConfig(
        window=WINDOW,
        floor=FLOOR,
        trip_windows=TRIP_WINDOWS,
        per_device_rate=rate,
        **acting_knobs,
    )


def _containment(rate):
    return dict(
        topology=TopologyConfig(rails=RAILS),
        storm=StormControlConfig(
            max_inflight_per_device=1, pace_interval=0.5e-3
        ),
        retry_budget=RetryBudgetConfig(rate=1e3, burst=4.0, shared=True),
        retry_backoff=RetryPolicy(mode="full"),
        shed_unfinishable=True,
        brownout=_probe(rate, acting=True),
    )


def _run(knobs, plan=None, deadlines=None, apps=None):
    return FleetHarness(
        [_dense_app(i) for i in range(apps)] if apps else _apps(),
        FleetConfig(num_devices=DEVICES, seed=0, **knobs, **FAST_HEALTH),
        num_streams=1,
        plan=plan,
        deadlines=deadlines,
    ).run()


def _baseline():
    """(clean result, calibrated per-device kernel rate, deadlines)."""
    clean = _run({})
    gpu0 = min(r.gpu_start for r in clean.records)
    last = max(r.complete_time for r in clean.records)
    total = sum(len(r.kernels) for r in clean.records)
    rate = total / (last - gpu0) / DEVICES
    deadlines = {
        r.app_id: r.complete_time + DEADLINE_SLACK_S for r in clean.records
    }
    return clean, gpu0, rate, deadlines


def _blast(gpu0):
    members = FleetTopology(DEVICES, TopologyConfig(rails=RAILS)).members(
        "rail", 0
    )
    return FaultPlan.correlated(
        members,
        kind=FaultKind.DEVICE_LOSS,
        time=gpu0 + BLAST_AFTER_GPU_START_S,
        skew=BLAST_SKEW_S,
        seed=0,
    )


def _amplification(result):
    """Executed kernels over useful kernels: 1.0 means no waste."""
    useful = sum(len(r.kernels) for r in result.records)
    reexecuted = sum(r.reexecuted_kernels for r in result.records)
    return (useful + reexecuted) / useful if useful else 1.0


def _post_loss_ratios(result, loss_at):
    """Goodput/capacity ratios once failover and pacing have settled,
    excluding the final two drain-down windows."""
    settled = loss_at + 2e-3
    windows = [w for w in result.goodput_windows if w["t"] > settled]
    return [w["ratio"] for w in windows[:-2]] if len(windows) > 2 else []


def _scenario():
    clean, gpu0, rate, deadlines = _baseline()
    plan = _blast(gpu0)
    contained = _run(_containment(rate), plan=plan, deadlines=deadlines)
    uncontained = _run(
        dict(brownout=_probe(rate, acting=False)),
        plan=plan,
        deadlines=deadlines,
    )
    return clean, gpu0, contained, uncontained


@pytest.mark.fleet
def test_cascade_containment_recovers_goodput(benchmark, results_dir):
    clean, gpu0, contained, uncontained = once(benchmark, _scenario)
    loss_at = gpu0 + BLAST_AFTER_GPU_START_S

    ratios_on = _post_loss_ratios(contained, loss_at)
    recovered = median(ratios_on)
    amp_on = _amplification(contained)
    amp_off = _amplification(uncontained)

    # Recovery timeline: per-window goodput ratio and ladder level.
    off_by_t = {w["t"]: w for w in uncontained.goodput_windows}
    rows = [
        {
            "t_ms": w["t"] * 1e3,
            "ratio_contained": round(w["ratio"], 3),
            "level_contained": w["level"],
            "ratio_uncontained": round(
                off_by_t[w["t"]]["ratio"], 3
            ) if w["t"] in off_by_t else "",
            "level_uncontained": off_by_t[w["t"]]["level"]
            if w["t"] in off_by_t
            else "",
        }
        for w in contained.goodput_windows
    ]
    extra = [
        w for t, w in sorted(off_by_t.items())
        if t > contained.goodput_windows[-1]["t"]
    ]
    rows += [
        {
            "t_ms": w["t"] * 1e3,
            "ratio_contained": "",
            "level_contained": "",
            "ratio_uncontained": round(w["ratio"], 3),
            "level_uncontained": w["level"],
        }
        for w in extra
    ]
    print()
    print(
        format_table(
            rows,
            title=(
                f"Recovery timeline — rail loss ({DEVICES // RAILS} of "
                f"{DEVICES} devices) at t={loss_at * 1e3:.1f} ms"
            ),
        )
    )
    print(
        f"contained: {contained.completed} completed / "
        f"{contained.shed_apps} shed, goodput {recovered:.2f}x post-loss "
        f"capacity, amplification {amp_on:.3f}x | uncontained: "
        f"{uncontained.deadline_misses} deadline-missed, "
        f"{uncontained.metastable_windows} metastable windows, "
        f"amplification {amp_off:.3f}x"
    )
    write_csv(rows, results_dir / "bench_cascade.csv")
    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_cascade",
        {
            "recovered_goodput_ratio": recovered,
            "metastable_windows_contained": contained.metastable_windows,
            "metastable_windows_uncontained": uncontained.metastable_windows,
            "amplification_contained": amp_on,
            "amplification_uncontained": amp_off,
            "shed_contained": contained.shed_apps,
            "deadline_misses_uncontained": uncontained.deadline_misses,
            "storm_queued": contained.storm_queued,
        },
    )

    # Nothing is lost either way — containment sheds doomed work early,
    # the uncontained run burns attempts on it and fails it late.
    assert contained.completed + contained.shed_apps == APPS
    assert uncontained.completed + uncontained.deadline_misses == APPS
    # Every displaced app funneled through the paced queue.
    assert contained.storm_queued > 0
    assert contained.storm_released == contained.storm_queued

    # The acceptance bargain.
    assert recovered >= 0.95, (
        f"containment recovered only {recovered:.2f}x of post-loss "
        "capacity goodput (need >= 0.95)"
    )
    assert contained.metastable_windows == 0, (
        f"contained run spent {contained.metastable_windows} windows "
        "metastable (must be 0)"
    )
    assert uncontained.metastable_windows > TRIP_WINDOWS, (
        "uncontained run never went metastable — the scenario no longer "
        "demonstrates the failure mode being contained"
    )
    assert amp_on <= 2.0, (
        f"retry amplification {amp_on:.2f}x with budgets on (cap: 2x)"
    )


def _record_key(result):
    return [
        (r.app_id, r.spawn_time, r.gpu_start, r.complete_time, r.outcome)
        for r in result.records
    ]


def _paired_minima(budget_s, rate, deadlines):
    """(best off s, best on s, off key, on key, repeats) — fault-free."""
    best = {False: float("inf"), True: float("inf")}
    keys = {}
    deadline = time.perf_counter() + budget_s
    rep = 0
    while rep < MIN_REPEATS or time.perf_counter() < deadline:
        order = (False, True) if rep % 2 == 0 else (True, False)
        for armed in order:
            gc.collect()
            t0 = time.perf_counter()
            result = _run(
                _containment(rate) if armed else {},
                deadlines=deadlines if armed else None,
                apps=IDLE_APPS,
            )
            best[armed] = min(best[armed], time.perf_counter() - t0)
            keys[armed] = _record_key(result)
            if armed:
                assert result.shed_apps == 0
                assert result.storm_queued == 0
                assert result.retry_budget_granted == 0
        rep += 1
    return best[False], best[True], keys[False], keys[True], rep


@pytest.mark.fleet
def test_cascade_containment_idle_is_free(benchmark, results_dir):
    clean = _run({}, apps=IDLE_APPS)
    gpu0 = min(r.gpu_start for r in clean.records)
    last = max(r.complete_time for r in clean.records)
    total = sum(len(r.kernels) for r in clean.records)
    rate = total / (last - gpu0) / DEVICES
    # Deadlines no fault-free run can miss: shedding stays idle.
    generous = {r.app_id: 2 * r.complete_time for r in clean.records}
    # Warm both code paths before timing.
    _run(_containment(rate), deadlines=generous, apps=IDLE_APPS)
    off_s, on_s, off_key, on_key, reps = once(
        benchmark, _paired_minima, TIME_BUDGET_S, rate, generous
    )

    # With no fault the whole stack observes and never acts: simulated
    # results are identical, not merely close.
    assert on_key == off_key

    overhead_pct = (on_s - off_s) / off_s * 100.0
    rows = [
        {
            "config": f"{DEVICES}dev x {IDLE_APPS} dense apps, no faults",
            "repeats": reps,
            "containment_off_s": off_s,
            "containment_on_s": on_s,
            "overhead_pct": overhead_pct,
            "results_identical": True,
        }
    ]
    print()
    print(format_table(rows, title="Cascade containment — idle overhead"))
    write_csv(rows, results_dir / "cascade_overhead.csv")
    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_cascade",
        {"idle_overhead_pct": overhead_pct},
    )

    assert overhead_pct < 2.0, (
        f"idle containment stack cost {overhead_pct:.2f}% of wall time "
        "(budget: 2%)"
    )
