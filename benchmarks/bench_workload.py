"""Workload subsystem — per-policy SLO-goodput leaderboard + mega-stream.

Two benches cover the traffic-generation subsystem's headline claims
(docs/workloads.md):

* **Leaderboard sweep** — every canonical scenario (steady, burst,
  diurnal, overload) is replayed through batched admission under the
  learning bandit and all five static launch orders.  The per-policy
  SLO-goodput leaderboard and the bandit-vs-worst-static win/regression
  waterfall land in ``results/workload_leaderboard.json``; the bench
  asserts the bandit beats the worst static order on aggregate SLO
  goodput under sustained overload.

* **Mega-stream bounded memory** — a million-request overload scenario
  is streamed open-loop through admission, shedding and settlement in a
  subprocess, and its peak RSS is compared against a run an order of
  magnitude smaller.  The arrivals are generated chunk-seeded and the
  engine drops settled records, power segments and sensor samples as it
  goes, so peak memory must be independent of trace length.  This cell
  pins ``scale="tiny"`` explicitly: it is a memory-behavior assertion,
  not a paper-scale experiment, and must stay affordable at every
  ``REPRO_SCALE``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import checkpoint_rows, once

from repro.analysis import (
    build_leaderboard,
    build_waterfall,
    render_leaderboard,
    render_waterfall,
    write_leaderboard_json,
)
from repro.scheduling.orders import all_orders
from repro.telemetry.trajectory import record_trajectory_point
from repro.workload import get_scenario, run_traffic_batched

pytestmark = pytest.mark.workload

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_workload.json"

SCENARIO_NAMES = ("steady", "burst", "diurnal", "overload")
POLICIES = ("bandit",) + tuple(order.value for order in all_orders())
BATCH_SIZE = 8

#: Requests per scenario cell.  Calibrated so the bandit's exploration
#: pass completes with rounds to spare for exploitation at every scale.
REQUESTS_BY_SCALE = {"tiny": 240, "small": 320, "paper": 320}

#: The acceptance cell: one million requests streamed end to end.
MEGA_REQUESTS = 1_000_000
MEGA_BASE_REQUESTS = 125_000
#: Peak-RSS ratio allowed between the 8x-longer run and the base run.
MEGA_RSS_RATIO_LIMIT = 1.5

#: Subprocess body for one mega-stream run: serve ``argv[1]`` requests
#: of a 100x-capacity overload scenario open-loop (front-door shedding
#: absorbs the excess in O(1) per arrival) and report peak RSS.
_MEGA_CHILD = """\
import dataclasses, json, resource, sys
from repro.workload import get_scenario, run_traffic

n = int(sys.argv[1])
scenario = dataclasses.replace(
    get_scenario("overload"), name="mega-overload", load=100.0
)
built = scenario.build(n, scale="tiny")
result = run_traffic(
    built, policy="reject", queue_depth=4, front_door=True, scale="tiny"
)
print(json.dumps({
    "rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "outcomes": dict(sorted(result.serving.outcomes.items())),
    "deadline_met": result.serving.deadline_met,
}))
"""


# ---------------------------------------------------------------------------
# Leaderboard sweep
# ---------------------------------------------------------------------------


def _sweep(scale):
    requests = REQUESTS_BY_SCALE.get(scale, 320)
    cells = []
    rows = []
    for name in SCENARIO_NAMES:
        built = get_scenario(name).build(requests, scale=scale)
        for policy in POLICIES:
            metrics = run_traffic_batched(
                built, policy, batch_size=BATCH_SIZE, scale=scale
            ).metrics()
            cells.append(metrics)
            rows.append(
                {
                    "scenario": metrics["scenario"],
                    "policy": metrics["policy"],
                    "goodput": metrics["goodput"],
                    "slo_pct": metrics["slo_attainment"] * 100.0,
                    "deadline_met": metrics["deadline_met"],
                    "arrivals": metrics["arrivals"],
                    "virtual_makespan_s": metrics["virtual_makespan"],
                }
            )
        # A crashed later scenario must not lose the finished ones.
        checkpoint_rows(rows, "workload_leaderboard.csv")
    return cells, rows


def test_workload_leaderboard(benchmark, scale, results_dir):
    cells, rows = once(benchmark, _sweep, scale)

    board = build_leaderboard(cells)
    # Baseline for the waterfall: the static order with the worst
    # aggregate goodput across scenarios — the cost of picking a launch
    # order blind and getting it maximally wrong.
    statics = [p for p in POLICIES if p != "bandit"]
    aggregate = {
        p: sum(board[s]["policies"][p]["goodput"] for s in SCENARIO_NAMES)
        for p in statics
    }
    worst_static = min(statics, key=lambda p: (aggregate[p], p))
    waterfall = build_waterfall(board, "bandit", worst_static)

    print()
    print(render_leaderboard(board))
    print()
    print(render_waterfall(waterfall))
    write_leaderboard_json(
        board,
        results_dir / "workload_leaderboard.json",
        waterfall=waterfall,
        meta={
            "scale": scale,
            "requests": REQUESTS_BY_SCALE.get(scale, 320),
            "batch_size": BATCH_SIZE,
            "baseline": worst_static,
        },
    )

    # Every cell scored every request exactly once.
    requests = REQUESTS_BY_SCALE.get(scale, 320)
    for cell in cells:
        assert cell["arrivals"] == requests, cell

    # The headline contract: under sustained overload the learning
    # bandit beats the worst static launch order on SLO goodput.
    overload = board["overload"]["policies"]
    bandit_goodput = overload["bandit"]["goodput"]
    static_goodputs = {p: overload[p]["goodput"] for p in statics}
    floor_policy = min(statics, key=lambda p: (static_goodputs[p], p))
    floor = static_goodputs[floor_policy]
    assert bandit_goodput > floor, (
        f"bandit goodput {bandit_goodput:.2f} does not beat the worst "
        f"static order {floor_policy} ({floor:.2f}) under overload"
    )
    margin_pct = (bandit_goodput - floor) / floor * 100.0 if floor else 0.0
    print(
        f"\noverload: bandit {bandit_goodput:.2f} req/s vs worst static "
        f"{floor_policy} {floor:.2f} req/s ({margin_pct:+.1f}%)"
    )

    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_workload",
        {
            "scenarios": len(SCENARIO_NAMES),
            "policies": len(POLICIES),
            "bandit_overload_goodput": bandit_goodput,
            "worst_static_overload_goodput": floor,
            "overload_margin_pct": margin_pct,
            "waterfall_wins": sum(
                1 for r in waterfall if r["verdict"] == "win"
            ),
            "waterfall_regressions": sum(
                1 for r in waterfall if r["verdict"] == "regression"
            ),
        },
    )


# ---------------------------------------------------------------------------
# Mega-stream bounded memory
# ---------------------------------------------------------------------------


def _mega_run(requests):
    """Serve ``requests`` mega-overload arrivals in a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if p
    )
    env["REPRO_SCALE"] = "tiny"
    started = time.monotonic()
    proc = subprocess.run(
        [sys.executable, "-c", _MEGA_CHILD, str(requests)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, (
        f"mega-stream child ({requests} requests) failed:\n{proc.stderr}"
    )
    payload = json.loads(proc.stdout)
    payload["wall_s"] = time.monotonic() - started
    payload["requests"] = requests
    return payload


def _mega_pair():
    return [_mega_run(MEGA_BASE_REQUESTS), _mega_run(MEGA_REQUESTS)]


def test_mega_stream_bounded_memory(benchmark, results_dir):
    base, mega = once(benchmark, _mega_pair)

    served = sum(mega["outcomes"].values())
    assert served == MEGA_REQUESTS, mega["outcomes"]
    ratio = mega["rss_kb"] / base["rss_kb"]
    throughput = mega["requests"] / mega["wall_s"]
    rows = [
        {
            "requests": run["requests"],
            "peak_rss_mb": run["rss_kb"] / 1024.0,
            "wall_s": run["wall_s"],
            "throughput_req_s": run["requests"] / run["wall_s"],
            "completed": run["outcomes"].get("completed", 0),
            "shed": sum(
                count
                for outcome, count in run["outcomes"].items()
                if outcome.startswith("shed")
            ),
        }
        for run in (base, mega)
    ]
    checkpoint_rows(rows, "workload_mega_stream.csv")
    print(
        f"\nmega-stream: {MEGA_REQUESTS:,} requests in {mega['wall_s']:.0f}s "
        f"({throughput:,.0f} req/s), peak RSS {mega['rss_kb'] / 1024:.0f} MB "
        f"vs {base['rss_kb'] / 1024:.0f} MB at {MEGA_BASE_REQUESTS:,} "
        f"(x{ratio:.2f})"
    )

    # Peak RSS must be independent of trace length: 8x the requests may
    # not cost more than 1.5x the memory.
    assert ratio < MEGA_RSS_RATIO_LIMIT, (
        f"peak RSS grew x{ratio:.2f} for 8x the requests "
        f"({base['rss_kb']} kB -> {mega['rss_kb']} kB): the streamed "
        "serving path is accumulating per-request state"
    )

    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_workload",
        {
            "requests": MEGA_REQUESTS,
            "peak_rss_mb": mega["rss_kb"] / 1024.0,
            "rss_ratio_vs_8x_fewer": ratio,
            "throughput_req_s": throughput,
            "completed": mega["outcomes"].get("completed", 0),
        },
    )
