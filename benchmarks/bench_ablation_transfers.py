"""Ablation — transfer policies: batching (mutex) vs chunking vs FIFO queue.

The paper positions its pseudo-burst mutex against Pai et al.'s transfer
*chunking*, which splits copies into small pieces to exploit copy-queue
interleaving — the right call for their 100 MB single-transfer regime, the
wrong one for the paper's many-small-transfers regime.  This bench compares
four configurations on the transfer-sensitive {gaussian, needle} workload:

1. default (interleaved copy queue),
2. the paper's mutex (batched bursts),
3. chunked transfers (256 KB pieces, interleaved queue),
4. a FIFO copy queue (service in ready order; no interleaving discipline).
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.apps.registry import APP_CLASSES
from repro.core.baselines import chunk_profile
from repro.core.runner import RunConfig
from repro.core.workload import Workload
from repro.framework.harness import HarnessConfig, TestHarness
from repro.framework.metrics import average_effective_latency

NUM_APPS = 16
PAIR = ("gaussian", "needle")


def _run_chunked(workload, scale, chunk_bytes=256 * 1024):
    """Run the workload with every app profile rewritten into chunks."""
    apps = workload.instantiate()
    for app in apps:
        app.profile = chunk_profile(app.profile, chunk_bytes=chunk_bytes)
    result = TestHarness(
        HarnessConfig(apps=apps, num_streams=NUM_APPS)
    ).run()
    return result


def test_transfer_policy_ablation(benchmark, runner, scale, results_dir):
    workload = Workload.heterogeneous_pair(*PAIR, NUM_APPS, scale=scale)

    def sweep():
        default = runner.run(RunConfig(workload=workload, num_streams=NUM_APPS))
        batched = runner.run(
            RunConfig(workload=workload, num_streams=NUM_APPS, memory_sync=True)
        )
        fifo = runner.run(
            RunConfig(workload=workload, num_streams=NUM_APPS, copy_policy="fifo")
        )
        chunked = _run_chunked(workload, scale)
        return default, batched, fifo, chunked

    default, batched, fifo, chunked = once(benchmark, sweep)
    rows = [
        {
            "policy": "default (interleave)",
            "makespan_ms": default.makespan * 1e3,
            "avg_Le_ms": default.harness.effective_latency() * 1e3,
        },
        {
            "policy": "batched (paper mutex)",
            "makespan_ms": batched.makespan * 1e3,
            "avg_Le_ms": batched.harness.effective_latency() * 1e3,
        },
        {
            "policy": "fifo copy queue",
            "makespan_ms": fifo.makespan * 1e3,
            "avg_Le_ms": fifo.harness.effective_latency() * 1e3,
        },
        {
            "policy": "chunked 256KB (Pai et al.)",
            "makespan_ms": chunked.makespan * 1e3,
            "avg_Le_ms": average_effective_latency(chunked.records) * 1e3,
        },
    ]
    write_csv(rows, results_dir / "ablation_transfers.csv")
    print()
    print(format_table(rows, title="Ablation — transfer handling policies"))

    by_policy = {r["policy"]: r for r in rows}
    # The paper's batching gives the lowest effective latency of all.
    assert by_policy["batched (paper mutex)"]["avg_Le_ms"] == min(
        r["avg_Le_ms"] for r in rows
    )
    # Chunking *increases* interleaving and therefore effective latency
    # relative to unchunked default — wrong regime for small transfers.
    assert (
        by_policy["chunked 256KB (Pai et al.)"]["avg_Le_ms"]
        >= by_policy["default (interleave)"]["avg_Le_ms"] * 0.95
    )
    # Batching does not hurt end-to-end time materially.
    assert (
        by_policy["batched (paper mutex)"]["makespan_ms"]
        <= by_policy["default (interleave)"]["makespan_ms"] * 1.1
    )
