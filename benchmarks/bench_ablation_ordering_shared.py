"""Ablation — launch order when applications must share streams (NA > NS).

Figures 7/8 use NS = NA = 32 (one stream per application).  The paper's
Section III-C motivates ordering partly through the *other* regime: "when
there exist fewer execution streams (NS) than applications to be scheduled
(NA), the scheduling mechanism enables us to control the order in which
applications are executed" — apps mapped to the same stream serialize in
launch order.  This bench quantifies the ordering spread at NA = 2 NS,
where stream sharing amplifies the effect of who goes first.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.runner import ExperimentRunner
from repro.core.workload import Workload

NUM_APPS = 16
PAIRS = (("nn", "srad"), ("needle", "srad"), ("needle", "nn"))


def test_ordering_with_shared_streams(benchmark, runner, scale, results_dir):
    def sweep():
        rows = []
        for pair in PAIRS:
            workload = Workload.heterogeneous_pair(*pair, NUM_APPS, scale=scale)
            per_order = runner.ordering_matrix(
                workload,
                num_streams=NUM_APPS // 2,   # two applications per stream
                memory_sync=True,
            )
            worst = max(r.makespan for r in per_order.values())
            for order, run in per_order.items():
                rows.append(
                    {
                        "pair": f"{pair[0]}+{pair[1]}",
                        "order": str(order),
                        "makespan_ms": run.makespan * 1e3,
                        "normalized_perf": worst / run.makespan,
                    }
                )
        return rows

    rows = once(benchmark, sweep)
    write_csv(rows, results_dir / "ablation_ordering_shared.csv")
    print()
    print(format_table(
        rows,
        title="Ablation — ordering effect with shared streams (NA = 2 NS, sync)",
    ))

    by_pair = {}
    for row in rows:
        by_pair.setdefault(row["pair"], []).append(row)
    spreads = {}
    for pair, pair_rows in by_pair.items():
        makespans = [r["makespan_ms"] for r in pair_rows]
        spreads[pair] = (max(makespans) - min(makespans)) / max(makespans) * 100
        # Exactly one worst order normalizes to 1.0.
        assert min(r["normalized_perf"] for r in pair_rows) == 1.0
    print("\nordering spread with stream sharing:",
          {k: f"{v:.1f}%" for k, v in spreads.items()})

    # Order still matters when streams are shared.
    assert max(spreads.values()) > 0.5
