"""The abstract's headline numbers: paper vs measured, in one table.

Aggregates Figures 4, 7, 8 and 10 into the claims the abstract makes
("up to 31.8% improvement in performance and 10.4% reduction in energy on
average ... up to 59% improvement over serialized execution ... up to
25.4%/25.7% reduction in GPU energy") and writes the comparison that
EXPERIMENTS.md records.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import headline_numbers

NUM_APPS = 32


def test_headline_numbers(benchmark, runner, scale, results_dir):
    result = once(
        benchmark, headline_numbers, num_apps=NUM_APPS, scale=scale, runner=runner
    )
    rows = result.rows()
    write_csv(rows, results_dir / "headline_numbers.csv")
    print()
    print(format_table(rows, title="Headline claims: paper vs measured (%)"))

    # Direction and rough magnitude of every aggregate claim.
    by_claim = {r["claim"]: r["measured_pct"] for r in rows}

    # Concurrency alone buys tens of percent over serialized execution.
    assert by_claim["max full-concurrent improvement"] > 25.0
    if scale == "paper":
        assert by_claim["max full-concurrent improvement"] < 85.0
        assert 10.0 < by_claim["avg full-concurrent improvement"] < 60.0
        assert 25.0 < by_claim["max half-concurrent improvement"] < 85.0

    # Ordering matters more with sync than without (the sync-vs-default
    # ranking is a paper-scale property).
    if scale == "paper":
        assert (
            by_claim["max ordering improvement (sync)"]
            >= by_claim["max ordering improvement (default)"]
        )
        assert by_claim["max ordering improvement (sync)"] > 8.0

    # Energy: solid average reduction, larger best case.
    assert by_claim["avg energy reduction (sync)"] > 5.0
    assert (
        by_claim["max energy reduction (sync)"]
        > by_claim["avg energy reduction (sync)"]
    )
