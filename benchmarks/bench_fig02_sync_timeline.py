"""Figure 2 — concurrency recovered by memory-transfer synchronization.

Same workload as Figure 1 with the Section III-B host mutex: each stream's
transfers now run consecutively, applications reach their kernels sooner,
and the copy queue hands over between applications at most once per app.
"""

from conftest import once

from repro.analysis.tables import write_csv
from repro.analysis.timeline import render_timeline
from repro.core.experiments import fig1_fig2_timelines

NUM_APPS = 8


def test_fig2_synchronized_transfers(benchmark, runner, scale, results_dir):
    study = once(
        benchmark,
        fig1_fig2_timelines,
        pair=("gaussian", "needle"),
        num_apps=NUM_APPS,
        scale=scale,
        runner=runner,
    )
    rows = study.rows()
    write_csv(rows, results_dir / "fig02_sync_timeline.csv")
    print()
    print(render_timeline(
        study.sync_trace, width=100,
        title="Figure 2 — synchronized transfers (per-app bursts):",
    ))
    default_row, sync_row = rows
    print(
        f"\nhandovers: default {default_row['htod_interleaving_switches']} "
        f"-> sync {sync_row['htod_interleaving_switches']}; "
        f"avg Le: {default_row['avg_effective_latency_ms']:.3f} ms -> "
        f"{sync_row['avg_effective_latency_ms']:.3f} ms"
    )

    # Burst service: at most one handover per application boundary.
    assert study.interleaving_switches(study.sync_trace) <= NUM_APPS
    # And strictly fewer than the interleaved case.
    assert (
        study.interleaving_switches(study.sync_trace)
        < study.interleaving_switches(study.default_trace)
    )
    # Effective latency recovered (the Figure 2 "consecutive" claim).
    assert (
        sync_row["avg_effective_latency_ms"]
        < default_row["avg_effective_latency_ms"]
    )
