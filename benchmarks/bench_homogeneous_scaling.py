"""Homogeneous workload scaling (the paper's Section IV homogeneous case).

Measures, per application type, the gain from running NA copies of the
*same* application concurrently instead of serialized.  This isolates each
application's own overlap potential and confirms the utilization spread the
paper's heterogeneous pairings exploit: underutilizers (needle: <2% thread
occupancy; nn: transfer-bound) gain most, device-filling applications
(gaussian dominated by Fan2, srad) least.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import homogeneous_scaling

NA_VALUES = (4, 8, 16)


def test_homogeneous_scaling(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        homogeneous_scaling,
        na_values=NA_VALUES,
        scale=scale,
        runner=runner,
    )
    rows = [
        {
            "app": r.app,
            "NA": r.num_apps,
            "serial_ms": r.serial_makespan * 1e3,
            "concurrent_ms": r.concurrent_makespan * 1e3,
            "improvement_pct": r.improvement_pct,
            "energy_serial_J": r.serial_energy,
            "energy_concurrent_J": r.concurrent_energy,
        }
        for r in result.rows
    ]
    write_csv(rows, results_dir / "homogeneous_scaling.csv")
    print()
    print(format_table(rows, title="Homogeneous self-concurrency scaling"))
    best_app, best = result.best_improvement()
    print(f"\nbest self-concurrency gain: {best:.1f}% ({best_app})")

    # Concurrency never loses, even for device-filling applications
    # (the LEFTOVER "no worse than serialization" guarantee).
    assert all(r.improvement_pct > -2.0 for r in result.rows)

    if scale == "paper":
        by_app = result.by_app()
        best_per_app = {
            app: max(r.improvement_pct for r in rows_)
            for app, rows_ in by_app.items()
        }
        # The underutilizer gains far more than the device-filler.
        assert best_per_app["needle"] > best_per_app["gaussian"]
