"""Figure 7 — launch-order effect with default transfer behaviour.

Runs all five Figure 3 launch orders for every heterogeneous pair at
NS = NA = 32 and normalizes each pair's performance to its slowest order.

Paper claims: schedule order affects performance by up to 9.4% (3.8% on
average) without memory synchronization.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import fig7_ordering_default
from repro.scheduling.orders import ordering_rows

NUM_APPS = 32


def test_fig7_ordering_default(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        fig7_ordering_default,
        num_apps=NUM_APPS,
        scale=scale,
        runner=runner,
    )
    rows = ordering_rows(result)
    write_csv(rows, results_dir / "fig07_ordering_default.csv")
    print()
    print(format_table(
        rows, title="Figure 7 — ordering effect, default transfers"
    ))
    mx, avg = result.stats()
    print(f"\nordering spread: max {mx:.1f}% avg {avg:.1f}% "
          "(paper: up to 9.4%, avg 3.8%)")

    # Every pair's worst order normalizes to exactly 1.0.
    for pair, pair_rows in result.by_pair().items():
        norms = [r.normalized_performance for r in pair_rows]
        assert min(norms) == 1.0
        assert all(n >= 1.0 for n in norms)
    # Order matters, but modestly without the mutex (quantitative band
    # calibrated at paper scale).
    if scale == "paper":
        assert 1.0 < mx < 25.0
        assert 0.3 < avg < 15.0
    else:
        assert mx > 0.0
