"""Figure 10 — power with default vs synchronized transfers.

The paper's check that the transfer mutex is power-neutral: at 32
applications on 32 streams, enabling synchronization barely changes the
board's power draw, while the improved makespan turns into energy savings
— 10.4% on average across pairs, up to 25.7%.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import fig10_power_sync

NUM_APPS = 32


def test_fig10_power_sync(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        fig10_power_sync,
        pair=("gaussian", "needle"),
        num_apps=NUM_APPS,
        scale=scale,
        runner=runner,
        power_interval=5e-3,
    )
    rows = [
        {
            "scenario": s.label,
            "makespan_ms": s.makespan * 1e3,
            "energy_J": s.energy,
            "avg_power_W": s.average_power,
            "peak_power_W": s.peak_power,
        }
        for s in result.scenarios
    ]
    write_csv(rows, results_dir / "fig10_power_sync.csv")
    energy_rows = [
        {"pair": f"{p[0]}+{p[1]}", "energy_improvement_pct": v}
        for p, v in sorted(result.energy_improvement_by_pair.items())
    ]
    write_csv(energy_rows, results_dir / "fig10_energy_by_pair.csv")
    print()
    print(format_table(rows, title="Figure 10 — power: default vs memory sync"))
    print(format_table(
        energy_rows, title="\nSync energy reduction vs serial, per pair"
    ))
    best_pair, best = result.best_energy_improvement
    print(
        f"\npower delta (sync vs default): {result.power_delta_pct:+.1f}% "
        "(paper: 'not significantly affected'); "
        f"energy reduction avg {result.average_energy_improvement:.1f}% "
        f"(paper: 10.4%), best {best:.1f}% (paper: 25.7%)"
    )

    # Power-neutrality of the synchronization technique.
    assert abs(result.power_delta_pct) < 12.0
    # Energy reduction for every pair, average in the paper's band.
    assert all(v > 0 for v in result.energy_improvement_by_pair.values())
    assert result.average_energy_improvement > 5.0
    assert best > 15.0
