"""Hedging economics — p99 batch makespan under a gray 4x slowdown.

A fleet of 8 devices runs one compute-dense app per device; one device
is grayed with a sustained 4x SMX slowdown (it heartbeats normally, so
fail-stop failover never triggers).  Unhedged, the batch makespan is the
straggler's 4x-stretched runtime.  With hedging on, the straggler
detector flags the device from observed kernel-latency stretch and the
hedge manager races a checkpoint-forked replica on a healthy peer.

The bench sweeps batches (slow device and gray onset vary per batch),
reports the p99 batch makespan hedged vs. unhedged, and pins the PR's
acceptance bargain in ``BENCH_hedging.json``:

* hedging cuts p99 batch makespan by >= 30%;
* duplicate (wasted) kernel work stays <= 15% of the batch's kernels.

A second test pins the other half of the bargain: with gray faults
absent, enabling hedging changes *nothing* (identical records — the
detector observes, the scanner scans, nobody acts) and the hedging path
costs < 2% wall clock, measured with the same paired-minimum
methodology as ``bench_integrity_overhead.py``.

The workload is synthetic rather than a Rodinia port because the tiny
test-scale Rodinia profiles are launch-overhead-dominated: a 4x compute
slowdown moves their makespan by a few percent, which would say nothing
about hedging.  The dense app is one device-filling 50us kernel per
phase, 40 phases, so compute dominates and every phase boundary is a
checkpoint the replica can fork from.
"""

import gc
import time
from pathlib import Path

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.fleet import FleetConfig, FleetHarness, HedgeConfig
from repro.framework.kernel import (
    AppProfile,
    Buffer,
    KernelApp,
    KernelPhase,
    TransferPhase,
)
from repro.gpu.commands import CopyDirection
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.resilience.faults import FaultKind, FaultPlan
from repro.telemetry.trajectory import record_trajectory_point

DEVICES = 8
KERNELS = 40
#: Full-occupancy launches: 8 resident 256-thread blocks per SMX on the
#: 13-SMX K20 (the threads-per-SMX limit), times two scheduling waves.
#: A 13-block one-wave grid would be the degenerate minimum of compute
#: per launch and overstate the relative cost of the observation hook.
WAVES = 2
GRID_BLOCKS = 13 * 8 * WAVES
BLOCK_DURATION = 50e-6
SLOWDOWN = 4.0
BATCHES = 12

FAST_HEALTH = dict(
    heartbeat_interval=2e-5,
    detection_latency=5e-5,
    detection_jitter=1e-5,
)
#: Sweep config: scan fast enough to hedge inside a ~10 ms batch.
HEDGE = HedgeConfig(check_interval=0.2e-3)
#: Overhead config: the defaults a production fleet would run.
HEDGE_DEFAULT = HedgeConfig()

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_hedging.json"

#: Paired-minimum overhead loop (see bench_integrity_overhead.py).
TIME_BUDGET_S = 20.0
MIN_REPEATS = 4


def _dense_app(instance):
    """One device-filling compute-dense app, checkpointed per kernel."""
    buf = Buffer("data", 1 << 20)
    kernel = KernelDescriptor(
        name="dense",
        grid=Dim3(GRID_BLOCKS),
        block=Dim3(256),
        block_duration=BLOCK_DURATION,
    )
    phases = [TransferPhase(CopyDirection.HTOD, (buf,))]
    phases += [KernelPhase((kernel,)) for _ in range(KERNELS)]
    phases.append(TransferPhase(CopyDirection.DTOH, (buf,)))
    profile = AppProfile(
        name="dense",
        data_dim=f"{KERNELS}x{BLOCK_DURATION * 1e6:.0f}us",
        host_allocs=(buf,),
        device_allocs=(buf,),
        phases=tuple(phases),
    )
    return KernelApp(profile, instance=instance)


def _apps():
    return [_dense_app(i) for i in range(DEVICES)]


def _fleet(hedging, seed=0, fast_health=True):
    # FAST_HEALTH shrinks *loss-detection* timings so fail-stop faults
    # resolve inside tiny runs; straggler detection and hedge latency are
    # governed by the hedge scan interval instead, so the fault-free
    # overhead measurement runs at the default health cadence.
    health = FAST_HEALTH if fast_health else {}
    return FleetConfig(
        num_devices=DEVICES, seed=seed, hedging=hedging, **health
    )


def _gray_plan(batch):
    """Sustained 4x slowdown; slow device and onset vary per batch."""
    return FaultPlan.gray(
        batch % DEVICES,
        kind=FaultKind.SMX_SLOWDOWN,
        start=batch * 0.25e-3,
        duration=1.0,
        factor=SLOWDOWN,
    )


def _run(hedging, plan, seed=0, fast_health=True):
    return FleetHarness(
        _apps(), _fleet(hedging, seed, fast_health), plan=plan
    ).run()


def _p99(values):
    """Deterministic nearest-rank p99."""
    ordered = sorted(values)
    rank = max(0, -(-99 * len(ordered) // 100) - 1)
    return ordered[rank]


def _sweep():
    rows = []
    batch_kernels = DEVICES * KERNELS
    for batch in range(BATCHES):
        plan = _gray_plan(batch)
        unhedged = _run(None, plan, seed=batch)
        hedged = _run(HEDGE, plan, seed=batch)
        assert unhedged.completed == DEVICES
        assert hedged.completed == DEVICES
        rows.append(
            {
                "batch": batch,
                "slow_device": batch % DEVICES,
                "unhedged_ms": unhedged.makespan * 1e3,
                "hedged_ms": hedged.makespan * 1e3,
                "cut_pct": (
                    (unhedged.makespan - hedged.makespan)
                    / unhedged.makespan
                    * 100.0
                ),
                "hedges": hedged.hedges_launched,
                "wins": hedged.hedge_wins,
                "dup_kernels": hedged.duplicate_kernels,
                "dup_pct": hedged.duplicate_kernels / batch_kernels * 100.0,
            }
        )
    return rows


@pytest.mark.fleet
def test_hedging_cuts_p99_gray_makespan(benchmark, results_dir):
    rows = once(benchmark, _sweep)

    p99_unhedged = _p99([r["unhedged_ms"] for r in rows])
    p99_hedged = _p99([r["hedged_ms"] for r in rows])
    cut_pct = (p99_unhedged - p99_hedged) / p99_unhedged * 100.0
    worst_dup_pct = max(r["dup_pct"] for r in rows)

    print()
    print(
        format_table(
            rows,
            title=(
                f"Hedging under a {SLOWDOWN:.0f}x single-device slowdown "
                f"({DEVICES} devices, {KERNELS} kernels/app)"
            ),
        )
    )
    print(
        f"p99 makespan: unhedged {p99_unhedged:.3f} ms -> hedged "
        f"{p99_hedged:.3f} ms ({cut_pct:.1f}% cut); worst duplicate work "
        f"{worst_dup_pct:.1f}% of batch kernels"
    )
    write_csv(rows, results_dir / "bench_hedging.csv")
    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_hedging",
        {
            "p99_unhedged_ms": p99_unhedged,
            "p99_hedged_ms": p99_hedged,
            "p99_cut_pct": cut_pct,
            "worst_dup_pct": worst_dup_pct,
        },
    )

    # Every batch hedged at least once and nothing was lost to the race.
    assert all(r["hedges"] >= 1 for r in rows)
    # The acceptance bargain.
    assert cut_pct >= 30.0, (
        f"hedging cut p99 makespan by only {cut_pct:.1f}% (need >= 30%)"
    )
    assert worst_dup_pct <= 15.0, (
        f"duplicate work reached {worst_dup_pct:.1f}% of batch kernels "
        "(budget: 15%)"
    )


def _record_key(result):
    return [
        (r.app_id, r.spawn_time, r.gpu_start, r.complete_time, r.outcome)
        for r in result.records
    ]


def _paired_minima(budget_s):
    """(best off s, best on s, off key, on key, repeats).

    Alternating off/on pairs, per-side minimum over a time-budgeted
    repeat loop — the same floor estimator bench_integrity_overhead.py
    uses, for the same reason: the effect under measurement is smaller
    than slot-to-slot wall-clock drift.
    """
    best = {False: float("inf"), True: float("inf")}
    keys = {}
    deadline = time.perf_counter() + budget_s
    rep = 0
    while rep < MIN_REPEATS or time.perf_counter() < deadline:
        order = (False, True) if rep % 2 == 0 else (True, False)
        for hedging_on in order:
            gc.collect()
            t0 = time.perf_counter()
            result = _run(
                HEDGE_DEFAULT if hedging_on else None,
                plan=None,
                fast_health=False,
            )
            best[hedging_on] = min(best[hedging_on], time.perf_counter() - t0)
            keys[hedging_on] = _record_key(result)
            assert result.hedges_launched == 0
        rep += 1
    return best[False], best[True], keys[False], keys[True], rep


@pytest.mark.fleet
def test_hedging_idle_is_free(benchmark, results_dir):
    # Warm both code paths before timing.
    _run(None, plan=None, fast_health=False)
    _run(HEDGE_DEFAULT, plan=None, fast_health=False)
    off_s, on_s, off_key, on_key, reps = once(
        benchmark, _paired_minima, TIME_BUDGET_S
    )

    # With no gray fault the detector never classifies and the scanner
    # never acts: simulated results are identical, not merely close.
    assert on_key == off_key

    overhead_pct = (on_s - off_s) / off_s * 100.0
    rows = [
        {
            "config": f"{DEVICES}dev x {KERNELS}k dense, no faults",
            "repeats": reps,
            "hedging_off_s": off_s,
            "hedging_on_s": on_s,
            "overhead_pct": overhead_pct,
            "results_identical": True,
        }
    ]
    print()
    print(format_table(rows, title="Hedging — idle-path overhead"))
    write_csv(rows, results_dir / "hedging_overhead.csv")
    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_hedging",
        {"idle_overhead_pct": overhead_pct},
    )

    assert overhead_pct < 2.0, (
        f"idle hedging path cost {overhead_pct:.2f}% of wall time "
        "(budget: 2%)"
    )
