"""Telemetry overhead — enabled metrics must not perturb or slow the sim.

The telemetry subsystem promises two things (docs/observability.md): with
``telemetry=None`` nothing changes at all, and with a live
:class:`~repro.telemetry.Telemetry` attached the simulated results are
*identical* (probes only read state; snapshots are keyed to the simulated
clock) at a wall-clock overhead under 2%.  This bench pins both halves of
that bargain on a Figure 4-style sweep and appends the measurement to the
repo's perf trajectory (``BENCH_telemetry.json``) so overhead creep shows
up commit over commit.

Unlike ``bench_resilience_overhead.py`` (clean pass first, hooked pass
second), the two sides here run *interleaved*: shared CI runners drift by
far more than 2% between windows, so pairing each clean sweep with an
instrumented sweep in the same window and taking the per-side minimum is
the only way a 2% bound stays meaningful.  Warm-up bias is handled with
one explicit untimed sweep of each kind before the clock starts.
"""

import time
from pathlib import Path

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.telemetry import Telemetry
from repro.telemetry.trajectory import record_trajectory_point

NA_VALUES = (8, 16)
PAIR = ("gaussian", "needle")
#: Repeat until each side has been timed for at least this long (bounded
#: below/above); short sweeps at ``REPRO_SCALE=small`` need many samples
#: before the per-side minimum reliably reaches the noise floor.
TARGET_SECONDS = 4.0
MIN_REPEATS = 5
MAX_REPEATS = 25

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _sweep(instrumented):
    """One fig4-style full-concurrency sweep; returns per-cell metrics."""
    runner = ExperimentRunner()
    cells = []
    for na in NA_VALUES:
        workload = Workload.heterogeneous_pair(*PAIR, na)
        config = RunConfig(
            workload=workload,
            num_streams=na,
            telemetry=Telemetry() if instrumented else None,
        )
        result = runner.run(config)
        cells.append(
            {
                "NA": na,
                "makespan": result.makespan,
                "energy": result.energy,
                "peak_power": result.peak_power,
            }
        )
    return cells


def _repeats(sample_s: float) -> int:
    """How many timed repetitions each side gets for one ``sample_s`` sweep."""
    if sample_s <= 0:
        return MAX_REPEATS
    return max(MIN_REPEATS, min(MAX_REPEATS, int(TARGET_SECONDS / sample_s) + 1))


def _interleaved_sweeps(repeats):
    """(best clean s, best instrumented s, clean metrics, instr metrics).

    Clean and instrumented sweeps alternate within each repetition so a
    runner slowdown hits both sides; the per-side minimum then compares
    like-for-like floors.
    """
    best_clean = best_hooked = float("inf")
    clean_metrics = hooked_metrics = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        clean_metrics = _sweep(False)
        best_clean = min(best_clean, time.perf_counter() - t0)
        t0 = time.perf_counter()
        hooked_metrics = _sweep(True)
        best_hooked = min(best_hooked, time.perf_counter() - t0)
    return best_clean, best_hooked, clean_metrics, hooked_metrics


@pytest.mark.telemetry
def test_telemetry_overhead(benchmark, results_dir):
    # Untimed warmups: both code paths touch all their imports and caches
    # before either side is measured, so neither ratio leg pays a one-off
    # cost the other did not.  The clean warmup doubles as the calibration
    # sample for the repeat count.
    t0 = time.perf_counter()
    _sweep(False)
    repeats = _repeats(time.perf_counter() - t0)
    _sweep(True)
    clean_s, hooked_s, clean_metrics, hooked_metrics = once(
        benchmark, _interleaved_sweeps, repeats
    )

    # The simulated results must be *identical*: probes read state, never
    # mutate it, and sampler ticks ride the simulated clock without
    # reordering any workload event.
    assert hooked_metrics == clean_metrics

    overhead_pct = (hooked_s - clean_s) / clean_s * 100.0
    rows = [
        {
            "sweep": f"{PAIR[0]}+{PAIR[1]} NA={','.join(map(str, NA_VALUES))}",
            "clean_s": clean_s,
            "instrumented_s": hooked_s,
            "overhead_pct": overhead_pct,
            "results_identical": True,
        }
    ]
    write_csv(rows, results_dir / "telemetry_overhead.csv")
    print()
    print(format_table(rows, title="Telemetry — live-metrics overhead"))

    # First-class perf-trajectory point: one entry per commit, appended so
    # the overhead trend is reviewable without rerunning old builds.
    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_telemetry_overhead",
        {
            "clean_s": clean_s,
            "instrumented_s": hooked_s,
            "overhead_pct": overhead_pct,
        },
    )

    assert overhead_pct < 2.0, (
        f"telemetry costs {overhead_pct:.2f}% of wall time when enabled "
        "(budget: 2%)"
    )
