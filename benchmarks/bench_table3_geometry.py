"""Table III — kernel launch geometry of the ported applications.

Regenerates the paper's geometry table from the application profiles and
verifies every row against the published values.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import table3_geometry

#: The paper's Table III, keyed by kernel.
PAPER_TABLE_3 = {
    "Fan1": dict(calls=511, block_dim=(512, 1, 1), max_blocks=1, tpb=512),
    "Fan2": dict(calls=511, block_dim=(16, 16, 1), max_blocks=1024, tpb=256),
    "needle_cuda_shared_1": dict(calls=16, block_dim=(32, 1, 1), max_blocks=16, tpb=32),
    "needle_cuda_shared_2": dict(calls=15, block_dim=(32, 1, 1), max_blocks=15, tpb=32),
    "srad_cuda_1": dict(calls=10, block_dim=(16, 16, 1), max_blocks=1024, tpb=256),
    "srad_cuda_2": dict(calls=10, block_dim=(16, 16, 1), max_blocks=1024, tpb=256),
    "euclid": dict(calls=1, block_dim=(256, 1, 1), max_blocks=168, tpb=256),
}


def test_table3_geometry(benchmark, results_dir):
    rows = once(benchmark, table3_geometry, scale="paper")
    write_csv(rows, results_dir / "table3_geometry.csv")
    print()
    print(format_table(rows, title="Table III — launch geometry (paper scale)"))

    by_kernel = {r["kernel"]: r for r in rows}
    assert set(by_kernel) == set(PAPER_TABLE_3)
    for kernel, expected in PAPER_TABLE_3.items():
        row = by_kernel[kernel]
        assert row["calls"] == expected["calls"], kernel
        assert row["block_dim"] == str(expected["block_dim"]), kernel
        assert row["max_blocks"] == expected["max_blocks"], kernel
        assert row["threads_per_block"] == expected["tpb"], kernel
