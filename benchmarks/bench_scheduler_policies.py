"""Scheduler policies — adaptive ordering vs the five static orders.

The adaptive scheduling subsystem (docs/scheduling.md) promises that on
the Figure 8 setting (heterogeneous pair, transfer mutex on, NA streams)
its two adaptive policies are never *worse* than picking a static launch
order blind:

* ``greedy-interleave`` — one-shot, model-driven — lands at or below the
  **median** of the five static orders on every pair, and
* ``bandit`` — after one exploration pass over the arms — exploits an
  order within **5% of the best** static order for that pair.

This bench measures all seven policies on every Table I pair and asserts
both bounds.  Static-order makespans are measured once per pair and
reused as the bandit's exploration feedback (the sim is deterministic, so
re-running an identical schedule would return the identical makespan);
only the bandit's seeded random-shuffle arm needs a fresh run.  A
summary point is appended to ``BENCH_scheduler.json`` so the adaptive
margin is reviewable commit over commit.
"""

import statistics
from pathlib import Path

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.apps.registry import all_pairs
from repro.core.autotune import evaluate_schedule
from repro.core.workload import Workload
from repro.scheduling import BatchScheduler, SchedulerConfig
from repro.scheduling.orders import all_orders
from repro.telemetry.trajectory import record_trajectory_point

pytestmark = pytest.mark.scheduling

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

#: Calibrated cell sizes: the greedy rule's ≤-median bound is validated at
#: these NA values per scale (see tests/scheduling/test_policies.py).
NUM_APPS_BY_SCALE = {"tiny": 8, "small": 16, "paper": 32}

#: Five exploration pulls plus deterministic exploitation rounds.
BANDIT_ROUNDS = 8


def _measure(cache, workload, schedule, width):
    """Makespan for one explicit schedule, memoized per permutation."""
    key = tuple(schedule)
    if key not in cache:
        value, _ = evaluate_schedule(
            workload, schedule, num_streams=width, memory_sync=True
        )
        cache[key] = value
    return cache[key]


def _decide(policy, types, scale, **options):
    """One decision from a fresh single-policy scheduler (sync forced on)."""
    scheduler = BatchScheduler(
        SchedulerConfig(
            policy=policy, scale=scale, sync_override=True, **options
        )
    )
    return scheduler.schedule(types)


def _bandit_exploit(types, workload, scale, cache, width):
    """Run the bandit online; return (exploit makespan, explored labels)."""
    scheduler = BatchScheduler(
        SchedulerConfig(
            policy="bandit", scale=scale, sync_override=True, epsilon=0.0
        )
    )
    explored, exploit = {}, None
    for _ in range(BANDIT_ROUNDS):
        decision = scheduler.schedule(types)
        makespan = _measure(cache, workload, decision.schedule, width)
        scheduler.observe(decision, makespan)
        if decision.explored:
            explored[decision.order_label] = makespan
        else:
            exploit = makespan
    assert exploit is not None, "bandit never reached exploitation"
    return exploit, explored


def _sweep(scale):
    num_apps = NUM_APPS_BY_SCALE.get(scale, 16)
    rows = []
    for pair in all_pairs():
        workload = Workload.heterogeneous_pair(*pair, num_apps)
        types = workload.types
        cache = {}
        statics = {}
        for order in all_orders():
            decision = _decide(order.value, types, scale)
            statics[order.value] = _measure(
                cache, workload, decision.schedule, decision.num_streams
            )
        greedy_decision = _decide("greedy-interleave", types, scale)
        greedy = _measure(
            cache, workload, greedy_decision.schedule,
            greedy_decision.num_streams,
        )
        bandit, _ = _bandit_exploit(
            types, workload, scale, cache, num_apps
        )
        best = min(statics.values())
        median = statistics.median(statics.values())
        for policy, makespan in [
            *sorted(statics.items()),
            ("greedy-interleave", greedy),
            ("bandit", bandit),
        ]:
            rows.append(
                {
                    "pair": "+".join(pair),
                    "policy": policy,
                    "makespan_ms": makespan * 1e3,
                    "vs_best_pct": (makespan - best) / best * 100.0,
                    "vs_median_pct": (makespan - median) / median * 100.0,
                }
            )
    return rows


def test_scheduler_policies(benchmark, scale, results_dir):
    rows = once(benchmark, _sweep, scale)
    write_csv(rows, results_dir / "scheduler_policies.csv")
    print()
    print(format_table(
        rows, title="Scheduling — adaptive vs the five static orders"
    ))

    greedy = [r for r in rows if r["policy"] == "greedy-interleave"]
    bandit = [r for r in rows if r["policy"] == "bandit"]
    for row in greedy + bandit:
        # Adaptive never loses to the blind median pick.
        assert row["vs_median_pct"] <= 1e-9, (
            f"{row['policy']} above the static median on {row['pair']}: "
            f"{row['vs_median_pct']:.2f}%"
        )
    for row in bandit:
        # After the exploration pass the bandit sits on (an arm within 5%
        # of) the best static order — deterministic sim makes this exact
        # in practice; 5% is the contract.
        assert row["vs_best_pct"] <= 5.0, (
            f"bandit exploit {row['vs_best_pct']:.2f}% above best static "
            f"on {row['pair']}"
        )

    greedy_margin = statistics.mean(r["vs_median_pct"] for r in greedy)
    bandit_gap = statistics.mean(r["vs_best_pct"] for r in bandit)
    print(f"\ngreedy vs median: {greedy_margin:+.2f}% mean across pairs")
    print(f"bandit exploit vs best static: {bandit_gap:+.2f}% mean")

    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_scheduler_policies",
        {
            "pairs": len(greedy),
            "greedy_vs_median_pct_mean": greedy_margin,
            "bandit_vs_best_pct_mean": bandit_gap,
        },
    )
