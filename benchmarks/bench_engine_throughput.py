"""Library performance benchmarks: simulator event throughput.

These are genuine pytest-benchmark measurements (multiple rounds) of the
substrate itself — the numbers to watch when modifying the engine or the
block scheduler.
"""

import pytest

from repro.gpu.device import GPUDevice
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.commands import CopyDirection
from repro.sim.engine import Environment
from repro.sim.resources import Resource


def test_event_calendar_throughput(benchmark):
    """Schedule + process 20k timeouts."""

    def run():
        env = Environment()
        for i in range(20_000):
            env.timeout(i % 97 * 1e-6)
        env.run()
        return env.now

    assert benchmark(run) > 0


def test_process_switch_throughput(benchmark):
    """10k process resumptions through a shared resource."""

    def run():
        env = Environment()
        res = Resource(env, capacity=4)

        def worker():
            for _ in range(10):
                req = res.request()
                yield req
                yield env.timeout(1e-6)
                res.release(req)

        for _ in range(1000):
            env.process(worker())
        env.run()
        return env.now

    assert benchmark(run) > 0


def test_grid_engine_wave_throughput(benchmark):
    """A device-filling kernel stream: ~2k scheduling waves."""
    fan2 = KernelDescriptor(
        "Fan2", Dim3(32, 32), Dim3(16, 16),
        registers_per_thread=15, block_duration=4e-6,
    )

    def run():
        env = Environment()
        device = GPUDevice(env)
        stream = device.create_stream()
        for _ in range(200):
            stream.enqueue_kernel(fan2)
        env.run()
        return device.grid_engine.grids_completed

    assert benchmark(run) == 200


def test_mixed_command_throughput(benchmark):
    """Transfers + kernels across 8 streams (the harness hot path)."""
    kd = KernelDescriptor(
        "k", Dim3(64), Dim3(256), registers_per_thread=16,
        block_duration=5e-6,
    )

    def run():
        env = Environment()
        device = GPUDevice(env)
        streams = [device.create_stream() for _ in range(8)]
        for stream in streams:
            for _ in range(25):
                stream.enqueue_memcpy(CopyDirection.HTOD, 1 << 18)
                stream.enqueue_kernel(kd)
                stream.enqueue_memcpy(CopyDirection.DTOH, 1 << 18)
        env.run()
        return device.commands_issued

    assert benchmark(run) == 8 * 25 * 3
