"""Ablation — LEFTOVER lazy policy vs symbiosis-style admission control.

The paper argues (Section III-A) that relying on the hardware's LEFTOVER
packing beats resource-sum admission control (Li et al. [2]), which
serializes any pair whose combined request exceeds the device, "doing no
worse than serialization".  This bench runs every heterogeneous pair under
both policies on the same device and schedule.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.apps.registry import all_pairs
from repro.core.baselines import symbiosis_admission
from repro.core.runner import RunConfig
from repro.core.workload import Workload
from repro.gpu.specs import tesla_k20

NUM_APPS = 16


def test_leftover_vs_symbiosis(benchmark, runner, scale, results_dir):
    def sweep():
        rows = []
        for pair in all_pairs():
            workload = Workload.heterogeneous_pair(*pair, NUM_APPS, scale=scale)
            leftover = runner.run(
                RunConfig(workload=workload, num_streams=NUM_APPS)
            )
            symbiosis = runner.run(
                RunConfig(
                    workload=workload,
                    num_streams=NUM_APPS,
                    admission=symbiosis_admission(tesla_k20()),
                )
            )
            rows.append(
                {
                    "pair": f"{pair[0]}+{pair[1]}",
                    "leftover_ms": leftover.makespan * 1e3,
                    "symbiosis_ms": symbiosis.makespan * 1e3,
                    "leftover_advantage_pct": (
                        (symbiosis.makespan - leftover.makespan)
                        / symbiosis.makespan
                        * 100.0
                    ),
                }
            )
        return rows

    rows = once(benchmark, sweep)
    write_csv(rows, results_dir / "ablation_admission.csv")
    print()
    print(format_table(
        rows, title="Ablation — LEFTOVER vs symbiosis admission control"
    ))

    # LEFTOVER never loses ("doing no worse than serialization") and wins
    # where device-filling kernels (gaussian/srad) would be refused overlap.
    for row in rows:
        assert row["leftover_advantage_pct"] > -2.0, row["pair"]
    assert max(row["leftover_advantage_pct"] for row in rows) > 3.0
