"""Figure 9 — active power under serial / half / full concurrency.

Samples the simulated board sensor (oversampled, as in the paper's 66.7 Hz
methodology) for a 32-application {gaussian, needle} workload at one, 16
and 32 streams, then aggregates the full-vs-serial energy reduction across
every pair.

Paper claims: peak power rises slightly with concurrency, but energy drops
— 8.5% on average across pairs, up to 22.9% for {needle, srad}.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import fig9_power_concurrency

NUM_APPS = 32


def test_fig9_power_and_energy(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        fig9_power_concurrency,
        pair=("gaussian", "needle"),
        num_apps=NUM_APPS,
        scale=scale,
        runner=runner,
        power_interval=5e-3,
    )
    rows = [
        {
            "scenario": s.label,
            "NS": s.num_streams,
            "makespan_ms": s.makespan * 1e3,
            "energy_J": s.energy,
            "avg_power_W": s.average_power,
            "peak_power_W": s.peak_power,
            "samples": len(s.samples),
        }
        for s in result.scenarios
    ]
    write_csv(rows, results_dir / "fig09_power_concurrency.csv")
    energy_rows = [
        {"pair": f"{p[0]}+{p[1]}", "energy_improvement_pct": v}
        for p, v in sorted(result.energy_improvement_by_pair.items())
    ]
    write_csv(energy_rows, results_dir / "fig09_energy_by_pair.csv")
    print()
    print(format_table(rows, title="Figure 9 — power under increasing concurrency"))
    print(format_table(
        energy_rows, title="\nFull-concurrent energy reduction per pair"
    ))
    best_pair, best = result.best_energy_improvement
    print(
        f"\nenergy reduction: avg {result.average_energy_improvement:.1f}% "
        f"(paper: 8.5%), best {best:.1f}% on {best_pair[0]}+{best_pair[1]} "
        "(paper: 22.9% on needle+srad)"
    )

    serial, half, full = result.scenarios
    # Active power rises with concurrency (sublinearly), never falls.
    assert full.average_power > serial.average_power
    assert full.peak_power >= serial.peak_power
    # Makespan shrinks with added streams (half and full are within noise
    # of each other on this pair, as in the paper's Figure 4).
    assert half.makespan <= serial.makespan
    assert full.makespan <= half.makespan * 1.03
    # The energy claim: positive reduction for every pair, solid average.
    assert all(v > 0 for v in result.energy_improvement_by_pair.values())
    assert result.average_energy_improvement > 4.0
    assert best > 15.0
