"""Figure 8 — launch-order effect with memory synchronization.

Same sweep as Figure 7 with the Section III-B transfer mutex enabled.
Under the mutex, the HtoD phase becomes a strict burst sequence in launch
order, so reordering directly controls which compute tails hide behind
which transfers.

Paper claims: up to 31.8% (7.8% on average) — substantially more ordering
sensitivity than the default case.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.experiments import fig7_ordering_default, fig8_ordering_sync
from repro.scheduling.orders import ordering_rows

NUM_APPS = 32


def test_fig8_ordering_sync(benchmark, runner, scale, results_dir):
    result = once(
        benchmark,
        fig8_ordering_sync,
        num_apps=NUM_APPS,
        scale=scale,
        runner=runner,
    )
    rows = ordering_rows(result)
    write_csv(rows, results_dir / "fig08_ordering_sync.csv")
    print()
    print(format_table(
        rows, title="Figure 8 — ordering effect, synchronized transfers"
    ))
    mx, avg = result.stats()
    print(f"\nordering spread: max {mx:.1f}% avg {avg:.1f}% "
          "(paper: up to 31.8%, avg 7.8%)")

    # Order matters substantially more than single digits for some pair
    # (quantitative band calibrated at paper scale).
    if scale == "paper":
        assert mx > 8.0
        assert avg > 2.0
    else:
        assert mx > 0.0

    # And more than without the mutex (Figure 8 vs Figure 7) — the paper's
    # "additional benefits of memory synchronization ... with respect to
    # application ordering".
    default = fig7_ordering_default(num_apps=NUM_APPS, scale=scale, runner=runner)
    mx7, avg7 = default.stats()
    print(f"(figure 7 spread for comparison: max {mx7:.1f}% avg {avg7:.1f}%)")
    if scale == "paper":
        assert mx >= mx7
        assert avg >= avg7
