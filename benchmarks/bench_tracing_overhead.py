"""Tracing overhead — enabled causal tracing must not perturb or slow
the sim.

The tracing layer promises two things (docs/observability.md): with
``tracing=None`` nothing changes at all — the engine's tracer slot is
``None`` and every instrumentation site is a single attribute check —
and with a live :class:`~repro.telemetry.Tracing` attached the
simulated results are *identical* (spans are record-complete — both
boundaries are read off the event calendar after the wait has already
happened) at a wall-clock overhead under 2%.  This bench pins both
halves of that bargain on a Figure 4-style cell and appends the
measurement to the repo's perf trajectory (``BENCH_tracing.json``) so
overhead creep shows up commit over commit.

Measuring a <2% effect on a shared runner needs the same care as
``bench_integrity_overhead.py`` — and then some: wall-clock drifts by
several percent over tens of seconds, so even per-side minima taken
over hundreds of repetitions can land in different drift regimes and
disagree by more than the effect under measurement.  The estimator
here is therefore *fully paired*: each repetition times one clean and
one traced cell back to back (order alternating, GC phase reset before
each sample so both sides trigger the same collections from a clean
slate), and the reported overhead is the **median of the per-pair
relative deltas**.  Drift cancels inside each pair because its two
samples are adjacent in time; the median then shrugs off the
occasional scheduler preemption that hits one side of one pair.
"""

import gc
import statistics
import time
from pathlib import Path

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.telemetry import Tracing
from repro.telemetry.trajectory import record_trajectory_point

#: One default-scale cell, not a full sweep: the floor estimator needs
#: *many* short paired samples far more than it needs workload variety.
NA_VALUES = (8,)
PAIR = ("gaussian", "needle")
#: Keep timing cells until this much wall time has elapsed (at least
#: MIN_REPEATS full rounds): the per-(cell, side) minimum needs enough
#: samples to land on a quiet scheduler slice for every floor.
TIME_BUDGET_S = 70.0
MIN_REPEATS = 4

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_tracing.json"


def _run_cell(na, traced):
    """One fig4-style cell; returns (metrics, spans recorded)."""
    workload = Workload.heterogeneous_pair(*PAIR, na)
    tracing = Tracing(seed=0) if traced else None
    config = RunConfig(
        workload=workload,
        num_streams=na,
        tracing=tracing,
    )
    result = ExperimentRunner().run(config)
    spans = 0
    if traced:
        # Count *without* materializing: touching .spans inside the
        # timed window would bill analysis-time work to the recorder.
        spans = len(tracing.tracer._raw)
        assert spans > 0
    metrics = {
        "NA": na,
        "makespan": result.makespan,
        "energy": result.energy,
        "peak_power": result.peak_power,
    }
    return metrics, spans


def _interleaved_cells(budget_s):
    """(median overhead %, clean floor s, traced floor s, clean metrics,
    traced metrics, reps).

    Each repetition times one clean and one traced cell back to back
    with the slot order swapped every round; overhead is the median of
    the per-pair relative deltas (drift-immune), the per-side floors
    are reported alongside for the trajectory.
    """
    deltas = []
    best = {False: float("inf"), True: float("inf")}
    metrics = {False: {}, True: {}}
    deadline = time.perf_counter() + budget_s
    rep = 0
    (na,) = NA_VALUES
    while rep < MIN_REPEATS or time.perf_counter() < deadline:
        order = (False, True) if rep % 2 == 0 else (True, False)
        sample = {}
        for traced in order:
            # Reset the GC phase so each sample triggers the same
            # collections from a clean slate: otherwise whether a run
            # absorbs an extra gen-2 pass depends on where the
            # process-lifetime allocation count happens to sit, and
            # that quantization (tens of ms) dwarfs the effect under
            # measurement.
            gc.collect()
            t0 = time.perf_counter()
            metrics[traced][na], _ = _run_cell(na, traced)
            sample[traced] = time.perf_counter() - t0
            best[traced] = min(best[traced], sample[traced])
        deltas.append((sample[True] - sample[False]) / sample[False] * 100.0)
        rep += 1
    overhead_pct = statistics.median(deltas)
    clean_metrics = [metrics[False][na]]
    traced_metrics = [metrics[True][na]]
    return (
        overhead_pct, best[False], best[True],
        clean_metrics, traced_metrics, rep,
    )


@pytest.mark.tracing
def test_tracing_overhead(benchmark, results_dir):
    # Untimed warmups cover both code paths' imports and caches.
    for na in NA_VALUES:
        _run_cell(na, False)
        _run_cell(na, True)
    overhead_pct, clean_s, traced_s, clean_metrics, traced_metrics, reps = (
        once(benchmark, _interleaved_cells, TIME_BUDGET_S)
    )

    # The simulated results must be *identical*: span recording reads
    # the simulated clock after the fact and never schedules, cancels
    # or reorders an event.
    assert traced_metrics == clean_metrics

    rows = [
        {
            "sweep": f"{PAIR[0]}+{PAIR[1]} NA={','.join(map(str, NA_VALUES))}",
            "repeats": reps,
            "clean_s": clean_s,
            "traced_s": traced_s,
            "overhead_pct": overhead_pct,
            "results_identical": True,
        }
    ]
    write_csv(rows, results_dir / "tracing_overhead.csv")
    print()
    print(format_table(rows, title="Tracing — causal-span overhead"))

    # First-class perf-trajectory point: one entry per commit, appended
    # so the overhead trend is reviewable without rerunning old builds.
    record_trajectory_point(
        TRAJECTORY_PATH,
        "bench_tracing_overhead",
        {
            "clean_s": clean_s,
            "traced_s": traced_s,
            "overhead_pct": overhead_pct,
        },
    )

    assert overhead_pct < 2.0, (
        f"tracing costs {overhead_pct:.2f}% of wall time when enabled "
        "(budget: 2%)"
    )
