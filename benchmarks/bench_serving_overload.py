"""Goodput under overload: bounded admission + shedding vs greedy.

Regenerates ``results/serving_overload.csv`` (report section "Serving —
goodput under overload").  A Poisson trace is generated at ~2.5x the
measured service rate of a cap-4 dispatcher, then served four ways:

* ``greedy`` — unbounded admission, no shedding (the naive baseline);
* ``block`` / ``reject`` / ``shed-oldest`` — cap-4 concurrency with a
  bounded admission queue and deadline-aware shedding.

Under sustained overload the baseline admits everything, concurrency
contention inflates every sojourn, and most completions land past their
SLO deadline: throughput stays high but goodput collapses.  Bounded
admission spends the same device time on requests that can still meet
their deadlines, so goodput is strictly higher and the p99 sojourn stays
bounded.  Each scenario's row is checkpointed to disk as soon as it
completes, so a crash mid-sweep preserves the partial table.
"""

from __future__ import annotations

import pytest
from conftest import checkpoint_rows, once

from repro.analysis.tables import format_table
from repro.core.streaming import (
    ConcurrencyCapDispatcher,
    GreedyDispatcher,
    poisson_arrivals,
)
from repro.serving import ServingConfig, measure_service_baselines, run_serving

pytestmark = pytest.mark.serving

MIX = [("nn", 2), ("needle", 1)]
CAP = 4
QUEUE_DEPTH = 8
OVERLOAD = 2.5      # arrival rate as a multiple of the service rate
SLO_FACTOR = 6.0    # deadline = arrival + factor * serial baseline
DURATION = 0.02     # seconds of simulated arrivals
SEED = 13


def overload_trace():
    """Poisson arrivals at ``OVERLOAD``x the cap-``CAP`` service rate."""
    baselines = measure_service_baselines([name for name, _ in MIX])
    total = sum(weight for _, weight in MIX)
    mean_service = sum(
        baselines[name] * weight / total for name, weight in MIX
    )
    service_rate = CAP / mean_service
    arrivals = poisson_arrivals(
        OVERLOAD * service_rate, DURATION, MIX, seed=SEED
    )
    return arrivals, service_rate


def serve(arrivals, policy):
    if policy == "greedy":
        dispatcher = GreedyDispatcher()
        config = ServingConfig(
            slo_factor=SLO_FACTOR,
            slo_jitter=0.1,
            shed_unreachable=False,
            seed=SEED,
        )
    else:
        dispatcher = ConcurrencyCapDispatcher(CAP)
        config = ServingConfig(
            queue_depth=QUEUE_DEPTH,
            queue_policy=policy,
            slo_factor=SLO_FACTOR,
            slo_jitter=0.1,
            shed_unreachable=True,
            seed=SEED,
        )
    return run_serving(arrivals, dispatcher, config, num_streams=16)


def row_for(policy, result):
    return {
        "policy": policy,
        "qdepth": 0 if policy == "greedy" else QUEUE_DEPTH,
        "goodput_rps": round(result.goodput, 1),
        "throughput_rps": round(result.throughput, 1),
        "p99_sojourn_ms": round(result.p99_sojourn * 1e3, 3),
        "deadline_met": result.deadline_met,
        "shed_rate": round(result.shed_rate, 3),
        "late": result.outcomes.get("late", 0),
    }


def test_serving_overload_goodput(benchmark, results_dir, scale):
    arrivals, service_rate = overload_trace()
    rows = []
    results = {}

    def sweep():
        for policy in ("greedy", "block", "reject", "shed-oldest"):
            results[policy] = serve(arrivals, policy)
            rows.append(row_for(policy, results[policy]))
            # Preserve completed rows even if a later scenario crashes.
            checkpoint_rows(rows, "serving_overload.csv")
        return results

    once(benchmark, sweep)
    print()
    print(
        f"[serving_overload] scale={scale} arrivals={len(arrivals)} "
        f"rate={OVERLOAD:.1f}x service ({service_rate:.0f}/s)"
    )
    print(format_table(rows, title="[serving_overload.csv]"))

    greedy = results["greedy"]
    shed = results["shed-oldest"]
    # Overload is real: offered load outruns the baseline's goodput.
    assert len(arrivals) / DURATION > 2.0 * greedy.goodput
    # Bounded admission + shedding wins on goodput with a bounded tail.
    assert shed.goodput > greedy.goodput
    assert shed.p99_sojourn < greedy.p99_sojourn
    for policy in ("block", "reject", "shed-oldest"):
        assert results[policy].p99_sojourn < greedy.p99_sojourn
