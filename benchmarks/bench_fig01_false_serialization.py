"""Figure 1 — false serialization of independent streams via the copy queue.

Regenerates the paper's Visual-Profiler illustration: a {gaussian, needle}
workload on independent streams with default transfer behaviour.  Small
HtoD transfers from different streams interleave in the single copy queue,
stalling kernel starts even though compute resources are idle.

Checks: service of the HtoD engine hands over between applications many
times (the interleaving), and per-app effective latency is stretched well
past the uncontended service time.
"""

from conftest import once

from repro.analysis.tables import write_csv
from repro.analysis.timeline import render_timeline
from repro.core.experiments import fig1_fig2_timelines
from repro.gpu.commands import CopyDirection

NUM_APPS = 8


def test_fig1_default_interleaving(benchmark, runner, scale, results_dir):
    study = once(
        benchmark,
        fig1_fig2_timelines,
        pair=("gaussian", "needle"),
        num_apps=NUM_APPS,
        scale=scale,
        runner=runner,
    )
    rows = study.rows()
    write_csv(rows, results_dir / "fig01_false_serialization.csv")
    print()
    print(render_timeline(
        study.default_trace, width=100,
        title="Figure 1 — default transfers (interleaved copy queue):",
    ))
    default_row = rows[0]
    print(
        f"\nHtoD app-to-app handovers: {default_row['htod_interleaving_switches']}"
        f" | avg effective latency {default_row['avg_effective_latency_ms']:.3f} ms"
    )

    # The copy queue interleaves: far more handovers than app boundaries.
    switches = study.interleaving_switches(study.default_trace)
    assert switches > NUM_APPS

    # Kernels stall on stretched transfers: every app's Le exceeds its own
    # uncontended service time.
    stretched = 0
    for rec in study.default_run.harness.records:
        le = rec.effective_latency(CopyDirection.HTOD)
        pure = rec.pure_transfer_time(CopyDirection.HTOD)
        if le is not None and le > 1.5 * pure:
            stretched += 1
    assert stretched >= NUM_APPS // 2
