"""Ablation — what Hyper-Q itself buys: hardware work-queue width sweep.

Not a paper figure, but the paper's premise: Fermi's single hardware work
queue falsely serializes independent streams, and Kepler's 32 queues remove
that.  This bench runs the same 16-application workload with 1, 2, 4, 8, 16
and 32 hardware queues (same SMX array, so queueing is the only variable)
and reports the makespan curve — the Hyper-Q benefit and where it
saturates.
"""

from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.core.runner import RunConfig
from repro.core.workload import Workload
from repro.gpu.specs import tesla_k20

QUEUE_WIDTHS = (1, 2, 4, 8, 16, 32)
NUM_APPS = 16


def test_hardware_queue_width_sweep(benchmark, runner, scale, results_dir):
    workload = Workload.heterogeneous_pair("gaussian", "needle", NUM_APPS, scale=scale)

    def sweep():
        out = []
        for width in QUEUE_WIDTHS:
            spec = tesla_k20().with_hardware_queues(width)
            run = runner.run(
                RunConfig(workload=workload, num_streams=NUM_APPS, spec=spec)
            )
            out.append((width, run))
        return out

    results = once(benchmark, sweep)
    fermi_like = results[0][1]
    rows = [
        {
            "hardware_queues": width,
            "makespan_ms": run.makespan * 1e3,
            "speedup_vs_1_queue": fermi_like.makespan / run.makespan,
            "energy_J": run.energy,
        }
        for width, run in results
    ]
    write_csv(rows, results_dir / "ablation_hyperq_width.csv")
    print()
    print(format_table(
        rows, title="Ablation — Hyper-Q hardware queue width (Fermi -> Kepler)"
    ))

    spans = [run.makespan for _, run in results]
    # More queues never hurt; full Hyper-Q strictly beats the single queue.
    assert spans[-1] < spans[0]
    for earlier, later in zip(spans, spans[1:]):
        assert later <= earlier * 1.02
    # And the win is material (false serialization is real).
    assert spans[0] / spans[-1] > 1.1
