"""Failover economics: recovery time and goodput dip at 1-of-4 device loss.

Three runs of the same 4-device schedule:

* **clean** — no faults, the goodput ceiling;
* **failover** — one device lost mid-run, checkpointed migration on;
* **no-failover** — the same loss with migration disabled, the baseline
  a fleet without the coordinator degrades to.

The bench reports the recovery timeline (loss -> detection -> resumed),
the goodput dip versus clean, and asserts the failover bargain: every
app still completes, and re-executed work stays bounded by one in-flight
kernel per migrated app — the guarantee the phase-boundary checkpoints
exist to provide.
"""

import pytest
from conftest import once

from repro.analysis.tables import format_table, write_csv
from repro.apps.registry import get_app
from repro.fleet import FleetConfig, FleetHarness
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec

NUM_APPS = 8
DEVICES = 4
STREAMS = 2
SEED = 0

_PARAMS = {"gaussian": {"n": 48}, "needle": {"n": 64}}


def _apps():
    kinds = ("gaussian", "needle")
    return [
        get_app(kinds[i % 2], instance=i, **_PARAMS[kinds[i % 2]])
        for i in range(NUM_APPS)
    ]


def _fleet(**overrides):
    base = dict(
        num_devices=DEVICES,
        heartbeat_interval=2e-5,
        detection_latency=5e-5,
        detection_jitter=1e-5,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _run(fleet=None, plan=None):
    return FleetHarness(
        _apps(),
        fleet if fleet is not None else _fleet(),
        num_streams=STREAMS,
        seed=SEED,
        plan=plan,
    ).run()


def _loss_plan(clean):
    """Loss pinned mid-GPU-section of device 0's longest-running app."""
    on_dev0 = [r for r in clean.records if r.device_index == 0]
    target = max(on_dev0, key=lambda r: r.complete_time - r.gpu_start)
    loss_at = (target.gpu_start + target.complete_time) / 2
    return FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, loss_at, device=0)])


def _goodput(result):
    return result.completed / result.makespan if result.makespan > 0 else 0.0


@pytest.mark.fleet
def test_failover_recovery_and_goodput(benchmark, results_dir):
    clean = _run()
    plan = _loss_plan(clean)

    failover = once(benchmark, _run, plan=plan)
    baseline = _run(fleet=_fleet(failover=False), plan=plan)

    # The failover bargain: nothing admitted is lost...
    assert failover.completed == NUM_APPS
    assert failover.failed == 0
    assert failover.migrations >= 1
    # ...and re-executed work is bounded by one in-flight kernel per
    # migrated app (sum over apps: <= total migrations).
    migrated = [r for r in failover.records if r.migrations > 0]
    assert failover.reexecuted_kernels <= sum(r.migrations for r in migrated)
    # Without failover the same loss strands work on the dead device.
    assert baseline.failed >= 1
    assert baseline.completed < NUM_APPS

    clean_goodput = _goodput(clean)
    rows = []
    for label, result in (
        ("clean", clean),
        ("failover", failover),
        ("no-failover", baseline),
    ):
        goodput = _goodput(result)
        rows.append(
            {
                "scenario": label,
                "completed": result.completed,
                "failed": result.failed,
                "migrations": result.migrations,
                "reexecuted_kernels": result.reexecuted_kernels,
                "makespan_ms": result.makespan * 1e3,
                "goodput_per_s": goodput,
                "goodput_dip_pct": (
                    (clean_goodput - goodput) / clean_goodput * 100.0
                    if clean_goodput > 0
                    else 0.0
                ),
                "recovery_ms": result.recovery_time * 1e3,
                "energy_J": result.energy,
            }
        )
    print()
    print(
        format_table(
            rows,
            title=(
                f"Failover at 1-of-{DEVICES} device loss "
                f"(NA={NUM_APPS}, NS={STREAMS}/device)"
            ),
        )
    )
    recovery = failover.recoveries[0]
    print(
        f"timeline: lost t={recovery['lost'] * 1e3:.3f}ms -> detected "
        f"t={recovery['detected'] * 1e3:.3f}ms -> resumed "
        f"t={recovery['resumed'] * 1e3:.3f}ms "
        f"({len(recovery['apps'])} apps migrated, "
        f"{recovery['reexecuted_kernels']} kernels re-executed)"
    )
    write_csv(rows, results_dir / "bench_failover.csv")
